//! Cost of the design alternatives called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use rats_bench::{grillon, irregular50};
use rats_sched::{allocate, AllocParams, AreaPolicy, CandidatePolicy, MappingStrategy, Scheduler};
use std::hint::black_box;

fn bench_area_policies(c: &mut Criterion) {
    let platform = grillon();
    let dag = irregular50();
    let mut g = c.benchmark_group("ablation/area_policy");
    g.sample_size(20);
    for (name, policy) in [
        ("cpa", AreaPolicy::CpaClassic),
        ("hcpa", AreaPolicy::Hcpa),
        ("mcpa", AreaPolicy::Mcpa),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                allocate(
                    black_box(&dag),
                    &platform,
                    AllocParams {
                        policy,
                        ..AllocParams::default()
                    },
                )
            })
        });
    }
    // The comm-inclusive critical path (rejected default; see DESIGN.md).
    g.bench_function("hcpa_comm_cp", |b| {
        b.iter(|| {
            allocate(
                black_box(&dag),
                &platform,
                AllocParams {
                    policy: AreaPolicy::Hcpa,
                    cp_includes_comm: true,
                },
            )
        })
    });
    g.finish();
}

fn bench_candidate_policies(c: &mut Criterion) {
    let platform = grillon();
    let dag = irregular50();
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut g = c.benchmark_group("ablation/candidate_policy");
    g.sample_size(20);
    for (name, policy) in [
        ("earliest_k", CandidatePolicy::EarliestK),
        ("parent_aware", CandidatePolicy::ParentAware),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                Scheduler::new(&platform)
                    .candidate_policy(policy)
                    .schedule_with_allocation(black_box(&dag), &alloc)
            })
        });
    }
    g.finish();
}

fn bench_secondary_sorts(c: &mut Criterion) {
    // The two RATS variants differ in their ready-list secondary sort;
    // benchmark the mapping cost of each against plain HCPA.
    let platform = grillon();
    let dag = irregular50();
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut g = c.benchmark_group("ablation/strategy_cost");
    g.sample_size(20);
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.75, 1.0),
        MappingStrategy::rats_time_cost(0.2, true),
    ] {
        g.bench_function(strategy.name(), |b| {
            b.iter(|| {
                Scheduler::new(&platform)
                    .strategy(strategy)
                    .schedule_with_allocation(black_box(&dag), &alloc)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_area_policies,
    bench_candidate_policies,
    bench_secondary_sorts
);
criterion_main!(benches);
