//! One benchmark per paper artifact, regenerating a quick-scale version of
//! each table/figure end to end (generation → allocation → mapping →
//! simulation → statistics). Full-scale regeneration is done by the
//! `rats-experiments` binaries; these benches track the cost of the whole
//! path so a performance regression in any stage is caught.

use criterion::{criterion_group, criterion_main, Criterion};
use rats_experiments::artifacts;
use rats_platform::ProcSet;
use rats_redist::redistribute;
use std::hint::black_box;
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    // Table I is a single redistribution matrix.
    let src = ProcSet::from_range(0, 4);
    let dst = ProcSet::from_range(4, 5);
    c.bench_function("artifact/table1", |b| {
        b.iter(|| {
            let r = redistribute(black_box(10.0), &src, &dst);
            r.dense_matrix(&src, &dst, 10.0)
        })
    });
}

fn bench_static_tables(c: &mut Criterion) {
    c.bench_function("artifact/table2", |b| b.iter(artifacts::table2));
    c.bench_function("artifact/table3", |b| b.iter(|| artifacts::table3(true)));
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("fig2_3", |b| b.iter(|| artifacts::fig2_3(true, 2)));
    g.bench_function("fig4", |b| b.iter(|| artifacts::fig4(true, 2)));
    g.bench_function("fig5", |b| b.iter(|| artifacts::fig5(true, 2)));
    g.bench_function("fig6_7", |b| b.iter(|| artifacts::fig6_7(true, 2)));
    g.finish();
}

fn bench_comparison_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    g.bench_function("table4", |b| b.iter(|| artifacts::table4(true, 2, 1)));
    g.bench_function("table5_6", |b| b.iter(|| artifacts::table5_6(true, 2)));
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_static_tables,
    bench_figures,
    bench_comparison_tables
);
criterion_main!(benches);
