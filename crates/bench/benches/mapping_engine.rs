//! Before/after throughput of the step-two mapping engine.
//!
//! Measures the incremental engine (`Scheduler::schedule_with_allocation`)
//! against the retained naive reference driver
//! (`Scheduler::reference_schedule_with_allocation`, `reference` feature)
//! **in the same run**, on large random, FFT and Strassen DAGs, and writes
//! the numbers to `BENCH_mapping.json` at the workspace root so the perf
//! trajectory is recorded per commit.
//!
//! Run modes:
//!
//! * `cargo bench -p rats-bench --bench mapping_engine` — full sizes
//!   (n ≈ 1k–100k random DAGs, FFT up to ~5.6k tasks; the naive reference
//!   is skipped above [`REFERENCE_CEILING`] tasks, where its quadratic cost
//!   stops being measurable in reasonable time);
//! * `… -- --test` — CI smoke scale: tiny DAGs, one repetition, same code
//!   paths (used by the bench-smoke CI step so the bench bit-rots loudly);
//! * `… -- --check` — regression gate: medium scale, incremental engine
//!   only, fails (exit 1) if throughput drops below a conservative floor or
//!   the mapping loop starts allocating per task again.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rats_dag::TaskGraph;
use rats_daggen::{fft_dag, irregular_dag, strassen_dag, DagParams};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};
use rats_sched::{allocate, AllocParams, Allocation, MappingStrategy, Scheduler};

/// Heap-op counting allocator: every `alloc`/`realloc` bumps a counter, so
/// the bench can report *allocations per mapped task* alongside wall time.
/// The relaxed atomic add is a handful of cycles per heap call — and the
/// whole point of the measurement is that the mapping loop makes almost
/// none, so it cannot distort the timings it rides along with.
struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Heap operations (allocations + reallocations) during one closure run.
fn count_heap_ops<T>(run: impl FnOnce() -> T) -> u64 {
    let before = HEAP_OPS.load(Ordering::Relaxed);
    let out = run();
    let ops = HEAP_OPS.load(Ordering::Relaxed) - before;
    drop(out);
    ops
}

/// Above this task count the quadratic naive reference is not measured —
/// one 100k-task run would take minutes for a number whose trend the
/// smaller cases already pin down.
const REFERENCE_CEILING: usize = 20_000;

struct Case {
    name: String,
    dag: TaskGraph,
}

fn random_case(n: u32, seed: u64) -> Case {
    let params = DagParams {
        n,
        width: 0.5,
        regularity: 0.5,
        density: 0.5,
        jump: 2,
    };
    Case {
        name: format!("random_{n}"),
        dag: irregular_dag(&params, &CostParams::paper(), seed),
    }
}

fn cases(test_scale: bool) -> Vec<Case> {
    if test_scale {
        vec![
            random_case(120, 0xF00D),
            Case {
                name: "fft_4".into(),
                dag: fft_dag(4, &CostParams::paper(), 0xBEEF),
            },
            Case {
                name: "strassen".into(),
                dag: strassen_dag(&CostParams::paper(), 0xCAFE),
            },
        ]
    } else {
        vec![
            random_case(1_000, 0xF00D),
            random_case(5_000, 0xF00D),
            random_case(10_000, 0xF00D),
            // Above REFERENCE_CEILING: incremental engine only.
            random_case(100_000, 0xF00D),
            Case {
                // 2k−1 recursion tasks + k·log₂k butterflies = 1151 tasks.
                name: "fft_128".into(),
                dag: fft_dag(128, &CostParams::paper(), 0xBEEF),
            },
            Case {
                // 5631 tasks.
                name: "fft_512".into(),
                dag: fft_dag(512, &CostParams::paper(), 0xBEEF),
            },
            Case {
                // Strassen's graph is fixed at 25 tasks: kept as the small
                // structured outlier of the set.
                name: "strassen".into(),
                dag: strassen_dag(&CostParams::paper(), 0xCAFE),
            },
        ]
    }
}

/// Best-of-`reps` wall time of one full mapping step, in seconds.
fn time_mapping<F: Fn() -> rats_sched::Schedule>(reps: usize, run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let schedule = run();
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(schedule.makespan_estimate());
        best = best.min(elapsed);
    }
    best
}

struct Measurement {
    case: String,
    policy: &'static str,
    tasks: usize,
    edges: usize,
    /// `None` when the case is above [`REFERENCE_CEILING`].
    reference_s: Option<f64>,
    incremental_s: f64,
    /// Heap operations per task during one incremental mapping run. The
    /// absolute count is dominated by one-time setup and geometric arena
    /// growth (a few thousand ops regardless of DAG size), so this ratio
    /// falls towards zero as DAGs grow — the steady-state loop itself
    /// does not allocate per task (the `--check` gate pins the marginal
    /// cost between two sizes at zero).
    allocs_per_task: f64,
}

impl Measurement {
    fn speedup(&self) -> Option<f64> {
        self.reference_s.map(|r| r / self.incremental_s)
    }

    fn to_json(&self) -> String {
        let fmt_opt = |v: Option<f64>, digits: usize| match v {
            Some(v) => format!("{v:.digits$}"),
            None => "null".into(),
        };
        format!(
            "    {{\"case\": \"{}\", \"policy\": \"{}\", \"tasks\": {}, \"edges\": {}, \
             \"reference_s\": {}, \"incremental_s\": {:.6}, \
             \"reference_tasks_per_s\": {}, \"incremental_tasks_per_s\": {:.1}, \
             \"allocs_per_task\": {:.4}, \"speedup\": {}}}",
            self.case,
            self.policy,
            self.tasks,
            self.edges,
            fmt_opt(self.reference_s, 6),
            self.incremental_s,
            fmt_opt(self.reference_s.map(|r| self.tasks as f64 / r), 1),
            self.tasks as f64 / self.incremental_s,
            self.allocs_per_task,
            fmt_opt(self.speedup(), 2)
        )
    }
}

fn measure(
    case: &Case,
    platform: &Platform,
    alloc: &Allocation,
    test_scale: bool,
) -> Vec<Measurement> {
    let n = case.dag.num_tasks();
    // The naive engine is quadratic: one repetition is plenty at 5k+ tasks.
    let reps = if test_scale { 1 } else { 3 };
    let ref_reps = if test_scale || n >= 2_000 { 1 } else { reps };
    let run_reference = test_scale || n <= REFERENCE_CEILING;
    let mut out = Vec::new();
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let scheduler = Scheduler::new(platform).strategy(strategy);
        let incremental_s = time_mapping(reps, || {
            scheduler.schedule_with_allocation(&case.dag, alloc)
        });
        let heap_ops = count_heap_ops(|| scheduler.schedule_with_allocation(&case.dag, alloc));
        let reference_s = run_reference.then(|| {
            time_mapping(ref_reps, || {
                scheduler.reference_schedule_with_allocation(&case.dag, alloc)
            })
        });
        let m = Measurement {
            case: case.name.clone(),
            policy: strategy.name(),
            tasks: n,
            edges: case.dag.num_edges(),
            reference_s,
            incremental_s,
            allocs_per_task: heap_ops as f64 / n as f64,
        };
        let ref_col = match m.reference_s {
            Some(r) => format!("{:>10.2?}", std::time::Duration::from_secs_f64(r)),
            None => format!("{:>10}", "-"),
        };
        let speedup_col = match m.speedup() {
            Some(s) => format!("{s:>6.2}x"),
            None => format!("{:>7}", "-"),
        };
        println!(
            "bench map/{:<14} {:<10} {:>7} tasks   ref {ref_col}   incr {:>10.2?}   \
             {:>7.4} allocs/task   speedup {speedup_col}",
            m.case,
            m.policy,
            m.tasks,
            std::time::Duration::from_secs_f64(m.incremental_s),
            m.allocs_per_task,
        );
        out.push(m);
    }
    out
}

/// `--check` regression gate: medium scale, incremental engine only.
/// Floors are deliberately an order of magnitude below the numbers a
/// developer laptop produces — the gate exists to catch the engine falling
/// off a complexity cliff (or quietly re-growing per-task allocations),
/// not to flake on slow shared CI runners.
fn check_gate(platform: &Platform) -> i32 {
    /// Minimum mapped tasks per second, per policy, on `random_5000`.
    const THROUGHPUT_FLOOR: f64 = 20_000.0;
    /// Ceiling on the **marginal** heap ops per additional task between
    /// the two gate sizes. One-time setup and geometric arena growth cost
    /// a few thousand ops at any DAG size, so the absolute ratio is
    /// meaningless at gate scale — but the steady-state mapping loop must
    /// not allocate per task, so growing the DAG by 3 000 tasks should add
    /// essentially nothing. A per-task allocation anywhere in the loop
    /// pushes this to ≥ 1 immediately.
    const MARGINAL_ALLOCS_CEILING: f64 = 0.2;

    let small = random_case(2_000, 0xF00D);
    let case = random_case(5_000, 0xF00D);
    let small_alloc = allocate(&small.dag, platform, AllocParams::default());
    let alloc = allocate(&case.dag, platform, AllocParams::default());
    let n = case.dag.num_tasks();
    let extra_tasks = (n - small.dag.num_tasks()) as f64;
    let mut failures = 0;
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let scheduler = Scheduler::new(platform).strategy(strategy);
        let secs = time_mapping(3, || scheduler.schedule_with_allocation(&case.dag, &alloc));
        let ops_small =
            count_heap_ops(|| scheduler.schedule_with_allocation(&small.dag, &small_alloc));
        let ops_large = count_heap_ops(|| scheduler.schedule_with_allocation(&case.dag, &alloc));
        let tasks_per_s = n as f64 / secs;
        let marginal = (ops_large as f64 - ops_small as f64).max(0.0) / extra_tasks;
        let throughput_ok = tasks_per_s >= THROUGHPUT_FLOOR;
        let allocs_ok = marginal <= MARGINAL_ALLOCS_CEILING;
        println!(
            "check map/{:<14} {:<10} {tasks_per_s:>9.0} tasks/s (floor {THROUGHPUT_FLOOR:.0}) \
             {}   {marginal:.4} marginal allocs/task (ceiling {MARGINAL_ALLOCS_CEILING}) {}",
            case.name,
            strategy.name(),
            if throughput_ok { "ok" } else { "FAIL" },
            if allocs_ok { "ok" } else { "FAIL" },
        );
        failures += i32::from(!throughput_ok) + i32::from(!allocs_ok);
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test");
    // `cargo bench` may pass harness flags like --bench; ignore them.
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    if args.iter().any(|a| a == "--check") {
        let failures = check_gate(&platform);
        if failures > 0 {
            eprintln!("bench --check: {failures} gate(s) failed");
            std::process::exit(1);
        }
        println!("bench --check: all gates passed");
        return;
    }
    let mut results = Vec::new();
    for case in cases(test_scale) {
        let alloc = allocate(&case.dag, &platform, AllocParams::default());
        results.extend(measure(&case, &platform, &alloc, test_scale));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mapping_engine\",");
    let _ = writeln!(json, "  \"platform\": \"{}\",", platform.name());
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if test_scale { "test" } else { "full" }
    );
    let _ = writeln!(json, "  \"cases\": [");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "{}{}", m.to_json(), sep);
    }
    json.push_str("  ]\n}\n");

    if test_scale {
        // Smoke runs must not clobber the committed full-scale record.
        println!("--test scale: skipping BENCH_mapping.json write");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mapping.json");
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if let Some((m, speedup)) = results
        .iter()
        .filter(|m| m.case == "random_5000")
        .filter_map(|m| m.speedup().map(|s| (m, s)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
    {
        println!(
            "mapping-step throughput on random_5000: {speedup:.2}x (worst policy: {})",
            m.policy
        );
    }
}
