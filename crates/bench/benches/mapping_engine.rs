//! Before/after throughput of the step-two mapping engine.
//!
//! Measures the incremental engine (`Scheduler::schedule_with_allocation`)
//! against the retained naive reference driver
//! (`Scheduler::reference_schedule_with_allocation`, `reference` feature)
//! **in the same run**, on large random, FFT and Strassen DAGs, and writes
//! the numbers to `BENCH_mapping.json` at the workspace root so the perf
//! trajectory is recorded per commit.
//!
//! Run modes:
//!
//! * `cargo bench -p rats-bench --bench mapping_engine` — full sizes
//!   (n ≈ 1k–10k random DAGs, FFT up to ~5.6k tasks);
//! * `… -- --test` — CI smoke scale: tiny DAGs, one repetition, same code
//!   paths (used by the bench-smoke CI step so the bench bit-rots loudly).

use std::fmt::Write as _;
use std::time::Instant;

use rats_dag::TaskGraph;
use rats_daggen::{fft_dag, irregular_dag, strassen_dag, DagParams};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};
use rats_sched::{allocate, AllocParams, Allocation, MappingStrategy, Scheduler};

struct Case {
    name: String,
    dag: TaskGraph,
}

fn random_case(n: u32, seed: u64) -> Case {
    let params = DagParams {
        n,
        width: 0.5,
        regularity: 0.5,
        density: 0.5,
        jump: 2,
    };
    Case {
        name: format!("random_{n}"),
        dag: irregular_dag(&params, &CostParams::paper(), seed),
    }
}

fn cases(test_scale: bool) -> Vec<Case> {
    if test_scale {
        vec![
            random_case(120, 0xF00D),
            Case {
                name: "fft_4".into(),
                dag: fft_dag(4, &CostParams::paper(), 0xBEEF),
            },
            Case {
                name: "strassen".into(),
                dag: strassen_dag(&CostParams::paper(), 0xCAFE),
            },
        ]
    } else {
        vec![
            random_case(1_000, 0xF00D),
            random_case(5_000, 0xF00D),
            random_case(10_000, 0xF00D),
            Case {
                // 2k−1 recursion tasks + k·log₂k butterflies = 1151 tasks.
                name: "fft_128".into(),
                dag: fft_dag(128, &CostParams::paper(), 0xBEEF),
            },
            Case {
                // 5631 tasks.
                name: "fft_512".into(),
                dag: fft_dag(512, &CostParams::paper(), 0xBEEF),
            },
            Case {
                // Strassen's graph is fixed at 25 tasks: kept as the small
                // structured outlier of the set.
                name: "strassen".into(),
                dag: strassen_dag(&CostParams::paper(), 0xCAFE),
            },
        ]
    }
}

/// Best-of-`reps` wall time of one full mapping step, in seconds.
fn time_mapping<F: Fn() -> rats_sched::Schedule>(reps: usize, run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let schedule = run();
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(schedule.makespan_estimate());
        best = best.min(elapsed);
    }
    best
}

struct Measurement {
    case: String,
    policy: &'static str,
    tasks: usize,
    edges: usize,
    reference_s: f64,
    incremental_s: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.reference_s / self.incremental_s
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"case\": \"{}\", \"policy\": \"{}\", \"tasks\": {}, \"edges\": {}, \
             \"reference_s\": {:.6}, \"incremental_s\": {:.6}, \
             \"reference_tasks_per_s\": {:.1}, \"incremental_tasks_per_s\": {:.1}, \
             \"speedup\": {:.2}}}",
            self.case,
            self.policy,
            self.tasks,
            self.edges,
            self.reference_s,
            self.incremental_s,
            self.tasks as f64 / self.reference_s,
            self.tasks as f64 / self.incremental_s,
            self.speedup()
        )
    }
}

fn measure(
    case: &Case,
    platform: &Platform,
    alloc: &Allocation,
    test_scale: bool,
) -> Vec<Measurement> {
    let n = case.dag.num_tasks();
    // The naive engine is quadratic: one repetition is plenty at 5k+ tasks.
    let reps = if test_scale { 1 } else { 3 };
    let ref_reps = if test_scale || n >= 2_000 { 1 } else { reps };
    let mut out = Vec::new();
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let scheduler = Scheduler::new(platform).strategy(strategy);
        let incremental_s = time_mapping(reps, || {
            scheduler.schedule_with_allocation(&case.dag, alloc)
        });
        let reference_s = time_mapping(ref_reps, || {
            scheduler.reference_schedule_with_allocation(&case.dag, alloc)
        });
        let m = Measurement {
            case: case.name.clone(),
            policy: strategy.name(),
            tasks: n,
            edges: case.dag.num_edges(),
            reference_s,
            incremental_s,
        };
        println!(
            "bench map/{:<14} {:<10} {:>7} tasks   ref {:>10.2?}   incr {:>10.2?}   speedup {:>6.2}x",
            m.case,
            m.policy,
            m.tasks,
            std::time::Duration::from_secs_f64(m.reference_s),
            std::time::Duration::from_secs_f64(m.incremental_s),
            m.speedup()
        );
        out.push(m);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test");
    // `cargo bench` may pass harness flags like --bench; ignore them.
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let mut results = Vec::new();
    for case in cases(test_scale) {
        let alloc = allocate(&case.dag, &platform, AllocParams::default());
        results.extend(measure(&case, &platform, &alloc, test_scale));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mapping_engine\",");
    let _ = writeln!(json, "  \"platform\": \"{}\",", platform.name());
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if test_scale { "test" } else { "full" }
    );
    let _ = writeln!(json, "  \"cases\": [");
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "{}{}", m.to_json(), sep);
    }
    json.push_str("  ]\n}\n");

    if test_scale {
        // Smoke runs must not clobber the committed full-scale record.
        println!("--test scale: skipping BENCH_mapping.json write");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mapping.json");
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if let Some(m) = results
        .iter()
        .filter(|m| m.case == "random_5000")
        .min_by(|a, b| a.speedup().total_cmp(&b.speedup()))
    {
        println!(
            "mapping-step throughput on random_5000: {:.2}x (worst policy: {})",
            m.speedup(),
            m.policy
        );
    }
}
