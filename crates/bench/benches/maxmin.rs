//! The max-min fairness solver (the simulator's hot inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rats_simnet::maxmin::{FlowSpec, Problem};
use std::hint::black_box;

/// A grillon-like problem: `n` flows over 47 node links, each flow crossing
/// a sender and a receiver link, 30 % of them TCP-window capped.
fn problem(n: usize) -> Problem {
    let links = 47usize;
    let capacity = vec![125e6; links];
    let flows = (0..n)
        .map(|i| {
            let src = i % links;
            let dst = (i * 7 + 1) % links;
            FlowSpec {
                links: if src == dst {
                    vec![src]
                } else {
                    vec![src, dst]
                },
                rate_cap: if i % 3 == 0 { 81.92e6 } else { f64::INFINITY },
            }
        })
        .collect();
    Problem { capacity, flows }
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxmin/solve");
    for n in [10usize, 100, 1000] {
        let p = problem(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(p).solve())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
