//! Stage-by-stage throughput of the scheduling pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use rats_bench::{fft16, grillon, irregular50};
use rats_sched::{allocate, AllocParams, MappingStrategy, Scheduler};
use rats_sim::simulate;
use std::hint::black_box;

fn bench_allocation(c: &mut Criterion) {
    let platform = grillon();
    let mut g = c.benchmark_group("allocate");
    g.sample_size(20);
    for (name, dag) in [("fft16", fft16()), ("irregular50", irregular50())] {
        g.bench_function(name, |b| {
            b.iter(|| allocate(black_box(&dag), &platform, AllocParams::default()))
        });
    }
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let platform = grillon();
    let dag = irregular50();
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut g = c.benchmark_group("map/irregular50");
    g.sample_size(20);
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        g.bench_function(strategy.name(), |b| {
            b.iter(|| {
                Scheduler::new(&platform)
                    .strategy(strategy)
                    .schedule_with_allocation(black_box(&dag), &alloc)
            })
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let platform = grillon();
    let dag = irregular50();
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut g = c.benchmark_group("simulate/irregular50");
    g.sample_size(15);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let schedule = Scheduler::new(&platform)
            .strategy(strategy)
            .schedule_with_allocation(&dag, &alloc);
        g.bench_function(strategy.name(), |b| {
            b.iter(|| simulate(black_box(&dag), &schedule, &platform))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allocation, bench_mapping, bench_simulation);
criterion_main!(benches);
