//! Stage-by-stage throughput of the scheduling pipeline, plus the
//! end-to-end `Pipeline` run every consumer goes through.

use criterion::{criterion_group, criterion_main, Criterion};
use rats::prelude::*;
use rats_bench::{fft16, grillon, grillon_pipeline, irregular50};
use rats_sched::{allocate, AllocParams, Scheduler};
use std::hint::black_box;
use std::time::Duration;

fn bench_allocation(c: &mut Criterion) {
    let platform = grillon();
    let mut g = c.benchmark_group("allocate");
    g.sample_size(20);
    for (name, dag) in [("fft16", fft16()), ("irregular50", irregular50())] {
        g.bench_function(name, |b| {
            b.iter(|| allocate(black_box(&dag), &platform, AllocParams::default()))
        });
    }
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let platform = grillon();
    let dag = irregular50();
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut g = c.benchmark_group("map/irregular50");
    g.sample_size(20);
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        g.bench_function(strategy.name(), |b| {
            b.iter(|| {
                Scheduler::new(&platform)
                    .strategy(strategy)
                    .schedule_with_allocation(black_box(&dag), &alloc)
            })
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let platform = grillon();
    let dag = irregular50();
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut g = c.benchmark_group("simulate/irregular50");
    g.sample_size(15);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let schedule = Scheduler::new(&platform)
            .strategy(strategy)
            .schedule_with_allocation(&dag, &alloc);
        g.bench_function(strategy.name(), |b| {
            b.iter(|| simulate(black_box(&dag), &schedule, &platform))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // The whole chain behind the façade: allocate + map + simulate.
    let dag = irregular50();
    let mut g = c.benchmark_group("pipeline/irregular50");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let pipeline = grillon_pipeline().policy(strategy);
        g.bench_function(strategy.name(), |b| {
            b.iter(|| pipeline.run(black_box(&dag)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allocation,
    bench_mapping,
    bench_simulation,
    bench_end_to_end
);
criterion_main!(benches);
