//! Block-redistribution kernels: matrix construction, self-communication
//! alignment, contention-free estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rats_bench::grillon;
use rats_platform::ProcSet;
use rats_redist::{align_for_self_comm, estimate_time, redistribute};
use std::hint::black_box;

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("redist/matrix");
    for (p, q) in [(4u32, 5u32), (16, 24), (47, 40), (120, 96)] {
        let src = ProcSet::from_range(0, p);
        let dst = ProcSet::from_range(p.min(8), q); // overlapping sets
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p}x{q}")),
            &(src, dst),
            |b, (src, dst)| b.iter(|| redistribute(black_box(1e9), src, dst)),
        );
    }
    g.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let src = ProcSet::from_range(0, 40);
    let dst: ProcSet = (8..56).rev().collect();
    c.bench_function("redist/align_40_48", |b| {
        b.iter(|| align_for_self_comm(black_box(&src), black_box(&dst)))
    });
}

fn bench_estimate(c: &mut Criterion) {
    let platform = grillon();
    let src = ProcSet::from_range(0, 24);
    let dst = ProcSet::from_range(12, 30);
    let r = redistribute(1e9, &src, &dst);
    c.bench_function("redist/estimate_24_30", |b| {
        b.iter(|| estimate_time(black_box(&r), &platform))
    });
}

criterion_group!(benches, bench_matrix, bench_alignment, bench_estimate);
criterion_main!(benches);
