//! Quick throughput probe for the incremental mapping engine (dev tool).

use std::time::Instant;

use rats_daggen::{irregular_dag, DagParams};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};
use rats_sched::{allocate, AllocParams, MappingStrategy, Scheduler};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let reps: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5);
    let params = DagParams {
        n,
        width: 0.5,
        regularity: 0.5,
        density: 0.5,
        jump: 2,
    };
    let dag = irregular_dag(&params, &CostParams::paper(), 0xF00D);
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let alloc = allocate(&dag, &platform, AllocParams::default());
    let mut hist = [0u32; 64];
    for &a in alloc.as_slice() {
        hist[(a as usize).min(63)] += 1;
    }
    let total: u32 = hist.iter().sum();
    let mut cum = 0u32;
    for (sz, &c) in hist.iter().enumerate() {
        if c > 0 {
            cum += c;
            println!(
                "alloc={sz}: {c} (cum {:.1}%)",
                100.0 * cum as f64 / total as f64
            );
        }
    }
    let only = std::env::var("POLICY").unwrap_or_default();
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        match only.as_str() {
            "hcpa" if strategy.name() != "HCPA" => continue,
            "tc" if strategy.name() == "HCPA" => continue,
            _ => {}
        }
        let scheduler = Scheduler::new(&platform).strategy(strategy);
        let mut best = f64::INFINITY;
        let mut makespan = 0.0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let s = scheduler.schedule_with_allocation(&dag, &alloc);
            let dt = t0.elapsed().as_secs_f64();
            makespan = s.makespan_estimate();
            best = best.min(dt);
        }
        println!(
            "{:<10} n={n} best {:.3}ms  ({:.0} tasks/s)  makespan {makespan:.6}",
            strategy.name(),
            best * 1e3,
            f64::from(n) / best
        );
    }
}
