//! Shared fixtures for the Criterion benches.
//!
//! The benches are organized as:
//!
//! * `pipeline` — throughput of each pipeline stage (allocation, mapping
//!   per strategy, simulation) plus the end-to-end [`rats::Pipeline`] run;
//! * `maxmin` — the max-min fairness solver under growing flow counts;
//! * `redistribution` — block-redistribution matrix construction,
//!   alignment and estimation;
//! * `artifacts` — one benchmark per paper table/figure, regenerating a
//!   quick-scale version of each artifact end to end;
//! * `ablation` — cost of the design alternatives called out in DESIGN.md
//!   (candidate policies, area policies, comm-inclusive critical path).

use rats::Pipeline;
use rats_dag::TaskGraph;
use rats_daggen::{fft_dag, irregular_dag, DagParams};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};

/// The paper's mid-size cluster (47 processors), used by most benches.
pub fn grillon() -> Platform {
    Platform::from_spec(&ClusterSpec::grillon())
}

/// A full pipeline on grillon with the paper's default policy chain.
pub fn grillon_pipeline() -> Pipeline {
    Pipeline::from_spec(&ClusterSpec::grillon())
}

/// A 95-task FFT graph with paper-scale costs.
pub fn fft16() -> TaskGraph {
    fft_dag(16, &CostParams::paper(), 0xBEEF)
}

/// A 50-task irregular graph with paper-scale costs.
pub fn irregular50() -> TaskGraph {
    irregular_dag(
        &DagParams {
            n: 50,
            width: 0.5,
            regularity: 0.5,
            density: 0.5,
            jump: 2,
        },
        &CostParams::paper(),
        0xF00D,
    )
}
