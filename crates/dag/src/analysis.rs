//! Scheduling analyses: top/bottom levels and critical paths.
//!
//! All functions take the task execution times as a slice indexed by
//! [`TaskId::index`] and the communication cost of each edge as a closure
//! `(edge id, edge bytes) -> cost`, so the same graph can be analysed under
//! different allocations (CPA/HCPA re-evaluate the critical path after every
//! allocation change) and under different platform parameters. The byte
//! payload is handed to the closure straight from the flat adjacency view
//! ([`TaskGraph::succs_flat`]) so cost models keyed on transfer size need no
//! edge-table lookup of their own.

use crate::graph::TaskGraph;
use crate::ids::{EdgeId, TaskId};

/// The *bottom level* of every task: the length of the longest path from the
/// start of the task to the end of the application, counting task times and
/// edge costs. The mapping phases of CPA/HCPA/RATS process ready tasks by
/// decreasing bottom level ("the farther a task is from the end of the
/// application, the more critical it is").
///
/// # Panics
///
/// Panics if `task_time` has the wrong length or the graph is cyclic.
pub fn bottom_levels<F>(g: &TaskGraph, task_time: &[f64], edge_cost: F) -> Vec<f64>
where
    F: Fn(EdgeId, f64) -> f64,
{
    assert_eq!(
        task_time.len(),
        g.num_tasks(),
        "task_time must have one entry per task"
    );
    let order = g
        .topo_order_cached()
        .expect("bottom_levels requires an acyclic graph");
    let mut bl = vec![0.0; g.num_tasks()];
    for &t in order.iter().rev() {
        let mut tail: f64 = 0.0;
        for a in g.succs_flat(t) {
            tail = tail.max(edge_cost(a.edge, a.bytes) + bl[a.task.index()]);
        }
        bl[t.index()] = task_time[t.index()] + tail;
    }
    bl
}

/// The *top level* of every task: the length of the longest path from the
/// application entry to the start of the task (excluding the task itself).
///
/// # Panics
///
/// Panics if `task_time` has the wrong length or the graph is cyclic.
pub fn top_levels<F>(g: &TaskGraph, task_time: &[f64], edge_cost: F) -> Vec<f64>
where
    F: Fn(EdgeId, f64) -> f64,
{
    assert_eq!(
        task_time.len(),
        g.num_tasks(),
        "task_time must have one entry per task"
    );
    let order = g
        .topo_order_cached()
        .expect("top_levels requires an acyclic graph");
    let mut tl = vec![0.0; g.num_tasks()];
    for &t in order {
        for a in g.succs_flat(t) {
            let dst = a.task;
            let candidate = tl[t.index()] + task_time[t.index()] + edge_cost(a.edge, a.bytes);
            if candidate > tl[dst.index()] {
                tl[dst.index()] = candidate;
            }
        }
    }
    tl
}

/// The critical-path length `C∞`: the heaviest entry-to-exit path weight.
pub fn critical_path_length<F>(g: &TaskGraph, task_time: &[f64], edge_cost: F) -> f64
where
    F: Fn(EdgeId, f64) -> f64,
{
    let bl = bottom_levels(g, task_time, edge_cost);
    g.entries()
        .iter()
        .map(|t| bl[t.index()])
        .fold(0.0, f64::max)
}

/// One concrete critical path (entry → … → exit), as a task list.
///
/// Ties are broken toward the lowest task id so the result is deterministic.
pub fn critical_path<F>(g: &TaskGraph, task_time: &[f64], edge_cost: F) -> Vec<TaskId>
where
    F: Fn(EdgeId, f64) -> f64,
{
    let bl = bottom_levels(g, task_time, &edge_cost);
    let mut path = Vec::new();
    let Some(start) = g.entries().into_iter().max_by(|a, b| {
        bl[a.index()]
            .partial_cmp(&bl[b.index()])
            .expect("bottom levels are finite")
            // prefer the lower id on ties (entries() is ascending, and
            // max_by keeps the *last* maximum, so invert the id order)
            .then(b.index().cmp(&a.index()))
    }) else {
        return path;
    };
    let mut cur = start;
    loop {
        path.push(cur);
        let next = g
            .succs_flat(cur)
            .iter()
            .max_by(|a, b| {
                let wa = edge_cost(a.edge, a.bytes) + bl[a.task.index()];
                let wb = edge_cost(b.edge, b.bytes) + bl[b.task.index()];
                wa.partial_cmp(&wb)
                    .expect("path weights are finite")
                    .then(b.task.index().cmp(&a.task.index()))
            })
            .map(|a| a.task);
        match next {
            Some(t) => cur = t,
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_model::TaskCost;

    fn cost() -> TaskCost {
        TaskCost::new(1_000_000, 100.0, 0.1)
    }

    /// a → b → d and a → c → d with distinct times; returns (graph, ids).
    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost());
        let b = g.add_task("b", cost());
        let c = g.add_task("c", cost());
        let d = g.add_task("d", cost());
        g.add_edge(a, b, 10.0);
        g.add_edge(a, c, 10.0);
        g.add_edge(b, d, 10.0);
        g.add_edge(c, d, 10.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn bottom_levels_zero_comm() {
        let (g, [a, b, c, d]) = diamond();
        // times: a=1, b=5, c=2, d=1
        let t = |id: TaskId, v: f64| (id, v);
        let mut times = vec![0.0; 4];
        for (id, v) in [t(a, 1.0), t(b, 5.0), t(c, 2.0), t(d, 1.0)] {
            times[id.index()] = v;
        }
        let bl = bottom_levels(&g, &times, |_, _| 0.0);
        assert_eq!(bl[d.index()], 1.0);
        assert_eq!(bl[b.index()], 6.0);
        assert_eq!(bl[c.index()], 3.0);
        assert_eq!(bl[a.index()], 7.0); // a + b + d
    }

    #[test]
    fn bottom_levels_with_comm() {
        let (g, [a, b, c, d]) = diamond();
        let times = {
            let mut v = vec![0.0; 4];
            v[a.index()] = 1.0;
            v[b.index()] = 5.0;
            v[c.index()] = 2.0;
            v[d.index()] = 1.0;
            v
        };
        // Edge cost 100 on c→d (edge id 3) makes a→c→d the critical path.
        let bl = bottom_levels(&g, &times, |e, _| if e.index() == 3 { 100.0 } else { 0.0 });
        assert_eq!(bl[c.index()], 103.0);
        assert_eq!(bl[a.index()], 104.0);
    }

    #[test]
    fn top_plus_bottom_is_constant_on_critical_path() {
        let (g, [a, b, _c, d]) = diamond();
        let times = {
            let mut v = vec![0.0; 4];
            v[a.index()] = 1.0;
            v[b.index()] = 5.0;
            v[_c.index()] = 2.0;
            v[d.index()] = 1.0;
            v
        };
        let bl = bottom_levels(&g, &times, |_, _| 0.0);
        let tl = top_levels(&g, &times, |_, _| 0.0);
        let cp = critical_path_length(&g, &times, |_, _| 0.0);
        for t in [a, b, d] {
            let through = tl[t.index()] + bl[t.index()];
            assert!((through - cp).abs() < 1e-12, "task {t}: {through} != {cp}");
        }
    }

    #[test]
    fn critical_path_follows_heaviest_route() {
        let (g, [a, b, _c, d]) = diamond();
        let times = {
            let mut v = vec![0.0; 4];
            v[a.index()] = 1.0;
            v[b.index()] = 5.0;
            v[_c.index()] = 2.0;
            v[d.index()] = 1.0;
            v
        };
        let cp = critical_path(&g, &times, |_, _| 0.0);
        assert_eq!(cp, vec![a, b, d]);
        let len = critical_path_length(&g, &times, |_, _| 0.0);
        let sum: f64 = cp.iter().map(|t| times[t.index()]).sum();
        assert!((sum - len).abs() < 1e-12);
    }

    #[test]
    fn chain_critical_path_is_everything() {
        let mut g = TaskGraph::new();
        let ids: Vec<TaskId> = (0..5)
            .map(|i| g.add_task(format!("t{i}"), cost()))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        let times = vec![2.0; 5];
        assert_eq!(critical_path(&g, &times, |_, _| 1.0), ids);
        // 5 tasks × 2.0 + 4 edges × 1.0
        assert!((critical_path_length(&g, &times, |_, _| 1.0) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_have_no_interaction() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost());
        let b = g.add_task("b", cost());
        let times = {
            let mut v = vec![0.0; 2];
            v[a.index()] = 3.0;
            v[b.index()] = 9.0;
            v
        };
        let bl = bottom_levels(&g, &times, |_, _| 0.0);
        assert_eq!(bl, vec![3.0, 9.0]);
        assert_eq!(critical_path_length(&g, &times, |_, _| 0.0), 9.0);
        assert_eq!(critical_path(&g, &times, |_, _| 0.0), vec![b]);
    }

    #[test]
    #[should_panic(expected = "one entry per task")]
    fn wrong_times_length_panics() {
        let (g, _) = diamond();
        bottom_levels(&g, &[1.0], |_, _| 0.0);
    }
}
