//! The task-graph data structure.

use std::fmt;
use std::sync::OnceLock;

use rats_model::TaskCost;

use crate::ids::{EdgeId, TaskId};

/// A data-parallel task: a node of the application DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskNode {
    /// Human-readable label (used in DOT output and error messages).
    pub name: String,
    /// Computational cost model of the task.
    pub cost: TaskCost,
}

/// A precedence/communication edge: `src` must send `bytes` bytes to `dst`
/// before `dst` can start. The redistribution cost is zero whenever both
/// tasks run on the same set of processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Amount of data transferred, in bytes.
    pub bytes: f64,
}

/// Structural problems detected by [`TaskGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains no tasks.
    Empty,
    /// The graph contains a dependence cycle through the named task.
    Cycle(TaskId),
    /// The graph has no entry (source) task.
    NoEntry,
    /// The graph has no exit (sink) task.
    NoExit,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "task graph is empty"),
            DagError::Cycle(t) => write!(f, "task graph has a cycle through {t}"),
            DagError::NoEntry => write!(f, "task graph has no entry task"),
            DagError::NoExit => write!(f, "task graph has no exit task"),
        }
    }
}

impl std::error::Error for DagError {}

/// One neighbor in a flat adjacency view: the neighboring task, the
/// connecting edge, and the edge's byte payload, packed into 16 bytes so
/// hot scans touch one contiguous array instead of chasing edge ids into
/// the edge table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjEdge {
    /// The neighboring task (the predecessor in [`TaskGraph::preds_flat`],
    /// the successor in [`TaskGraph::succs_flat`]).
    pub task: TaskId,
    /// The connecting edge.
    pub edge: EdgeId,
    /// Bytes carried by the edge (copied from [`Edge::bytes`]).
    pub bytes: f64,
}

/// A CSR (compressed sparse row) adjacency snapshot: the neighbors of task
/// `t` sit in `items[start[t] .. start[t + 1]]`, in edge insertion order.
#[derive(Debug, Clone, Default)]
struct FlatAdj {
    start: Vec<u32>,
    items: Vec<AdjEdge>,
}

/// A directed acyclic graph of moldable data-parallel tasks.
///
/// Nodes and edges are stored in insertion order and addressed by the dense
/// [`TaskId`] / [`EdgeId`] indices; adjacency is kept as per-node edge-id
/// lists in both directions, so predecessor and successor scans — the hot
/// operations of list scheduling — are cache-friendly and allocation-free.
///
/// On top of the edge-id lists, the graph lazily materializes flat CSR
/// adjacency views ([`preds_flat`](Self::preds_flat) /
/// [`succs_flat`](Self::succs_flat)): one contiguous `(task, edge, bytes)`
/// array per direction, built on first use and invalidated by mutation.
/// Schedulers and analyses walk these views to avoid the per-edge
/// pointer chase into the edge table.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
    edges: Vec<Edge>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
    flat_pred: OnceLock<FlatAdj>,
    flat_succ: OnceLock<FlatAdj>,
    topo: OnceLock<Result<Vec<TaskId>, DagError>>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(tasks),
            edges: Vec::with_capacity(edges),
            succ: Vec::with_capacity(tasks),
            pred: Vec::with_capacity(tasks),
            flat_pred: OnceLock::new(),
            flat_succ: OnceLock::new(),
            topo: OnceLock::new(),
        }
    }

    /// Drops the cached flat adjacency views and topological order; called
    /// by every mutation that could invalidate them.
    fn invalidate_flat(&mut self) {
        self.flat_pred = OnceLock::new();
        self.flat_succ = OnceLock::new();
        self.topo = OnceLock::new();
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, cost: TaskCost) -> TaskId {
        self.invalidate_flat();
        let id = TaskId::from_index(self.nodes.len());
        self.nodes.push(TaskNode {
            name: name.into(),
            cost,
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a dependence edge carrying `bytes` bytes from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range ids, or negative/non-finite sizes.
    /// Acyclicity is *not* checked here (use [`validate`](Self::validate)).
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, bytes: f64) -> EdgeId {
        self.invalidate_flat();
        assert!(src != dst, "self-loop on task {src}");
        assert!(
            src.index() < self.nodes.len() && dst.index() < self.nodes.len(),
            "edge endpoints out of range"
        );
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "edge weight must be a finite non-negative byte count, got {bytes}"
        );
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge { src, dst, bytes });
        self.succ[src.index()].push(id);
        self.pred[dst.index()].push(id);
        id
    }

    /// The task with the given id.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a task (e.g. to adjust generated costs).
    #[inline]
    pub fn task_mut(&mut self, id: TaskId) -> &mut TaskNode {
        &mut self.nodes[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Mutable access to an edge.
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        self.invalidate_flat();
        &mut self.edges[id.index()]
    }

    /// Iterates over all task ids in insertion order.
    pub fn task_ids(&self) -> impl ExactSizeIterator<Item = TaskId> + use<> {
        (0..self.nodes.len()).map(TaskId::from_index)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + use<> {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Outgoing edges of `t`.
    #[inline]
    pub fn out_edges(&self, t: TaskId) -> &[EdgeId] {
        &self.succ[t.index()]
    }

    /// Incoming edges of `t`.
    #[inline]
    pub fn in_edges(&self, t: TaskId) -> &[EdgeId] {
        &self.pred[t.index()]
    }

    /// Successor tasks of `t` (with the connecting edge id).
    pub fn successors(&self, t: TaskId) -> impl Iterator<Item = (TaskId, EdgeId)> + '_ {
        self.succ[t.index()]
            .iter()
            .map(|&e| (self.edges[e.index()].dst, e))
    }

    /// Predecessor tasks of `t` (with the connecting edge id).
    pub fn predecessors(&self, t: TaskId) -> impl Iterator<Item = (TaskId, EdgeId)> + '_ {
        self.pred[t.index()]
            .iter()
            .map(|&e| (self.edges[e.index()].src, e))
    }

    /// Builds a flat CSR adjacency in the given direction.
    fn build_flat(&self, lists: &[Vec<EdgeId>], pred: bool) -> FlatAdj {
        let mut start = Vec::with_capacity(self.nodes.len() + 1);
        let mut items = Vec::with_capacity(self.edges.len());
        start.push(0u32);
        for list in lists {
            for &e in list {
                let edge = &self.edges[e.index()];
                items.push(AdjEdge {
                    task: if pred { edge.src } else { edge.dst },
                    edge: e,
                    bytes: edge.bytes,
                });
            }
            start.push(items.len() as u32);
        }
        FlatAdj { start, items }
    }

    /// The incoming edges of `t` as one contiguous slice, in the same order
    /// [`predecessors`](Self::predecessors) yields. Built lazily on first
    /// use (O(edges)), cached until the graph is mutated.
    #[inline]
    pub fn preds_flat(&self, t: TaskId) -> &[AdjEdge] {
        let f = self
            .flat_pred
            .get_or_init(|| self.build_flat(&self.pred, true));
        &f.items[f.start[t.index()] as usize..f.start[t.index() + 1] as usize]
    }

    /// The outgoing edges of `t` as one contiguous slice, in the same order
    /// [`successors`](Self::successors) yields. Built lazily on first use
    /// (O(edges)), cached until the graph is mutated.
    #[inline]
    pub fn succs_flat(&self, t: TaskId) -> &[AdjEdge] {
        let f = self
            .flat_succ
            .get_or_init(|| self.build_flat(&self.succ, false));
        &f.items[f.start[t.index()] as usize..f.start[t.index() + 1] as usize]
    }

    /// In-degree of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.pred[t.index()].len()
    }

    /// Out-degree of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        self.succ[t.index()].len()
    }

    /// Entry tasks (no predecessors).
    pub fn entries(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.in_degree(t) == 0)
            .collect()
    }

    /// Exit tasks (no successors).
    pub fn exits(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.out_degree(t) == 0)
            .collect()
    }

    /// A topological order of the tasks (Kahn's algorithm), or the id of a
    /// task on a cycle.
    ///
    /// The order is computed once per graph and cached (mutation
    /// invalidates it); this returns an owned copy — analyses on the hot
    /// path use [`topo_order_cached`](Self::topo_order_cached) to borrow
    /// the cached slice instead.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, DagError> {
        self.topo_order_cached().map(<[TaskId]>::to_vec)
    }

    /// The cached topological order as a borrowed slice (computed on first
    /// use, dropped on mutation), or the id of a task on a cycle.
    pub fn topo_order_cached(&self) -> Result<&[TaskId], DagError> {
        match self.topo.get_or_init(|| self.compute_topo()) {
            Ok(order) => Ok(order),
            Err(e) => Err(e.clone()),
        }
    }

    fn compute_topo(&self) -> Result<Vec<TaskId>, DagError> {
        let n = self.num_tasks();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.pred[i].len()).collect();
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<TaskId> = self.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        // Use a FIFO index rather than pop() so insertion order is preserved
        // among simultaneously-ready tasks; this keeps the order deterministic.
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            order.push(t);
            for a in self.succs_flat(t) {
                let s = a.task;
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let on_cycle = self
                .task_ids()
                .find(|t| indeg[t.index()] > 0)
                .expect("cycle implies a node with residual in-degree");
            Err(DagError::Cycle(on_cycle))
        }
    }

    /// `true` if the graph contains no cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Checks structural sanity: non-empty, acyclic, has entries and exits.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.is_empty() {
            return Err(DagError::Empty);
        }
        self.topo_order()?;
        if self.entries().is_empty() {
            return Err(DagError::NoEntry);
        }
        if self.exits().is_empty() {
            return Err(DagError::NoExit);
        }
        Ok(())
    }

    /// The *depth level* of every task: entry tasks are level 0 and every
    /// other task sits one past its deepest predecessor (longest-path depth).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn levels(&self) -> Vec<u32> {
        let order = self
            .topo_order()
            .expect("levels() requires an acyclic graph");
        let mut level = vec![0u32; self.num_tasks()];
        for &t in &order {
            for a in self.succs_flat(t) {
                let s = a.task;
                level[s.index()] = level[s.index()].max(level[t.index()] + 1);
            }
        }
        level
    }

    /// Groups task ids by depth level (index = level).
    pub fn tasks_by_level(&self) -> Vec<Vec<TaskId>> {
        let levels = self.levels();
        let depth = levels.iter().copied().max().map_or(0, |d| d as usize + 1);
        let mut buckets = vec![Vec::new(); depth];
        for t in self.task_ids() {
            buckets[levels[t.index()] as usize].push(t);
        }
        buckets
    }

    /// Total sequential work of the application in flop.
    pub fn total_seq_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.cost.seq_flops()).sum()
    }

    /// Total bytes carried by all edges.
    pub fn total_edge_bytes(&self) -> f64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Renders the graph in Graphviz DOT syntax (task names and edge MB).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph G {\n  rankdir=TB;\n");
        for t in self.task_ids() {
            let n = self.task(t);
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\n{:.1} Gflop\"];",
                t,
                n.name,
                n.cost.seq_flops() / 1e9
            );
        }
        for e in self.edge_ids() {
            let Edge { src, dst, bytes } = *self.edge(e);
            let _ = writeln!(out, "  {src} -> {dst} [label=\"{:.1} MB\"];", bytes / 1e6);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> TaskCost {
        TaskCost::new(1_000_000, 100.0, 0.1)
    }

    /// A diamond: a → b, a → c, b → d, c → d.
    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost());
        let b = g.add_task("b", cost());
        let c = g.add_task("c", cost());
        let d = g.add_task("d", cost());
        g.add_edge(a, b, 8.0);
        g.add_edge(a, c, 8.0);
        g.add_edge(b, d, 8.0);
        g.add_edge(c, d, 8.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.entries(), vec![a]);
        assert_eq!(g.exits(), vec![d]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        let succs: Vec<TaskId> = g.successors(a).map(|(t, _)| t).collect();
        assert_eq!(succs, vec![b, c]);
        let preds: Vec<TaskId> = g.predecessors(d).map(|(t, _)| t).collect();
        assert_eq!(preds, vec![b, c]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.num_tasks()];
            for (i, t) in order.iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn cycle_detection() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost());
        let b = g.add_task("b", cost());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, 1.0);
        assert!(!g.is_acyclic());
        assert!(matches!(g.validate(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn empty_graph_invalid() {
        assert_eq!(TaskGraph::new().validate(), Err(DagError::Empty));
    }

    #[test]
    fn levels_of_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let lv = g.levels();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[b.index()], 1);
        assert_eq!(lv[c.index()], 1);
        assert_eq!(lv[d.index()], 2);
        let by = g.tasks_by_level();
        assert_eq!(by.len(), 3);
        assert_eq!(by[1], vec![b, c]);
    }

    #[test]
    fn totals() {
        let (g, _) = diamond();
        assert!((g.total_edge_bytes() - 32.0).abs() < 1e-12);
        assert!((g.total_seq_flops() - 4.0 * 1e8).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost());
        g.add_edge(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "edge weight")]
    fn rejects_negative_weight() {
        let (mut g, [a, b, ..]) = diamond();
        g.add_edge(b, a, -1.0);
    }

    #[test]
    fn dot_output_mentions_every_task() {
        let (g, _) = diamond();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        for t in g.task_ids() {
            assert!(dot.contains(&format!("{t} ")));
        }
        assert!(dot.contains("->"));
    }

    #[test]
    fn topo_order_is_deterministic() {
        let (g, _) = diamond();
        assert_eq!(g.topo_order().unwrap(), g.topo_order().unwrap());
    }
}
