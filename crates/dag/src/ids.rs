//! Typed index types for tasks and edges.

use std::fmt;

/// Identifier of a task (node) inside a [`TaskGraph`](crate::TaskGraph).
///
/// Ids are dense indices assigned in insertion order, which lets schedulers
/// keep per-task state in plain `Vec`s indexed by `TaskId::index()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

/// Identifier of a dependence edge inside a [`TaskGraph`](crate::TaskGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl TaskId {
    /// Creates a `TaskId` from a raw index. The id is only meaningful for
    /// the graph it was created for.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("more than u32::MAX tasks"))
    }

    /// The dense index of this task (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an `EdgeId` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("more than u32::MAX edges"))
    }

    /// The dense index of this edge (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(TaskId::from_index(17).index(), 17);
        assert_eq!(EdgeId::from_index(0).index(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(TaskId::from_index(3).to_string(), "n3");
        assert_eq!(EdgeId::from_index(4).to_string(), "e4");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TaskId::from_index(1) < TaskId::from_index(2));
    }
}
