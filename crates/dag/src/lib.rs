//! Mixed-parallel application model: DAGs of moldable data-parallel tasks.
//!
//! A mixed-parallel application is a Directed Acyclic Graph `G = (N, E)`
//! whose nodes are data-parallel *tasks* and whose edges carry the amount of
//! data (in bytes) a task must send to a successor (CLUSTER 2008 paper,
//! section II-A). Tasks are *moldable*: the execution time on `p` processors
//! comes from the task's [`TaskCost`](rats_model::TaskCost) via Amdahl's law.
//!
//! The crate provides:
//!
//! * [`TaskGraph`] — a compact adjacency-list DAG with typed [`TaskId`] /
//!   [`EdgeId`] indices, suited to the dense side-arrays used by schedulers;
//! * structural queries: entries, exits, topological order, depth levels,
//!   validation ([`DagError`]);
//! * scheduling analyses: top/bottom levels and the critical path for a given
//!   vector of task execution times (see [`bottom_levels`], [`critical_path`]);
//! * event-driven readiness tracking for list schedulers: a flattened
//!   successor view plus Kahn-style in-degree counters, so placing a task
//!   discovers newly ready successors in O(out-degree) instead of a
//!   per-round full-graph re-scan ([`ReadyTracker`], [`SuccessorView`]);
//! * Graphviz DOT export for debugging ([`TaskGraph::to_dot`]).

mod analysis;
mod graph;
mod ids;
mod ready;
mod serialize;
mod stats;

pub use analysis::{bottom_levels, critical_path, critical_path_length, top_levels};
pub use graph::{DagError, Edge, TaskGraph, TaskNode};
pub use ids::{EdgeId, TaskId};
pub use ready::{ReadyTracker, SuccessorView};
pub use serialize::{from_text, to_text, ParseError};
pub use stats::GraphStats;
