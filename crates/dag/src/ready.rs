//! Event-driven readiness tracking for list schedulers.
//!
//! The mapping driver's original formulation re-scanned every task per
//! ready-list round to find those whose predecessors were all placed — an
//! O(n²) pattern (worse with in-degree factored in). [`ReadyTracker`]
//! replaces the scan with Kahn-style in-degree counters over a flattened
//! successor view ([`SuccessorView`]): placing a task discovers its newly
//! ready successors in O(out-degree).

use crate::graph::TaskGraph;
use crate::ids::{EdgeId, TaskId};

// `SuccessorView` predates `TaskGraph`'s built-in flat adjacency caches
// (`TaskGraph::succs_flat`); it remains for callers that want an owned
// snapshot decoupled from the graph's lifetime. `ReadyTracker` itself now
// borrows the graph and walks the cached flat view directly, so building a
// tracker is O(tasks), not O(edges).

/// A flat CSR (compressed sparse row) view of the successor adjacency:
/// `(successor, edge)` pairs of task `t` sit in
/// `pairs[offsets[t] .. offsets[t + 1]]`, in edge insertion order — the same
/// order [`TaskGraph::successors`] yields.
///
/// The view is a snapshot: it does not observe tasks or edges added to the
/// graph after construction.
#[derive(Debug, Clone)]
pub struct SuccessorView {
    offsets: Vec<u32>,
    pairs: Vec<(TaskId, EdgeId)>,
}

impl SuccessorView {
    /// Flattens the graph's successor adjacency.
    pub fn new(graph: &TaskGraph) -> Self {
        let n = graph.num_tasks();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut pairs = Vec::with_capacity(graph.num_edges());
        offsets.push(0);
        for t in graph.task_ids() {
            pairs.extend(graph.successors(t));
            offsets.push(pairs.len() as u32);
        }
        Self { offsets, pairs }
    }

    /// The `(successor, edge)` pairs of `t`, in edge insertion order.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[(TaskId, EdgeId)] {
        let (lo, hi) = (
            self.offsets[t.index()] as usize,
            self.offsets[t.index() + 1] as usize,
        );
        &self.pairs[lo..hi]
    }

    /// Number of tasks covered by the view.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Incremental ready-set maintenance: an in-degree counter per task plus a
/// batch of tasks that became ready since the last [`take_batch`] call.
///
/// The batch discipline mirrors round-based list scheduling: the driver
/// takes the current batch, orders and places every task in it (calling
/// [`complete`] per placement), and the successors that became ready during
/// the round accumulate into the *next* batch. This reproduces exactly the
/// rounds a full readiness re-scan would produce, because a round drains
/// every ready task before the next scan.
///
/// [`take_batch`]: ReadyTracker::take_batch
/// [`complete`]: ReadyTracker::complete
#[derive(Debug, Clone)]
pub struct ReadyTracker<'g> {
    graph: &'g TaskGraph,
    /// Remaining unplaced predecessors per task.
    pending_preds: Vec<u32>,
    /// Tasks that became ready since the last `take_batch` (roots at start),
    /// in discovery order.
    batch: Vec<TaskId>,
    remaining: usize,
}

impl<'g> ReadyTracker<'g> {
    /// Builds the tracker; the first batch holds the graph's entry tasks in
    /// ascending id order.
    pub fn new(graph: &'g TaskGraph) -> Self {
        let pending_preds: Vec<u32> = graph
            .task_ids()
            .map(|t| graph.in_degree(t) as u32)
            .collect();
        let batch: Vec<TaskId> = graph
            .task_ids()
            .filter(|t| pending_preds[t.index()] == 0)
            .collect();
        let remaining = graph.num_tasks();
        Self {
            graph,
            pending_preds,
            batch,
            remaining,
        }
    }

    /// Takes every task that became ready since the previous call (the entry
    /// tasks on the first call). Returns an empty vector once the batch is
    /// drained; on an acyclic graph the batch is non-empty whenever
    /// unplaced tasks remain.
    pub fn take_batch(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.batch)
    }

    /// Like [`take_batch`](Self::take_batch), but moves the batch into
    /// `out` (cleared first) and reuses `out`'s buffer as the next batch's
    /// storage — round-based drivers ping-pong one buffer instead of
    /// allocating a fresh `Vec` per round.
    pub fn take_batch_into(&mut self, out: &mut Vec<TaskId>) {
        out.clear();
        std::mem::swap(&mut self.batch, out);
    }

    /// The tasks currently waiting in the batch (ready but not yet taken).
    pub fn batch(&self) -> &[TaskId] {
        &self.batch
    }

    /// Records that `t` has been placed: each successor's pending-predecessor
    /// counter drops, and successors reaching zero join the next batch.
    /// O(out-degree of `t`).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `t` still has unplaced predecessors or is
    /// completed twice — both indicate a driver bug.
    pub fn complete(&mut self, t: TaskId) {
        debug_assert!(
            self.pending_preds[t.index()] == 0,
            "completed {t} with unplaced predecessors"
        );
        debug_assert!(self.remaining > 0, "completed more tasks than exist");
        self.remaining -= 1;
        for a in self.graph.succs_flat(t) {
            let s = a.task;
            let c = &mut self.pending_preds[s.index()];
            debug_assert!(*c > 0, "{s} lost more predecessors than it has");
            *c -= 1;
            if *c == 0 {
                self.batch.push(s);
            }
        }
    }

    /// Number of tasks not yet completed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` once every task has been completed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_model::TaskCost;

    fn cost() -> TaskCost {
        TaskCost::new(1_000_000, 100.0, 0.1)
    }

    /// a → b, a → c, b → d, c → d.
    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost());
        let b = g.add_task("b", cost());
        let c = g.add_task("c", cost());
        let d = g.add_task("d", cost());
        g.add_edge(a, b, 8.0);
        g.add_edge(a, c, 8.0);
        g.add_edge(b, d, 8.0);
        g.add_edge(c, d, 8.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn successor_view_matches_graph_adjacency() {
        let (g, _) = diamond();
        let v = SuccessorView::new(&g);
        assert_eq!(v.num_tasks(), g.num_tasks());
        for t in g.task_ids() {
            let flat: Vec<_> = v.successors(t).to_vec();
            let iter: Vec<_> = g.successors(t).collect();
            assert_eq!(flat, iter);
        }
    }

    #[test]
    fn diamond_readiness_rounds() {
        let (g, [a, b, c, d]) = diamond();
        let mut tr = ReadyTracker::new(&g);
        assert_eq!(tr.remaining(), 4);
        assert_eq!(tr.take_batch(), vec![a]);
        tr.complete(a);
        // Both children become ready only after a completes, in edge order.
        assert_eq!(tr.batch(), &[b, c]);
        let batch = tr.take_batch();
        for t in batch {
            tr.complete(t);
        }
        // d becomes ready exactly once, despite two incoming edges.
        assert_eq!(tr.take_batch(), vec![d]);
        tr.complete(d);
        assert!(tr.is_done());
        assert!(tr.take_batch().is_empty());
    }

    #[test]
    fn multi_root_graphs_seed_all_roots() {
        // Three roots, one shared sink, one isolated task.
        let mut g = TaskGraph::new();
        let r0 = g.add_task("r0", cost());
        let r1 = g.add_task("r1", cost());
        let r2 = g.add_task("r2", cost());
        let sink = g.add_task("sink", cost());
        let lone = g.add_task("lone", cost());
        g.add_edge(r0, sink, 1.0);
        g.add_edge(r1, sink, 1.0);
        g.add_edge(r2, sink, 1.0);
        let mut tr = ReadyTracker::new(&g);
        assert_eq!(tr.take_batch(), vec![r0, r1, r2, lone]);
        tr.complete(r0);
        tr.complete(r1);
        assert!(tr.batch().is_empty(), "sink waits for its third parent");
        tr.complete(r2);
        assert_eq!(tr.batch(), &[sink]);
        tr.complete(lone);
        tr.complete(sink);
        assert!(tr.is_done());
    }

    #[test]
    fn batches_match_full_rescan_rounds() {
        // Against a layered random-ish graph, tracker batches must equal the
        // rounds a full readiness re-scan would compute.
        let mut g = TaskGraph::new();
        let tasks: Vec<TaskId> = (0..12)
            .map(|i| g.add_task(format!("t{i}"), cost()))
            .collect();
        // Edges forming two interleaved diamonds plus a long chain.
        for (s, d) in [
            (0, 2),
            (0, 3),
            (1, 3),
            (1, 4),
            (2, 5),
            (3, 5),
            (3, 6),
            (4, 6),
            (5, 7),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 11),
        ] {
            g.add_edge(tasks[s], tasks[d], 1.0);
        }
        let mut tr = ReadyTracker::new(&g);
        let mut placed = vec![false; g.num_tasks()];
        let mut total = 0;
        while total < g.num_tasks() {
            // Reference: full scan.
            let scan: Vec<TaskId> = g
                .task_ids()
                .filter(|&t| {
                    !placed[t.index()] && g.predecessors(t).all(|(p, _)| placed[p.index()])
                })
                .collect();
            let mut batch = tr.take_batch();
            batch.sort_by_key(|t| t.index());
            assert_eq!(batch, scan, "round {total}");
            for t in batch {
                placed[t.index()] = true;
                tr.complete(t);
                total += 1;
            }
        }
        assert!(tr.is_done());
    }
}
