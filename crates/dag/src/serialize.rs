//! A minimal line-oriented text format for task graphs.
//!
//! The format is meant for fixtures, interchange with external tools and
//! reproducible bug reports:
//!
//! ```text
//! # comments and blank lines are ignored
//! task <name> <m_elements> <ops_per_element> <alpha>
//! edge <src_index> <dst_index> <bytes>
//! ```
//!
//! Tasks are numbered by order of appearance (matching [`TaskId::index`]).

use std::fmt::Write as _;

use rats_model::TaskCost;

use crate::graph::TaskGraph;
use crate::ids::TaskId;

/// Errors produced by [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph to the text format. Round-trips with [`from_text`].
pub fn to_text(g: &TaskGraph) -> String {
    let mut out = String::with_capacity(64 * (g.num_tasks() + g.num_edges()));
    let _ = writeln!(
        out,
        "# rats task graph: {} tasks, {} edges",
        g.num_tasks(),
        g.num_edges()
    );
    for t in g.task_ids() {
        let node = g.task(t);
        let _ = writeln!(
            out,
            "task {} {} {} {}",
            node.name.replace(char::is_whitespace, "_"),
            node.cost.m_elements(),
            node.cost.ops_per_element(),
            node.cost.alpha(),
        );
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "edge {} {} {}",
            edge.src.index(),
            edge.dst.index(),
            edge.bytes
        );
    }
    out
}

/// Parses the text format produced by [`to_text`].
pub fn from_text(text: &str) -> Result<TaskGraph, ParseError> {
    let mut g = TaskGraph::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first().copied() {
            Some("task") => {
                if fields.len() != 5 {
                    return Err(err(format!(
                        "task needs 4 fields (name m a alpha), got {}",
                        fields.len() - 1
                    )));
                }
                let m: u64 = fields[2].parse().map_err(|e| err(format!("bad m: {e}")))?;
                let a: f64 = fields[3]
                    .parse()
                    .map_err(|e| err(format!("bad ops/element: {e}")))?;
                let alpha: f64 = fields[4]
                    .parse()
                    .map_err(|e| err(format!("bad alpha: {e}")))?;
                if !(0.0..=1.0).contains(&alpha) || !a.is_finite() || a < 0.0 {
                    return Err(err("cost parameters out of range".into()));
                }
                g.add_task(fields[1], TaskCost::new(m, a, alpha));
            }
            Some("edge") => {
                if fields.len() != 4 {
                    return Err(err(format!(
                        "edge needs 3 fields (src dst bytes), got {}",
                        fields.len() - 1
                    )));
                }
                let src: usize = fields[1]
                    .parse()
                    .map_err(|e| err(format!("bad src: {e}")))?;
                let dst: usize = fields[2]
                    .parse()
                    .map_err(|e| err(format!("bad dst: {e}")))?;
                let bytes: f64 = fields[3]
                    .parse()
                    .map_err(|e| err(format!("bad bytes: {e}")))?;
                let n = g.num_tasks();
                if src >= n || dst >= n {
                    return Err(err(format!(
                        "edge {src}->{dst} references unknown task (have {n})"
                    )));
                }
                if src == dst || !bytes.is_finite() || bytes < 0.0 {
                    return Err(err("invalid edge".into()));
                }
                g.add_edge(TaskId::from_index(src), TaskId::from_index(dst), bytes);
            }
            Some(k) => return Err(err(format!("unknown record kind {k:?}"))),
            None => unreachable!("blank lines were skipped"),
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("load data", TaskCost::new(4_000_000, 64.0, 0.0));
        let b = g.add_task("solve", TaskCost::new(121_000_000, 512.0, 0.25));
        g.add_edge(a, b, 3.2e7);
        g
    }

    #[test]
    fn round_trip_sample() {
        let g = sample();
        let text = to_text(&g);
        let h = from_text(&text).unwrap();
        assert_eq!(h.num_tasks(), g.num_tasks());
        assert_eq!(h.num_edges(), g.num_edges());
        for (x, y) in g.task_ids().zip(h.task_ids()) {
            assert_eq!(g.task(x).cost, h.task(y).cost);
        }
        for (x, y) in g.edge_ids().zip(h.edge_ids()) {
            assert_eq!(g.edge(x).bytes, h.edge(y).bytes);
        }
    }

    #[test]
    fn whitespace_in_names_is_preserved_as_underscores() {
        let text = to_text(&sample());
        assert!(text.contains("task load_data"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = from_text("# hi\n\n  \ntask t 1 1 0\n").unwrap();
        assert_eq!(g.num_tasks(), 1);
    }

    #[test]
    fn rejects_unknown_record() {
        let e = from_text("node x").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown record"));
    }

    #[test]
    fn rejects_dangling_edge() {
        let e = from_text("task t 1 1 0\nedge 0 5 10").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown task"));
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(from_text("task t xyz 1 0").is_err());
        assert!(from_text("task t 1 1 2.0").is_err(), "alpha out of range");
    }

    proptest! {
        /// Arbitrary generated DAG-ish structures survive the round trip.
        #[test]
        fn round_trip_random(n in 1usize..30, extra_edges in 0usize..60, seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut g = TaskGraph::new();
            for i in 0..n {
                g.add_task(
                    format!("t{i}"),
                    TaskCost::new(
                        rng.random_range(1..1_000_000u64),
                        rng.random_range(1.0..512.0),
                        rng.random_range(0.0..=0.25),
                    ),
                );
            }
            for _ in 0..extra_edges {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                if a < b {
                    g.add_edge(
                        TaskId::from_index(a),
                        TaskId::from_index(b),
                        rng.random_range(0.0..1e9),
                    );
                }
            }
            let h = from_text(&to_text(&g)).unwrap();
            prop_assert_eq!(h.num_tasks(), g.num_tasks());
            prop_assert_eq!(h.num_edges(), g.num_edges());
            for (x, y) in g.edge_ids().zip(h.edge_ids()) {
                prop_assert_eq!(g.edge(x).src, h.edge(y).src);
                prop_assert_eq!(g.edge(x).dst, h.edge(y).dst);
                prop_assert!((g.edge(x).bytes - h.edge(y).bytes).abs() < 1e-9 * g.edge(x).bytes.max(1.0));
            }
        }
    }
}
