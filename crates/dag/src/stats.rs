//! Structural and cost statistics of task graphs.

use rats_model::BYTES_PER_ELEMENT;

use crate::graph::TaskGraph;

/// Aggregate description of a task graph, useful for workload
/// characterization tables and for sanity-checking generators.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of entry tasks.
    pub entries: usize,
    /// Number of exit tasks.
    pub exits: usize,
    /// Number of depth levels.
    pub depth: usize,
    /// Largest level size (the DAG's maximum task parallelism).
    pub max_width: usize,
    /// Mean level size.
    pub avg_width: f64,
    /// Mean in-degree over non-entry tasks.
    pub avg_in_degree: f64,
    /// Total sequential computation in flop.
    pub total_flops: f64,
    /// Total bytes carried by edges.
    pub total_edge_bytes: f64,
    /// Communication-to-computation ratio in seconds-per-second terms for a
    /// 1 GFlop/s processor and a 1 GB/s link (dimensionless once both
    /// normalizations are applied; > 1 means data-dominated).
    pub comm_to_comp: f64,
}

impl GraphStats {
    /// Computes the statistics of `g`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or cyclic.
    pub fn of(g: &TaskGraph) -> Self {
        assert!(!g.is_empty(), "no statistics for an empty graph");
        let by_level = g.tasks_by_level();
        let depth = by_level.len();
        let max_width = by_level.iter().map(Vec::len).max().unwrap_or(0);
        let avg_width = g.num_tasks() as f64 / depth as f64;
        let non_entries = g.task_ids().filter(|&t| g.in_degree(t) > 0).count();
        let avg_in_degree = if non_entries == 0 {
            0.0
        } else {
            g.num_edges() as f64 / non_entries as f64
        };
        let total_flops = g.total_seq_flops();
        let total_edge_bytes = g.total_edge_bytes();
        // 1 GFlop/s compute vs 1 GB/s network.
        let comp_s = total_flops / 1e9;
        let comm_s = total_edge_bytes / 1e9;
        Self {
            tasks: g.num_tasks(),
            edges: g.num_edges(),
            entries: g.entries().len(),
            exits: g.exits().len(),
            depth,
            max_width,
            avg_width,
            avg_in_degree,
            total_flops,
            total_edge_bytes,
            comm_to_comp: if comp_s == 0.0 {
                f64::INFINITY
            } else {
                comm_s / comp_s
            },
        }
    }

    /// Mean dataset size per task, in elements.
    pub fn avg_elements_per_task(&self) -> f64 {
        self.total_edge_bytes / (BYTES_PER_ELEMENT as f64) / self.edges.max(1) as f64
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tasks, {} edges, depth {}, width ≤ {} (avg {:.1}), \
             {:.1} Gflop, {:.1} MB over edges, comm/comp {:.2}",
            self.tasks,
            self.edges,
            self.depth,
            self.max_width,
            self.avg_width,
            self.total_flops / 1e9,
            self.total_edge_bytes / 1e6,
            self.comm_to_comp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_model::TaskCost;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = TaskCost::new(1_000_000, 100.0, 0.1);
        let a = g.add_task("a", c);
        let b = g.add_task("b", c);
        let d = g.add_task("c", c);
        let e = g.add_task("d", c);
        g.add_edge(a, b, 8e6);
        g.add_edge(a, d, 8e6);
        g.add_edge(b, e, 8e6);
        g.add_edge(d, e, 8e6);
        g
    }

    #[test]
    fn diamond_stats() {
        let s = GraphStats::of(&diamond());
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.entries, 1);
        assert_eq!(s.exits, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_width, 2);
        assert!((s.avg_in_degree - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.total_edge_bytes - 32e6).abs() < 1.0);
    }

    #[test]
    fn comm_to_comp_captures_data_dominance() {
        // 4 tasks × 1e8 flop = 0.4 Gflop-s at 1 GFlop/s; 32 MB at 1 GB/s =
        // 0.032 s → ratio 0.08.
        let s = GraphStats::of(&diamond());
        assert!((s.comm_to_comp - 0.032 / 0.4).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let text = GraphStats::of(&diamond()).to_string();
        assert!(text.contains("4 tasks"));
        assert!(text.contains("depth 3"));
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        GraphStats::of(&TaskGraph::new());
    }
}
