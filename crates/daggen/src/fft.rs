//! FFT task graphs (recursive decomposition + butterfly stages).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rats_dag::{TaskGraph, TaskId};
use rats_model::{CostParams, TaskCost};

use crate::assign_level_costs;

/// Number of tasks of the FFT graph for `k` data points:
/// `2k − 1` recursive-call tasks plus `k·log₂ k` butterfly tasks
/// (5, 15, 39, 95 for k = 2, 4, 8, 16 — the paper's sizes).
pub fn fft_task_count(k: u32) -> u32 {
    assert!(
        k.is_power_of_two() && k >= 2,
        "k must be a power of two ≥ 2"
    );
    2 * k - 1 + k * k.ilog2()
}

/// Builds the FFT task graph for `k` data points (`k` a power of two ≥ 2).
///
/// The graph has two parts:
///
/// * a binary tree of **recursive-call** tasks: the root splits the input
///   in halves down to `k` leaves (`2k − 1` tasks, `log₂ k + 1` levels);
/// * `log₂ k` levels of `k` **butterfly** tasks; the butterfly task `i` of
///   stage `s` combines the results of tasks `i` and `i XOR 2^(s−1)` of the
///   previous stage (stage 0 being the recursion leaves).
///
/// All tasks of a level share one randomly drawn cost, which makes *every*
/// entry-to-exit path a critical path — the paper's key property of this
/// family. The graph has a single entry (the root) and `k` exits.
pub fn fft_dag(k: u32, cost: &CostParams, seed: u64) -> TaskGraph {
    assert!(
        k.is_power_of_two() && k >= 2,
        "k must be a power of two ≥ 2"
    );
    let stages = k.ilog2();
    let mut g = TaskGraph::with_capacity(fft_task_count(k) as usize, 4 * k as usize);
    let mut rng = StdRng::seed_from_u64(seed);

    // Recursive-call tree, level by level: level d has 2^d tasks.
    let mut tree_levels: Vec<Vec<TaskId>> = Vec::with_capacity(stages as usize + 1);
    for d in 0..=stages {
        let level: Vec<TaskId> = (0..(1u32 << d))
            .map(|i| g.add_task(format!("rec{d}_{i}"), TaskCost::zero()))
            .collect();
        if d > 0 {
            for (i, &t) in level.iter().enumerate() {
                g.add_edge(tree_levels[d as usize - 1][i / 2], t, 0.0);
            }
        }
        tree_levels.push(level);
    }

    // Butterfly stages: stage 0 is the tree's leaf level.
    let mut prev: Vec<TaskId> = tree_levels.last().expect("tree has levels").clone();
    for s in 1..=stages {
        let stage: Vec<TaskId> = (0..k)
            .map(|i| g.add_task(format!("bfly{s}_{i}"), TaskCost::zero()))
            .collect();
        let stride = 1u32 << (s - 1);
        for (i, &t) in stage.iter().enumerate() {
            let i = i as u32;
            g.add_edge(prev[i as usize], t, 0.0);
            g.add_edge(prev[(i ^ stride) as usize], t, 0.0);
        }
        prev = stage;
    }

    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_dag::{bottom_levels, critical_path_length, top_levels};

    #[test]
    fn paper_task_counts() {
        assert_eq!(fft_task_count(2), 5);
        assert_eq!(fft_task_count(4), 15);
        assert_eq!(fft_task_count(8), 39);
        assert_eq!(fft_task_count(16), 95);
    }

    #[test]
    fn structure_k4() {
        let g = fft_dag(4, &CostParams::tiny(), 0);
        assert_eq!(g.num_tasks(), 15);
        assert_eq!(g.entries().len(), 1, "single root entry");
        assert_eq!(g.exits().len(), 4, "k exit tasks");
        g.validate().unwrap();
        // Tree edges: 2 + 4; butterfly edges: 2 stages × 4 tasks × 2 parents.
        assert_eq!(g.num_edges(), 6 + 16);
    }

    #[test]
    fn every_path_is_critical() {
        // With per-level uniform costs, top + bottom level must be the
        // critical-path length at *every* task.
        for k in [2u32, 4, 8, 16] {
            let g = fft_dag(k, &CostParams::tiny(), 9);
            let times: Vec<f64> = g.task_ids().map(|t| g.task(t).cost.time(1, 3.0)).collect();
            let comm = |_: rats_dag::EdgeId, bytes: f64| bytes / 125e6;
            let bl = bottom_levels(&g, &times, comm);
            let tl = top_levels(&g, &times, comm);
            let cp = critical_path_length(&g, &times, comm);
            for t in g.task_ids() {
                let through = tl[t.index()] + bl[t.index()];
                assert!(
                    (through - cp).abs() < 1e-9 * cp,
                    "k={k}, task {t}: {through} vs {cp}"
                );
            }
        }
    }

    #[test]
    fn butterfly_tasks_have_two_parents() {
        let g = fft_dag(8, &CostParams::tiny(), 4);
        let levels = g.levels();
        let tree_depth = 3; // log2(8): levels 0..=3 are the tree
        for t in g.task_ids() {
            if levels[t.index()] > tree_depth {
                assert_eq!(g.in_degree(t), 2, "butterfly task {t}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fft_dag(8, &CostParams::tiny(), 77);
        let b = fft_dag(8, &CostParams::tiny(), 77);
        for (x, y) in a.task_ids().zip(b.task_ids()) {
            assert_eq!(a.task(x).cost, b.task(y).cost);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        fft_dag(6, &CostParams::tiny(), 0);
    }
}
