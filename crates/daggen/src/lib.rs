//! Task-graph generators for the paper's four application families.
//!
//! The evaluation (section IV-A, Table III) uses 557 application
//! configurations drawn from four families:
//!
//! * **layered random DAGs** (108) — levels of tasks where every task in a
//!   level has the *same* cost, so all transfers between two levels share
//!   the same communication cost;
//! * **irregular random DAGs** (324) — per-task random costs plus random
//!   *jump edges* that skip over levels (`jump ∈ {1, 2, 4}`), capturing
//!   "the heterogeneous and unpredictable aspects of scientific workflows";
//! * **FFT task graphs** (100) — `2k−1` recursive-call tasks and
//!   `k·log₂ k` butterfly tasks for `k ∈ {2, 4, 8, 16}` data points
//!   (5, 15, 39 and 95 tasks); every entry-to-exit path is critical;
//! * **Strassen task graphs** (25) — the 25-task graph of Strassen's
//!   matrix multiplication: 10 entry addition tasks, 7 sub-multiplications
//!   and 8 combination additions.
//!
//! Random DAG shape follows the three classic parameters of Suter's
//! `daggen` program (the paper's reference \[12\]): **width** (`n^width`
//! tasks per level — small values give chains, large values fork-joins),
//! **regularity** (how uniform level sizes are) and **density** (how many
//! edges connect consecutive levels). All generators are deterministic
//! functions of a `u64` seed.

mod fft;
pub mod population;
mod random;
mod shapes;
mod strassen;
pub mod suite;

pub use fft::{fft_dag, fft_task_count};
pub use population::{fnv1a, read_population, write_population, Population, PopulationError};
pub use random::{irregular_dag, layered_dag, DagParams};
pub use shapes::{chain_dag, fork_join_dag, in_tree_dag, out_tree_dag, tree_task_count};
pub use strassen::{strassen_dag, STRASSEN_TASKS};
pub use suite::{paper_suite, scenario_seed, AppFamily, Scenario};

use rand::rngs::StdRng;

use rats_dag::TaskGraph;
use rats_model::CostParams;

/// Assigns per-*level* random costs to every task of `g` (the paper's rule
/// for layered, FFT and Strassen graphs: "computation or communication
/// tasks in a given level have the same cost") and sets every edge's payload
/// to its producer's dataset size.
pub(crate) fn assign_level_costs(g: &mut TaskGraph, cost: &CostParams, rng: &mut StdRng) {
    let levels = g.levels();
    let depth = levels.iter().copied().max().map_or(0, |d| d as usize + 1);
    let per_level: Vec<_> = (0..depth).map(|_| cost.sample(rng)).collect();
    for t in g.task_ids() {
        g.task_mut(t).cost = per_level[levels[t.index()] as usize];
    }
    set_edge_payloads(g);
}

/// Sets every edge's byte count to the dataset size of its producing task
/// ("the volume of data communicated by a task to each of its children is
/// equal to m").
pub(crate) fn set_edge_payloads(g: &mut TaskGraph) {
    for e in g.edge_ids() {
        let src = g.edge(e).src;
        let bytes = g.task(src).cost.data_bytes();
        g.edge_mut(e).bytes = bytes;
    }
}

/// Draws `k` distinct values from `0..n` (k ≤ n), in random order.
pub(crate) fn sample_distinct(rng: &mut StdRng, n: u32, k: u32) -> Vec<u32> {
    use rand::Rng;
    debug_assert!(k <= n);
    let mut pool: Vec<u32> = (0..n).collect();
    for i in 0..k as usize {
        let j = rng.random_range(i..n as usize);
        pool.swap(i, j);
    }
    pool.truncate(k as usize);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn level_costs_are_uniform_within_levels() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = fft_dag(4, &CostParams::tiny(), 3);
        assign_level_costs(&mut g, &CostParams::tiny(), &mut rng);
        let levels = g.levels();
        for a in g.task_ids() {
            for b in g.task_ids() {
                if levels[a.index()] == levels[b.index()] {
                    assert_eq!(g.task(a).cost, g.task(b).cost);
                }
            }
        }
    }

    #[test]
    fn edge_payloads_follow_producers() {
        let g = fft_dag(8, &CostParams::tiny(), 5);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert_eq!(edge.bytes, g.task(edge.src).cost.data_bytes());
        }
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let mut v = sample_distinct(&mut rng, 10, 7);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 7);
        }
    }
}
