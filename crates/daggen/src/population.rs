//! Serialization of whole scenario populations.
//!
//! A campaign's scenario suite is a deterministic function of `(suite,
//! seed)`, but generating it is not free — the paper suite builds 557 DAGs,
//! and custom populations can be far larger. When many worker processes
//! execute shards of one campaign on a shared filesystem, each of them
//! regenerating the same population is pure waste. This module gives the
//! population a durable form: the dispatcher writes it once under the
//! campaign's manifest directory and every worker reads it back instead of
//! regenerating.
//!
//! The format is line-oriented text built on the task-graph format of
//! [`rats_dag::serialize`]:
//!
//! ```text
//! # rats scenario population
//! meta format 1 seed <u64> suite <tag> count <n>
//! begin <id> <family> <scenario name…>
//! <task/edge lines of rats_dag::to_text>
//! end
//! …one begin/end block per scenario…
//! digest <16-hex FNV-1a of everything above>
//! ```
//!
//! Floats go through the shortest-round-trip `Display` form, so a reloaded
//! population is **bit-identical** to the generated one — schedules and
//! simulated makespans computed from the cache match the regenerating path
//! exactly (pinned by tests here and in the dispatch crate).

use std::fmt;

use rats_dag::{from_text, to_text};

use crate::suite::{AppFamily, Scenario};

/// Current population file format version.
const FORMAT: u64 = 1;

/// A parse/validation failure, with the 1-based line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationError {
    /// 1-based line number (0 when the failure is not line-specific).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PopulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "population: {}", self.message)
        } else {
            write!(f, "population line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for PopulationError {}

/// A deserialized population: the provenance header plus the scenarios.
#[derive(Debug, Clone)]
pub struct Population {
    /// The base seed the population was generated from.
    pub seed: u64,
    /// Suite tag (`"paper"`, `"mini"`, or a custom label).
    pub suite: String,
    /// The scenarios, ids dense and in order.
    pub scenarios: Vec<Scenario>,
}

/// FNV-1a 64 over raw bytes — the content digest protecting population
/// files, also reused by `rats-workloads` for custom suite tags (and the
/// same algorithm the campaign spec hashing uses), so a format change
/// moves every dependent digest in lockstep.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The resident-cache key of a population: an FNV-1a content hash over the
/// `(suite, seed)` identity, rendered as 16 hex digits.
///
/// A population is a deterministic function of exactly these two values
/// (custom suite tags are themselves content hashes of the workload spec),
/// so this key is a *content* key: two specs that would generate the same
/// scenarios share it, and a long-lived server (`campaign serve`) uses it
/// to serve repeated submissions from one resident population instead of
/// regenerating or re-reading `scenarios.cache`.
pub fn population_key(suite: &str, seed: u64) -> String {
    let mut bytes = Vec::with_capacity(suite.len() + 9);
    bytes.extend_from_slice(suite.as_bytes());
    bytes.push(0x1f); // unit separator: "ab"+1 never collides with "a"+b1
    bytes.extend_from_slice(&seed.to_le_bytes());
    format!("{:016x}", fnv1a(&bytes))
}

impl Population {
    /// This population's resident-cache key (see [`population_key`]).
    pub fn cache_key(&self) -> String {
        population_key(&self.suite, self.seed)
    }
}

/// Renders a population to the text format. `suite` is a free-form tag the
/// reader can validate against (the dispatcher uses the spec's suite name).
pub fn write_population(scenarios: &[Scenario], seed: u64, suite: &str) -> String {
    use std::fmt::Write as _;
    debug_assert!(
        !suite.chars().any(char::is_whitespace),
        "suite tags are single tokens"
    );
    let mut body = String::new();
    let _ = writeln!(body, "# rats scenario population");
    let _ = writeln!(
        body,
        "meta format {FORMAT} seed {seed} suite {suite} count {}",
        scenarios.len()
    );
    for s in scenarios {
        let _ = writeln!(body, "begin {} {} {}", s.id, s.family.name(), s.name);
        body.push_str(&to_text(&s.dag));
        let _ = writeln!(body, "end");
    }
    let digest = fnv1a(body.as_bytes());
    let _ = writeln!(body, "digest {digest:016x}");
    body
}

/// Parses a population file, verifying the trailing digest, the declared
/// count and that scenario ids are dense and in order.
pub fn read_population(text: &str) -> Result<Population, PopulationError> {
    let err = |line: usize, message: String| PopulationError { line, message };

    // Split off and verify the digest line first: it covers every byte
    // before it, so any torn write or bit rot is caught up front.
    let trimmed = text
        .strip_suffix('\n')
        .ok_or_else(|| err(0, "missing trailing newline (torn write?)".into()))?;
    let (body_end, digest_line) = match trimmed.rfind('\n') {
        Some(pos) => (pos + 1, &trimmed[pos + 1..]),
        None => (0, trimmed),
    };
    let digest_hex = digest_line
        .strip_prefix("digest ")
        .ok_or_else(|| err(0, "missing digest trailer (torn write?)".into()))?;
    let expected = u64::from_str_radix(digest_hex.trim(), 16)
        .map_err(|e| err(0, format!("bad digest: {e}")))?;
    let body = &text[..body_end];
    let actual = fnv1a(body.as_bytes());
    if actual != expected {
        return Err(err(
            0,
            format!("digest mismatch: file says {expected:016x}, content hashes to {actual:016x}"),
        ));
    }

    let mut lines = body.lines().enumerate();
    let mut header: Option<(u64, String, usize)> = None;
    let mut scenarios: Vec<Scenario> = Vec::new();
    while let Some((i, raw)) = lines.next() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first().copied() {
            Some("meta") => {
                // meta format 1 seed S suite T count N — key/value pairs.
                let mut format = None;
                let mut seed = None;
                let mut suite = None;
                let mut count = None;
                for pair in fields[1..].chunks(2) {
                    let [key, value] = pair else {
                        return Err(err(line_no, "meta needs key/value pairs".into()));
                    };
                    match *key {
                        "format" => {
                            format = Some(
                                value
                                    .parse::<u64>()
                                    .map_err(|e| err(line_no, format!("bad format: {e}")))?,
                            )
                        }
                        "seed" => {
                            seed = Some(
                                value
                                    .parse::<u64>()
                                    .map_err(|e| err(line_no, format!("bad seed: {e}")))?,
                            )
                        }
                        "suite" => suite = Some(value.to_string()),
                        "count" => {
                            count = Some(
                                value
                                    .parse::<usize>()
                                    .map_err(|e| err(line_no, format!("bad count: {e}")))?,
                            )
                        }
                        other => return Err(err(line_no, format!("unknown meta key `{other}`"))),
                    }
                }
                let format =
                    format.ok_or_else(|| err(line_no, "meta is missing `format`".into()))?;
                if format != FORMAT {
                    return Err(err(
                        line_no,
                        format!("unsupported format {format} (this build reads {FORMAT})"),
                    ));
                }
                header = Some((
                    seed.ok_or_else(|| err(line_no, "meta is missing `seed`".into()))?,
                    suite.ok_or_else(|| err(line_no, "meta is missing `suite`".into()))?,
                    count.ok_or_else(|| err(line_no, "meta is missing `count`".into()))?,
                ));
            }
            Some("begin") => {
                if header.is_none() {
                    return Err(err(line_no, "scenario before the meta line".into()));
                }
                if fields.len() < 3 {
                    return Err(err(
                        line_no,
                        "begin needs `<id> <family> <name…>`".to_string(),
                    ));
                }
                let id: usize = fields[1]
                    .parse()
                    .map_err(|e| err(line_no, format!("bad scenario id: {e}")))?;
                let family = AppFamily::from_name(fields[2])
                    .ok_or_else(|| err(line_no, format!("unknown family `{}`", fields[2])))?;
                // The name is everything after the family token, verbatim.
                let name = line
                    .splitn(4, char::is_whitespace)
                    .nth(3)
                    .unwrap_or("")
                    .to_string();
                if id != scenarios.len() {
                    return Err(err(
                        line_no,
                        format!(
                            "scenario id {id} out of order (expected {})",
                            scenarios.len()
                        ),
                    ));
                }
                // Collect the graph lines up to the matching `end`.
                let mut graph_text = String::new();
                let mut closed = false;
                for (_, graph_raw) in lines.by_ref() {
                    if graph_raw.trim() == "end" {
                        closed = true;
                        break;
                    }
                    graph_text.push_str(graph_raw);
                    graph_text.push('\n');
                }
                if !closed {
                    return Err(err(line_no, format!("scenario {id} has no `end`")));
                }
                let dag = from_text(&graph_text)
                    .map_err(|e| err(line_no, format!("scenario {id}: {e}")))?;
                scenarios.push(Scenario {
                    id,
                    name,
                    family,
                    dag,
                });
            }
            Some(other) => return Err(err(line_no, format!("unknown record kind `{other}`"))),
            None => unreachable!("blank lines were skipped"),
        }
    }

    let (seed, suite, count) = header.ok_or_else(|| err(0, "missing meta line".into()))?;
    if scenarios.len() != count {
        return Err(err(
            0,
            format!(
                "meta declares {count} scenarios, file holds {}",
                scenarios.len()
            ),
        ));
    }
    Ok(Population {
        seed,
        suite,
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{mini_suite, MINI_COUNT};
    use rats_model::CostParams;

    fn sample() -> Vec<Scenario> {
        mini_suite(&CostParams::paper(), 77)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let scenarios = sample();
        let text = write_population(&scenarios, 77, "mini");
        let pop = read_population(&text).unwrap();
        assert_eq!(pop.seed, 77);
        assert_eq!(pop.suite, "mini");
        assert_eq!(pop.scenarios.len(), MINI_COUNT);
        for (a, b) in scenarios.iter().zip(&pop.scenarios) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.family, b.family);
            assert_eq!(a.dag.num_tasks(), b.dag.num_tasks());
            assert_eq!(a.dag.num_edges(), b.dag.num_edges());
            for (x, y) in a.dag.task_ids().zip(b.dag.task_ids()) {
                let (ca, cb) = (a.dag.task(x).cost, b.dag.task(y).cost);
                assert_eq!(ca.m_elements(), cb.m_elements());
                assert_eq!(
                    ca.ops_per_element().to_bits(),
                    cb.ops_per_element().to_bits()
                );
                assert_eq!(ca.alpha().to_bits(), cb.alpha().to_bits());
            }
            for (x, y) in a.dag.edge_ids().zip(b.dag.edge_ids()) {
                assert_eq!(a.dag.edge(x).src, b.dag.edge(y).src);
                assert_eq!(a.dag.edge(x).dst, b.dag.edge(y).dst);
                assert_eq!(a.dag.edge(x).bytes.to_bits(), b.dag.edge(y).bytes.to_bits());
            }
        }
    }

    #[test]
    fn population_keys_separate_suite_and_seed() {
        let a = population_key("mini", 7);
        assert_eq!(a.len(), 16);
        assert_eq!(a, population_key("mini", 7), "key is deterministic");
        assert_ne!(a, population_key("mini", 8));
        assert_ne!(a, population_key("paper", 7));
        let pop = Population {
            seed: 7,
            suite: "mini".into(),
            scenarios: Vec::new(),
        };
        assert_eq!(pop.cache_key(), a);
    }

    #[test]
    fn digest_catches_corruption() {
        let text = write_population(&sample(), 1, "mini");
        // Flip one digit inside a task line.
        let corrupt = text.replacen("task", "tusk", 1);
        let e = read_population(&corrupt).unwrap_err();
        assert!(e.message.contains("digest mismatch"), "{e}");
    }

    #[test]
    fn torn_writes_are_detected() {
        let text = write_population(&sample(), 1, "mini");
        // Truncation drops the digest trailer (or its newline).
        let e = read_population(&text[..text.len() / 2]).unwrap_err();
        assert!(e.message.contains("torn write"), "{e}");
        let e = read_population(text.strip_suffix('\n').unwrap()).unwrap_err();
        assert!(e.message.contains("torn write"), "{e}");
        assert!(read_population("").is_err());
    }

    #[test]
    fn count_and_order_are_validated() {
        let scenarios = sample();
        let text = write_population(&scenarios, 1, "mini");
        // Drop the first scenario block: ids are now out of order.
        let begin2 = text.match_indices("begin ").nth(1).unwrap().0;
        let header_end = text.find("begin ").unwrap();
        let mut mutilated = text[..header_end].to_string();
        mutilated.push_str(&text[begin2..]);
        // Re-sign so we get past the digest check.
        let body_end = mutilated.rfind("digest ").unwrap();
        let body = mutilated[..body_end].to_string();
        let resigned = format!("{body}digest {:016x}\n", super::fnv1a(body.as_bytes()));
        let e = read_population(&resigned).unwrap_err();
        assert!(e.message.contains("out of order"), "{e}");
    }

    #[test]
    fn scenario_names_with_spaces_survive() {
        let mut scenarios = sample();
        scenarios.truncate(1);
        scenarios[0].name = "layered n=25 w=0.2 d=0.8 r=0.2 s=0".to_string();
        let text = write_population(&scenarios, 5, "custom");
        let pop = read_population(&text).unwrap();
        assert_eq!(pop.scenarios[0].name, scenarios[0].name);
        assert_eq!(pop.suite, "custom");
    }
}
