//! Random layered and irregular DAG generation (after Suter's `daggen`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rats_dag::{TaskGraph, TaskId};
use rats_model::CostParams;

use crate::{assign_level_costs, sample_distinct, set_edge_payloads};

/// Shape parameters of a random DAG (paper, Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagParams {
    /// Number of computation tasks (25, 50 or 100 in the paper).
    pub n: u32,
    /// Width ∈ (0, 1]: a level holds about `n^width` tasks. "A small value
    /// leads to chain graphs and a large value leads to fork-join graphs."
    pub width: f64,
    /// Regularity ∈ [0, 1]: uniformity of level sizes. Low values make
    /// levels very dissimilar in size.
    pub regularity: f64,
    /// Density ∈ [0, 1]: how many edges connect two consecutive levels.
    pub density: f64,
    /// Maximal jump length: edges may go from level `l` to `l + j` for
    /// `j ∈ {1, …, jump}`. `jump = 1` means no level is skipped (the
    /// layered case).
    pub jump: u32,
}

impl DagParams {
    /// Parameters with `jump = 1` (layered shape).
    pub fn layered(n: u32, width: f64, regularity: f64, density: f64) -> Self {
        Self {
            n,
            width,
            regularity,
            density,
            jump: 1,
        }
    }

    fn validate(&self) {
        assert!(self.n > 0, "DAG must have at least one task");
        assert!(
            self.width > 0.0 && self.width <= 1.0,
            "width must be in (0, 1], got {}",
            self.width
        );
        assert!(
            (0.0..=1.0).contains(&self.regularity),
            "regularity must be in [0, 1], got {}",
            self.regularity
        );
        assert!(
            (0.0..=1.0).contains(&self.density),
            "density must be in [0, 1], got {}",
            self.density
        );
        assert!(self.jump >= 1, "jump must be at least 1");
    }
}

/// Splits `n` tasks into levels: the "perfect" level size is `n^width`,
/// individual levels deviate by up to `±(1 − regularity)` of it.
fn level_sizes(p: &DagParams, rng: &mut StdRng) -> Vec<u32> {
    let perfect = (f64::from(p.n).powf(p.width)).round().max(1.0);
    let lo = (perfect * p.regularity).round().max(1.0) as u32;
    let hi = (perfect * (2.0 - p.regularity)).round().max(1.0) as u32;
    let mut sizes = Vec::new();
    let mut left = p.n;
    while left > 0 {
        let s = rng.random_range(lo..=hi).min(left);
        sizes.push(s);
        left -= s;
    }
    sizes
}

/// Builds the task structure and edges; costs are filled in by the caller.
fn build_structure(p: &DagParams, rng: &mut StdRng) -> (TaskGraph, Vec<Vec<TaskId>>) {
    let sizes = level_sizes(p, rng);
    let mut g = TaskGraph::with_capacity(p.n as usize, p.n as usize * 2);
    let mut by_level: Vec<Vec<TaskId>> = Vec::with_capacity(sizes.len());
    for (l, &s) in sizes.iter().enumerate() {
        let level: Vec<TaskId> = (0..s)
            .map(|i| g.add_task(format!("t{l}_{i}"), rats_model::TaskCost::zero()))
            .collect();
        by_level.push(level);
    }
    // Parents: every task of level l ≥ 1 gets ≥ 1 parent in level l−1 (so
    // the depth level equals the generated level) and up to
    // `density · |level l−1|` parents drawn from levels l−j, j ≤ jump.
    for l in 1..by_level.len() {
        let prev_size = by_level[l - 1].len() as u32;
        for i in 0..by_level[l].len() {
            let t = by_level[l][i];
            let extra = (p.density * f64::from(prev_size) * rng.random_range(0.0..1.0)) as u32;
            let nb_parents = (1 + extra).min(prev_size);
            // First (and possibly only) parents come from level l−1.
            for &pi in sample_distinct(rng, prev_size, nb_parents).iter() {
                g.add_edge(by_level[l - 1][pi as usize], t, 0.0);
            }
            // Jump edges from farther levels (irregular DAGs only).
            if p.jump > 1 {
                let max_d = p.jump.min(l as u32);
                for d in 2..=max_d {
                    if rng.random_range(0.0..1.0) < p.density {
                        let far = &by_level[l - d as usize];
                        let pi = rng.random_range(0..far.len());
                        g.add_edge(far[pi], t, 0.0);
                    }
                }
            }
        }
        // Keep the flow connected: any childless task of level l−1 feeds a
        // random task of level l.
        for &u in &by_level[l - 1] {
            if g.out_degree(u) == 0 {
                let ci = rng.random_range(0..by_level[l].len());
                g.add_edge(u, by_level[l][ci], 0.0);
            }
        }
    }
    (g, by_level)
}

/// Generates a **layered** random DAG: all tasks of a level share one
/// randomly drawn cost, so all transfers between two levels carry the same
/// amount of data.
pub fn layered_dag(p: &DagParams, cost: &CostParams, seed: u64) -> TaskGraph {
    p.validate();
    assert_eq!(p.jump, 1, "layered DAGs have no jump edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut g, _) = build_structure(p, &mut rng);
    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

/// Generates an **irregular** random DAG: tasks of the same level may have
/// different costs, and edges may jump over up to `p.jump − 1` levels.
pub fn irregular_dag(p: &DagParams, cost: &CostParams, seed: u64) -> TaskGraph {
    p.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut g, _) = build_structure(p, &mut rng);
    for t in g.task_ids() {
        g.task_mut(t).cost = cost.sample(&mut rng);
    }
    set_edge_payloads(&mut g);
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(n: u32, width: f64, regularity: f64, density: f64, jump: u32) -> DagParams {
        DagParams {
            n,
            width,
            regularity,
            density,
            jump,
        }
    }

    #[test]
    fn layered_has_requested_task_count() {
        for n in [25, 50, 100] {
            let g = layered_dag(
                &DagParams::layered(n, 0.5, 0.8, 0.5),
                &CostParams::tiny(),
                42,
            );
            assert_eq!(g.num_tasks(), n as usize);
            g.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = params(50, 0.5, 0.2, 0.8, 4);
        let a = irregular_dag(&p, &CostParams::tiny(), 7);
        let b = irregular_dag(&p, &CostParams::tiny(), 7);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(ea), b.edge(eb));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = params(50, 0.5, 0.2, 0.8, 1);
        let a = layered_dag(
            &DagParams::layered(50, 0.5, 0.2, 0.8),
            &CostParams::tiny(),
            1,
        );
        let b = layered_dag(
            &DagParams::layered(50, 0.5, 0.2, 0.8),
            &CostParams::tiny(),
            2,
        );
        // Either the shape or the costs must differ.
        let same_shape = a.num_edges() == b.num_edges();
        let same_costs = a
            .task_ids()
            .zip(b.task_ids())
            .all(|(x, y)| a.task(x).cost == b.task(y).cost);
        assert!(!(same_shape && same_costs), "seeds {p:?} collided");
    }

    #[test]
    fn width_controls_parallelism() {
        let narrow = layered_dag(
            &DagParams::layered(100, 0.2, 0.8, 0.5),
            &CostParams::tiny(),
            3,
        );
        let wide = layered_dag(
            &DagParams::layered(100, 0.8, 0.8, 0.5),
            &CostParams::tiny(),
            3,
        );
        let max_width = |g: &TaskGraph| g.tasks_by_level().iter().map(Vec::len).max().unwrap();
        assert!(
            max_width(&wide) > max_width(&narrow),
            "wide {} vs narrow {}",
            max_width(&wide),
            max_width(&narrow)
        );
        assert!(
            narrow.tasks_by_level().len() > wide.tasks_by_level().len(),
            "narrow graphs must be deeper"
        );
    }

    #[test]
    fn layered_levels_share_costs() {
        let g = layered_dag(
            &DagParams::layered(50, 0.5, 0.8, 0.8),
            &CostParams::tiny(),
            11,
        );
        let levels = g.levels();
        for a in g.task_ids() {
            for b in g.task_ids() {
                if levels[a.index()] == levels[b.index()] {
                    assert_eq!(g.task(a).cost, g.task(b).cost);
                }
            }
        }
    }

    #[test]
    fn irregular_jump_edges_skip_levels() {
        let p = params(100, 0.5, 0.8, 0.8, 4);
        let g = irregular_dag(&p, &CostParams::tiny(), 13);
        let levels = g.levels();
        let mut max_span = 0;
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let span = levels[edge.dst.index()] - levels[edge.src.index()];
            max_span = max_span.max(span);
        }
        assert!(max_span >= 2, "expected at least one jump edge");
        assert!(max_span <= 4, "jump edges must respect the bound");
    }

    #[test]
    fn no_level_is_skipped_structurally() {
        // Every non-entry task has a parent exactly one level above.
        let p = params(80, 0.5, 0.2, 0.5, 4);
        let g = irregular_dag(&p, &CostParams::tiny(), 17);
        let levels = g.levels();
        for t in g.task_ids() {
            if g.in_degree(t) > 0 {
                let has_adjacent = g
                    .predecessors(t)
                    .any(|(p, _)| levels[p.index()] + 1 == levels[t.index()]);
                assert!(has_adjacent, "task {t} floats below its level");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no jump edges")]
    fn layered_rejects_jump() {
        layered_dag(&params(10, 0.5, 0.5, 0.5, 2), &CostParams::tiny(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any parameter combination yields a valid DAG of the right size.
        #[test]
        fn always_valid(
            n in 1u32..120,
            width in 0.1f64..1.0,
            regularity in 0.0f64..1.0,
            density in 0.0f64..1.0,
            jump in 1u32..5,
            seed in 0u64..100,
        ) {
            let p = params(n, width, regularity, density, jump);
            let g = irregular_dag(&p, &CostParams::tiny(), seed);
            prop_assert_eq!(g.num_tasks(), n as usize);
            prop_assert!(g.validate().is_ok());
            // Only level-0 tasks are entries.
            let levels = g.levels();
            for t in g.task_ids() {
                if g.in_degree(t) == 0 {
                    prop_assert_eq!(levels[t.index()], 0);
                }
            }
        }
    }
}
