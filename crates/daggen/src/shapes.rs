//! Regular DAG shapes beyond the paper's families: chains, fork-joins and
//! in/out-trees.
//!
//! These are the classic structured-workflow skeletons the workload
//! synthesis subsystem (`rats-workloads`) composes into custom scenario
//! populations: a **chain** is the pure-pipeline extreme (no task
//! parallelism at all), a **fork-join** alternates serial synchronization
//! points with wide parallel stages, an **out-tree** is a recursive
//! decomposition (one root fanning out) and an **in-tree** the matching
//! reduction (leaves folding into one exit). All of them follow the paper's
//! leveled-cost rule — every task of a level draws the same cost, so all
//! transfers between two levels carry the same amount of data — and are
//! deterministic functions of a `u64` seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rats_dag::{TaskGraph, TaskId};
use rats_model::CostParams;

use crate::assign_level_costs;

/// A linear chain of `n` tasks: `t0 → t1 → … → t(n-1)`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn chain_dag(n: u32, cost: &CostParams, seed: u64) -> TaskGraph {
    assert!(n > 0, "a chain needs at least one task");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::with_capacity(n as usize, n.saturating_sub(1) as usize);
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let t = g.add_task(format!("c{i}"), rats_model::TaskCost::zero());
        if let Some(p) = prev {
            g.add_edge(p, t, 0.0);
        }
        prev = Some(t);
    }
    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

/// A fork-join graph: `stages` parallel sections of `branches` tasks each,
/// separated by single synchronization tasks (`fork → {branch…} → join`,
/// with each join forking the next stage).
///
/// # Panics
/// Panics if `stages == 0` or `branches == 0`.
pub fn fork_join_dag(stages: u32, branches: u32, cost: &CostParams, seed: u64) -> TaskGraph {
    assert!(stages > 0, "a fork-join needs at least one stage");
    assert!(branches > 0, "a fork-join stage needs at least one branch");
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks = 1 + stages as usize * (branches as usize + 1);
    let mut g = TaskGraph::with_capacity(tasks, 2 * tasks);
    let mut sync = g.add_task("fork0", rats_model::TaskCost::zero());
    for s in 0..stages {
        let stage: Vec<TaskId> = (0..branches)
            .map(|b| g.add_task(format!("s{s}b{b}"), rats_model::TaskCost::zero()))
            .collect();
        let join = g.add_task(format!("join{s}"), rats_model::TaskCost::zero());
        for &b in &stage {
            g.add_edge(sync, b, 0.0);
            g.add_edge(b, join, 0.0);
        }
        sync = join;
    }
    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

/// The number of tasks of a full `arity`-ary tree of the given `depth`
/// (depth 0 = a single root): `1 + arity + arity² + … + arity^depth`.
pub fn tree_task_count(arity: u32, depth: u32) -> usize {
    let mut total = 0usize;
    let mut level = 1usize;
    for _ in 0..=depth {
        total += level;
        level *= arity as usize;
    }
    total
}

/// An out-tree (recursive decomposition): a root at level 0, every task of
/// level `l < depth` fanning out to `arity` children.
///
/// # Panics
/// Panics if `arity == 0`.
pub fn out_tree_dag(arity: u32, depth: u32, cost: &CostParams, seed: u64) -> TaskGraph {
    assert!(arity > 0, "a tree needs a positive arity");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::with_capacity(tree_task_count(arity, depth), 0);
    let mut frontier = vec![g.add_task("r", rats_model::TaskCost::zero())];
    for l in 1..=depth {
        let mut next = Vec::with_capacity(frontier.len() * arity as usize);
        for (pi, &parent) in frontier.iter().enumerate() {
            for a in 0..arity {
                let t = g.add_task(format!("o{l}_{pi}_{a}"), rats_model::TaskCost::zero());
                g.add_edge(parent, t, 0.0);
                next.push(t);
            }
        }
        frontier = next;
    }
    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

/// An in-tree (reduction): `arity^depth` leaves at level 0, every `arity`
/// tasks of a level folding into one task of the next, down to a single
/// exit.
///
/// # Panics
/// Panics if `arity == 0`.
pub fn in_tree_dag(arity: u32, depth: u32, cost: &CostParams, seed: u64) -> TaskGraph {
    assert!(arity > 0, "a tree needs a positive arity");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::with_capacity(tree_task_count(arity, depth), 0);
    let leaves = (arity as usize).pow(depth);
    let mut frontier: Vec<TaskId> = (0..leaves)
        .map(|i| g.add_task(format!("i0_{i}"), rats_model::TaskCost::zero()))
        .collect();
    // Exactly `depth` reduction levels (arity^depth leaves fold to one for
    // arity ≥ 2; arity 1 degenerates to a depth+1 chain, mirroring the
    // out-tree and `tree_task_count`).
    for level in 1..=depth {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(arity as usize));
        for (gi, group) in frontier.chunks(arity as usize).enumerate() {
            let t = g.add_task(format!("i{level}_{gi}"), rats_model::TaskCost::zero());
            for &leaf in group {
                g.add_edge(leaf, t, 0.0);
            }
            next.push(t);
        }
        frontier = next;
    }
    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_a_chain() {
        let g = chain_dag(7, &CostParams::tiny(), 3);
        assert_eq!(g.num_tasks(), 7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        assert_eq!(g.tasks_by_level().len(), 7);
        g.validate().unwrap();
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join_dag(3, 5, &CostParams::tiny(), 4);
        assert_eq!(g.num_tasks(), 1 + 3 * (5 + 1));
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        // fork, stage, join, stage, join, stage, join = 7 levels.
        assert_eq!(g.tasks_by_level().len(), 7);
        let widths: Vec<usize> = g.tasks_by_level().iter().map(Vec::len).collect();
        assert_eq!(widths, vec![1, 5, 1, 5, 1, 5, 1]);
        g.validate().unwrap();
    }

    #[test]
    fn out_tree_fans_out() {
        let g = out_tree_dag(3, 2, &CostParams::tiny(), 5);
        assert_eq!(g.num_tasks(), tree_task_count(3, 2));
        assert_eq!(g.num_tasks(), 1 + 3 + 9);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 9);
        for t in g.task_ids() {
            assert!(g.in_degree(t) <= 1, "trees have at most one parent");
        }
        g.validate().unwrap();
    }

    #[test]
    fn in_tree_reduces() {
        let g = in_tree_dag(2, 3, &CostParams::tiny(), 6);
        assert_eq!(g.num_tasks(), tree_task_count(2, 3));
        assert_eq!(g.entries().len(), 8);
        assert_eq!(g.exits().len(), 1);
        for t in g.task_ids() {
            assert!(g.out_degree(t) <= 1, "reductions have at most one child");
        }
        g.validate().unwrap();
    }

    #[test]
    fn degenerate_depths_are_single_tasks() {
        assert_eq!(out_tree_dag(4, 0, &CostParams::tiny(), 1).num_tasks(), 1);
        assert_eq!(in_tree_dag(4, 0, &CostParams::tiny(), 1).num_tasks(), 1);
        assert_eq!(chain_dag(1, &CostParams::tiny(), 1).num_tasks(), 1);
    }

    #[test]
    fn arity_one_trees_are_chains_of_depth_plus_one() {
        // Both tree orientations must honor `depth` even at arity 1 (the
        // degenerate chain), matching tree_task_count.
        assert_eq!(tree_task_count(1, 5), 6);
        let out = out_tree_dag(1, 5, &CostParams::tiny(), 2);
        let inn = in_tree_dag(1, 5, &CostParams::tiny(), 2);
        assert_eq!(out.num_tasks(), 6);
        assert_eq!(inn.num_tasks(), 6);
        assert_eq!(inn.tasks_by_level().len(), 6);
        out.validate().unwrap();
        inn.validate().unwrap();
    }

    #[test]
    fn shapes_are_deterministic() {
        for seed in [0u64, 9, 77] {
            let a = fork_join_dag(2, 4, &CostParams::tiny(), seed);
            let b = fork_join_dag(2, 4, &CostParams::tiny(), seed);
            for (x, y) in a.task_ids().zip(b.task_ids()) {
                assert_eq!(a.task(x).cost, b.task(y).cost);
            }
            for (x, y) in a.edge_ids().zip(b.edge_ids()) {
                assert_eq!(a.edge(x), b.edge(y));
            }
        }
    }

    #[test]
    fn level_costs_are_shared_within_levels() {
        let g = in_tree_dag(2, 4, &CostParams::tiny(), 11);
        let levels = g.levels();
        for a in g.task_ids() {
            for b in g.task_ids() {
                if levels[a.index()] == levels[b.index()] {
                    assert_eq!(g.task(a).cost, g.task(b).cost);
                }
            }
        }
    }
}
