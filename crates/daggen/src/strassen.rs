//! The 25-task Strassen matrix-multiplication graph.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rats_dag::TaskGraph;
use rats_model::{CostParams, TaskCost};

use crate::assign_level_costs;

/// Number of tasks of the Strassen graph (the paper's "A Strassen DAG
/// comprises 25 tasks").
pub const STRASSEN_TASKS: usize = 25;

/// Builds the task graph of one level of Strassen's matrix multiplication
/// `C = A × B` on quadrant submatrices:
///
/// * **10 entry addition tasks** `S1..S10` computing the quadrant sums and
///   differences feeding the seven products (e.g. `S1 = A11 + A22`,
///   `S2 = B11 + B22`); they all read raw input quadrants, so all ten are
///   entry tasks — and, as the paper notes, all lie on a critical path;
/// * **7 multiplication tasks** `M1..M7` (e.g. `M1 = S1 · S2`);
/// * **8 combination additions** assembling the four output quadrants
///   (`C11 = (M1 + M4) + (M7 − M5)` as three binary tasks, `C12 = M3 + M5`,
///   `C21 = M2 + M4`, `C22 = (M1 − M2) + (M3 + M6)` as three tasks).
///
/// Tasks of the same depth level share one randomly drawn cost, following
/// the paper's cost-generation rule for this family.
pub fn strassen_dag(cost: &CostParams, seed: u64) -> TaskGraph {
    let mut g = TaskGraph::with_capacity(STRASSEN_TASKS, 40);
    let mut rng = StdRng::seed_from_u64(seed);

    let s: Vec<_> = (1..=10)
        .map(|i| g.add_task(format!("S{i}"), TaskCost::zero()))
        .collect();
    // Operand tasks per product: M1 = S1·S2, M2 = S3·B11, M3 = A11·S4,
    // M4 = A22·S5, M5 = S6·B22, M6 = S7·S8, M7 = S9·S10. Raw quadrants
    // (A11, B22, …) are inputs, not tasks.
    let m_parents: [&[usize]; 7] = [
        &[0, 1], // M1 ← S1, S2
        &[2],    // M2 ← S3
        &[3],    // M3 ← S4
        &[4],    // M4 ← S5
        &[5],    // M5 ← S6
        &[6, 7], // M6 ← S7, S8
        &[8, 9], // M7 ← S9, S10
    ];
    let m: Vec<_> = (1..=7)
        .map(|i| g.add_task(format!("M{i}"), TaskCost::zero()))
        .collect();
    for (mi, parents) in m.iter().zip(m_parents) {
        for &p in parents {
            g.add_edge(s[p], *mi, 0.0);
        }
    }

    // Output combinations.
    let u1 = g.add_task("U1=M1+M4", TaskCost::zero());
    g.add_edge(m[0], u1, 0.0);
    g.add_edge(m[3], u1, 0.0);
    let u2 = g.add_task("U2=M7-M5", TaskCost::zero());
    g.add_edge(m[6], u2, 0.0);
    g.add_edge(m[4], u2, 0.0);
    let c11 = g.add_task("C11=U1+U2", TaskCost::zero());
    g.add_edge(u1, c11, 0.0);
    g.add_edge(u2, c11, 0.0);

    let c12 = g.add_task("C12=M3+M5", TaskCost::zero());
    g.add_edge(m[2], c12, 0.0);
    g.add_edge(m[4], c12, 0.0);

    let c21 = g.add_task("C21=M2+M4", TaskCost::zero());
    g.add_edge(m[1], c21, 0.0);
    g.add_edge(m[3], c21, 0.0);

    let v1 = g.add_task("V1=M1-M2", TaskCost::zero());
    g.add_edge(m[0], v1, 0.0);
    g.add_edge(m[1], v1, 0.0);
    let v2 = g.add_task("V2=M3+M6", TaskCost::zero());
    g.add_edge(m[2], v2, 0.0);
    g.add_edge(m[5], v2, 0.0);
    let c22 = g.add_task("C22=V1+V2", TaskCost::zero());
    g.add_edge(v1, c22, 0.0);
    g.add_edge(v2, c22, 0.0);

    assign_level_costs(&mut g, cost, &mut rng);
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_25_tasks() {
        let g = strassen_dag(&CostParams::tiny(), 0);
        assert_eq!(g.num_tasks(), STRASSEN_TASKS);
        g.validate().unwrap();
    }

    #[test]
    fn ten_entries_all_s_tasks() {
        let g = strassen_dag(&CostParams::tiny(), 1);
        let entries = g.entries();
        assert_eq!(entries.len(), 10);
        for t in entries {
            assert!(g.task(t).name.starts_with('S'), "{}", g.task(t).name);
        }
    }

    #[test]
    fn four_output_quadrants_exit() {
        let g = strassen_dag(&CostParams::tiny(), 2);
        let exits = g.exits();
        assert_eq!(exits.len(), 4);
        let names: Vec<&str> = exits.iter().map(|&t| g.task(t).name.as_str()).collect();
        for want in ["C11", "C12", "C21", "C22"] {
            assert!(
                names.iter().any(|n| n.starts_with(want)),
                "missing {want} among {names:?}"
            );
        }
    }

    #[test]
    fn seven_multiplications_at_level_1() {
        let g = strassen_dag(&CostParams::tiny(), 3);
        let by_level = g.tasks_by_level();
        assert_eq!(by_level[0].len(), 10);
        assert_eq!(by_level[1].len(), 7);
        // Levels 2 and 3 hold the 8 combination tasks.
        assert_eq!(by_level[2].len() + by_level[3].len(), 8);
    }

    #[test]
    fn level_costs_shared() {
        let g = strassen_dag(&CostParams::tiny(), 4);
        let levels = g.levels();
        for a in g.task_ids() {
            for b in g.task_ids() {
                if levels[a.index()] == levels[b.index()] {
                    assert_eq!(g.task(a).cost, g.task(b).cost);
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = strassen_dag(&CostParams::tiny(), 5);
        let b = strassen_dag(&CostParams::tiny(), 5);
        for (x, y) in a.task_ids().zip(b.task_ids()) {
            assert_eq!(a.task(x).cost, b.task(y).cost);
        }
    }
}
