//! The paper's 557-configuration application suite (Table III).

use rats_dag::TaskGraph;
use rats_model::CostParams;

use crate::{fft_dag, irregular_dag, layered_dag, strassen_dag, DagParams};

/// The application families scenarios are tagged with: the paper's four
/// (the paper's Table IV groups tuning results by those) plus the
/// structured-workflow shapes custom populations can draw on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppFamily {
    /// FFT task graphs.
    Fft,
    /// Strassen matrix-multiplication graphs.
    Strassen,
    /// Layered random DAGs.
    Layered,
    /// Irregular random DAGs ("Random" in the paper's Table IV).
    Irregular,
    /// Fork-join graphs (wide parallel stages between sync points).
    ForkJoin,
    /// Linear chains (the zero-task-parallelism extreme).
    Chain,
    /// Out-trees (recursive decomposition fan-out).
    OutTree,
    /// In-trees (reduction fan-in).
    InTree,
}

impl AppFamily {
    /// The paper's four families, in Table IV column order — what the
    /// paper/mini suites generate and the paper-shaped artifacts iterate.
    pub const PAPER: [AppFamily; 4] = [
        AppFamily::Fft,
        AppFamily::Strassen,
        AppFamily::Layered,
        AppFamily::Irregular,
    ];

    /// Every family, the paper's four first in Table IV column order.
    pub const ALL: [AppFamily; 8] = [
        AppFamily::Fft,
        AppFamily::Strassen,
        AppFamily::Layered,
        AppFamily::Irregular,
        AppFamily::ForkJoin,
        AppFamily::Chain,
        AppFamily::OutTree,
        AppFamily::InTree,
    ];

    /// Display name, as used in the paper for its four families. Names are
    /// single tokens: the population text format stores them as one
    /// whitespace-separated field.
    pub fn name(self) -> &'static str {
        match self {
            AppFamily::Fft => "FFT",
            AppFamily::Strassen => "Strassen",
            AppFamily::Layered => "Layered",
            AppFamily::Irregular => "Random",
            AppFamily::ForkJoin => "ForkJoin",
            AppFamily::Chain => "Chain",
            AppFamily::OutTree => "OutTree",
            AppFamily::InTree => "InTree",
        }
    }

    /// The inverse of [`Self::name`] — used when campaign records are read
    /// back from disk.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// One application configuration of the evaluation campaign.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dense id (0..557 for the full paper suite).
    pub id: usize,
    /// Human-readable description of the generation parameters.
    pub name: String,
    /// Which family the configuration belongs to.
    pub family: AppFamily,
    /// The generated task graph.
    pub dag: TaskGraph,
}

/// SplitMix64 — stable per-scenario seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stable per-scenario seed stream every suite generator draws from:
/// scenario `index` of a population seeded with `base` always generates
/// under `scenario_seed(base, index)`, so populations are reproducible
/// per-scenario (a shard can regenerate scenario 0 without touching the
/// other 556). Custom populations (`rats-workloads`) use the same stream.
pub fn scenario_seed(base: u64, index: usize) -> u64 {
    mix(base ^ mix(index as u64))
}

/// Numbers of configurations per family in the paper.
pub const LAYERED_COUNT: usize = 108;
/// See [`LAYERED_COUNT`].
pub const IRREGULAR_COUNT: usize = 324;
/// See [`LAYERED_COUNT`].
pub const FFT_COUNT: usize = 100;
/// See [`LAYERED_COUNT`].
pub const STRASSEN_COUNT: usize = 25;
/// Total size of the paper suite (557 configurations).
pub const SUITE_COUNT: usize = LAYERED_COUNT + IRREGULAR_COUNT + FFT_COUNT + STRASSEN_COUNT;
/// Size of [`mini_suite`] (3 layered + 3 irregular + 2 FFT + 1 Strassen).
/// Campaign job grids are dimensioned from this without generating DAGs.
pub const MINI_COUNT: usize = 9;

/// Generates the full 557-configuration suite of the paper:
///
/// * layered: `n ∈ {25, 50, 100} × width ∈ {0.2, 0.5, 0.8} ×
///   density ∈ {0.2, 0.8} × regularity ∈ {0.2, 0.8} × 3 samples` = 108;
/// * irregular: the same grid `× jump ∈ {1, 2, 4}` = 324;
/// * FFT: `k ∈ {2, 4, 8, 16} × 25 samples` = 100;
/// * Strassen: 25 samples.
///
/// Generation is deterministic in `base_seed`; scenario ids are dense and
/// stable across runs.
pub fn paper_suite(cost: &CostParams, base_seed: u64) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(SUITE_COUNT);
    let push = |name: String, family: AppFamily, dag: TaskGraph, out: &mut Vec<Scenario>| {
        let id = out.len();
        out.push(Scenario {
            id,
            name,
            family,
            dag,
        });
    };

    const NS: [u32; 3] = [25, 50, 100];
    const WIDTHS: [f64; 3] = [0.2, 0.5, 0.8];
    const DENSITIES: [f64; 2] = [0.2, 0.8];
    const REGULARITIES: [f64; 2] = [0.2, 0.8];
    const JUMPS: [u32; 3] = [1, 2, 4];
    const SAMPLES: usize = 3;

    for n in NS {
        for width in WIDTHS {
            for density in DENSITIES {
                for regularity in REGULARITIES {
                    for sample in 0..SAMPLES {
                        let p = DagParams::layered(n, width, regularity, density);
                        let seed = scenario_seed(base_seed, out.len());
                        let dag = layered_dag(&p, cost, seed);
                        push(
                            format!(
                                "layered n={n} w={width} d={density} r={regularity} s={sample}"
                            ),
                            AppFamily::Layered,
                            dag,
                            &mut out,
                        );
                    }
                }
            }
        }
    }

    for n in NS {
        for width in WIDTHS {
            for density in DENSITIES {
                for regularity in REGULARITIES {
                    for jump in JUMPS {
                        for sample in 0..SAMPLES {
                            let p = DagParams {
                                n,
                                width,
                                regularity,
                                density,
                                jump,
                            };
                            let seed = scenario_seed(base_seed, out.len());
                            let dag = irregular_dag(&p, cost, seed);
                            push(
                                format!(
                                    "irregular n={n} w={width} d={density} r={regularity} \
                                     j={jump} s={sample}"
                                ),
                                AppFamily::Irregular,
                                dag,
                                &mut out,
                            );
                        }
                    }
                }
            }
        }
    }

    for k in [2u32, 4, 8, 16] {
        for sample in 0..25 {
            let seed = scenario_seed(base_seed, out.len());
            let dag = fft_dag(k, cost, seed);
            push(
                format!("fft k={k} s={sample}"),
                AppFamily::Fft,
                dag,
                &mut out,
            );
        }
    }

    for sample in 0..25 {
        let seed = scenario_seed(base_seed, out.len());
        let dag = strassen_dag(cost, seed);
        push(
            format!("strassen s={sample}"),
            AppFamily::Strassen,
            dag,
            &mut out,
        );
    }

    debug_assert_eq!(out.len(), SUITE_COUNT);
    out
}

/// A small, fast subset of the suite (a few configurations per family) for
/// integration tests and Criterion benches.
pub fn mini_suite(cost: &CostParams, base_seed: u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut id = 0usize;
    let mut push = |name: &str, family: AppFamily, dag: TaskGraph, out: &mut Vec<Scenario>| {
        out.push(Scenario {
            id,
            name: name.to_string(),
            family,
            dag,
        });
        id += 1;
    };
    for (i, &(w, d)) in [(0.2, 0.8), (0.5, 0.5), (0.8, 0.2)].iter().enumerate() {
        let p = DagParams::layered(25, w, 0.8, d);
        push(
            "layered-mini",
            AppFamily::Layered,
            layered_dag(&p, cost, scenario_seed(base_seed, 1000 + i)),
            &mut out,
        );
        let pi = DagParams {
            n: 25,
            width: w,
            regularity: 0.8,
            density: d,
            jump: 2,
        };
        push(
            "irregular-mini",
            AppFamily::Irregular,
            irregular_dag(&pi, cost, scenario_seed(base_seed, 2000 + i)),
            &mut out,
        );
    }
    for (i, k) in [2u32, 8].into_iter().enumerate() {
        push(
            "fft-mini",
            AppFamily::Fft,
            fft_dag(k, cost, scenario_seed(base_seed, 3000 + i)),
            &mut out,
        );
    }
    push(
        "strassen-mini",
        AppFamily::Strassen,
        strassen_dag(cost, scenario_seed(base_seed, 4000)),
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_557_configurations() {
        let suite = paper_suite(&CostParams::tiny(), 42);
        assert_eq!(suite.len(), 557);
        let count = |f: AppFamily| suite.iter().filter(|s| s.family == f).count();
        assert_eq!(count(AppFamily::Layered), 108);
        assert_eq!(count(AppFamily::Irregular), 324);
        assert_eq!(count(AppFamily::Fft), 100);
        assert_eq!(count(AppFamily::Strassen), 25);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let suite = paper_suite(&CostParams::tiny(), 1);
        for (i, s) in suite.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn all_dags_are_valid() {
        for s in paper_suite(&CostParams::tiny(), 7) {
            s.dag
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = paper_suite(&CostParams::tiny(), 9);
        let b = paper_suite(&CostParams::tiny(), 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.dag.num_tasks(), y.dag.num_tasks());
            assert_eq!(x.dag.num_edges(), y.dag.num_edges());
        }
    }

    #[test]
    fn seeds_differ_across_scenarios() {
        let a = scenario_seed(42, 0);
        let b = scenario_seed(42, 1);
        let c = scenario_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mini_suite_covers_all_families() {
        let mini = mini_suite(&CostParams::tiny(), 3);
        for f in AppFamily::PAPER {
            assert!(mini.iter().any(|s| s.family == f), "missing {f:?}");
        }
        assert!(mini.len() < 20);
    }

    #[test]
    fn mini_suite_size_is_pinned() {
        // MINI_COUNT dimensions campaign job grids; it must track the
        // generator exactly (ids dense, in order).
        let mini = mini_suite(&CostParams::tiny(), 11);
        assert_eq!(mini.len(), MINI_COUNT);
        for (i, s) in mini.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn family_names_match_paper() {
        assert_eq!(AppFamily::Irregular.name(), "Random");
        assert_eq!(AppFamily::Fft.name(), "FFT");
        for f in AppFamily::ALL {
            assert_eq!(AppFamily::from_name(f.name()), Some(f));
        }
        assert_eq!(AppFamily::from_name("Irregular"), None);
    }
}
