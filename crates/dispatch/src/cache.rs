//! The shared scenario cache: generate the population once, serve every
//! worker from disk.
//!
//! Each worker process used to regenerate the campaign's entire scenario
//! population (557 DAGs for the paper suite) before touching its first
//! shard. Under dispatch, the dispatcher serializes the population once to
//! `<root>/scenarios.cache` (the [`rats_daggen::population`] text format,
//! digest-protected), and workers read it back — one generation per
//! campaign instead of one per process, and the read path is plain
//! sequential file I/O the OS page cache shares between all workers on a
//! host.
//!
//! The cache is an optimization, never a correctness dependency: a missing,
//! torn or mismatched cache file makes a worker silently fall back to
//! regeneration, and the round trip is bit-exact, so results are identical
//! either way (pinned by tests here and by the dispatch equivalence tests).

use std::fs;
use std::path::{Path, PathBuf};

use rats_daggen::population::{read_population, write_population};
use rats_daggen::suite::Scenario;
use rats_experiments::spec::ExperimentSpec;

use crate::DispatchError;

/// Cache file name under the campaign root.
pub const CACHE_FILE: &str = "scenarios.cache";

/// Writes the spec's scenario population cache under `root` if no valid
/// cache is present. Returns `(path, written)` — `written` is `false` when
/// a valid cache already existed.
pub fn ensure_cache(root: &Path, spec: &ExperimentSpec) -> Result<(PathBuf, bool), DispatchError> {
    let path = root.join(CACHE_FILE);
    if load_cache(root, spec).is_some() {
        return Ok((path, false));
    }
    let scenarios = spec.scenarios();
    let text = write_population(&scenarios, spec.seed, &spec.suite.name());
    let tmp = root.join(format!("{CACHE_FILE}.tmp-{}", std::process::id()));
    fs::write(&tmp, &text)?;
    fs::rename(&tmp, &path)?;
    Ok((path, true))
}

/// Loads the population cache for `spec` from `root`, or `None` when the
/// file is absent, unreadable, fails its digest, or belongs to a different
/// `(suite, seed, size)` — any of which means the caller should fall back
/// to [`ExperimentSpec::scenarios`].
pub fn load_cache(root: &Path, spec: &ExperimentSpec) -> Option<Vec<Scenario>> {
    let text = fs::read_to_string(root.join(CACHE_FILE)).ok()?;
    let pop = read_population(&text).ok()?;
    if pop.seed != spec.seed
        || pop.suite != spec.suite.name()
        || pop.scenarios.len() != spec.suite.len()
    {
        return None;
    }
    Some(pop.scenarios)
}

/// Loads the cache or regenerates; `true` in the second slot means the
/// population came from the cache.
pub fn load_or_generate(root: &Path, spec: &ExperimentSpec) -> (Vec<Scenario>, bool) {
    match load_cache(root, spec) {
        Some(scenarios) => (scenarios, true),
        None => (spec.scenarios(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_experiments::spec::SuiteSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rats-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_round_trips_and_is_idempotent() {
        let root = temp_root("roundtrip");
        let spec = ExperimentSpec::naive("c", "chti", SuiteSpec::Mini, 9);
        let (_, written) = ensure_cache(&root, &spec).unwrap();
        assert!(written);
        let (_, written_again) = ensure_cache(&root, &spec).unwrap();
        assert!(!written_again, "valid cache is reused");
        let (cached, from_cache) = load_or_generate(&root, &spec);
        assert!(from_cache);
        let generated = spec.scenarios();
        assert_eq!(cached.len(), generated.len());
        for (a, b) in cached.iter().zip(&generated) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.family, b.family);
            assert_eq!(a.dag.num_tasks(), b.dag.num_tasks());
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn mismatched_or_corrupt_cache_falls_back() {
        let root = temp_root("fallback");
        let spec = ExperimentSpec::naive("c", "chti", SuiteSpec::Mini, 9);
        ensure_cache(&root, &spec).unwrap();
        // A different seed must not accept this cache.
        let reseeded = ExperimentSpec::naive("c", "chti", SuiteSpec::Mini, 10);
        assert!(load_cache(&root, &reseeded).is_none());
        let (_, from_cache) = load_or_generate(&root, &reseeded);
        assert!(!from_cache);
        // Corruption is detected by the digest and falls back too.
        let path = root.join(CACHE_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("task", "tusk", 1)).unwrap();
        assert!(load_cache(&root, &spec).is_none());
        fs::remove_dir_all(&root).unwrap();
    }
}
