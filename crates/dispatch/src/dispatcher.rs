//! The dispatcher: plan, spawn, watch, reclaim, merge.
//!
//! [`dispatch`] drives a whole campaign end to end:
//!
//! 1. **Plan** — [`HostInventory::plan`] picks the shard count and per-
//!    worker thread budgets from capacity weights.
//! 2. **Prepare** — the campaign root (`<out>/<name>-<hash8>/`) gets the
//!    normalized spec, the shared scenario cache and the seeded work
//!    queue. Everything is idempotent: re-dispatching a crashed campaign
//!    resumes it.
//! 3. **Spawn** — one `campaign worker` OS process per local worker plan
//!    (remote plans are printed for the operator to start on their hosts).
//! 4. **Watch** — the monitor loop observes lease heartbeats *by content
//!    change* (no cross-host clock trust), reclaims leases that stop
//!    moving, sweeps conflict files, and respawns dead worker processes
//!    while work remains — the pool is resizable in the sense of
//!    arXiv:0706.2146: workers may join, die or be killed at any point.
//! 5. **Merge** — when every job is done, all per-worker shard files are
//!    merged through `merge_shards`, whose validation (coverage,
//!    duplicates, seed, spec hash) guarantees the result is bit-identical
//!    to the in-process [`ExperimentSpec::run`] outcome.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rats_experiments::shard::{collect_shard_files, merge_shards, read_shard_file};
use rats_experiments::spec::{ExperimentSpec, SpecError, SpecOutcome};
use rats_journal::{Event, Journal, JournalTail};

use crate::inventory::{DispatchPlan, HostInventory, WorkerPlan};
use crate::queue::WorkQueue;
use crate::worker::{ChaosPhase, SHARDS_DIR, SPEC_FILE};
use crate::{sanitize, DispatchError};

/// Everything [`dispatch`] needs besides the spec.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Output directory; the campaign root is created under it.
    pub out: PathBuf,
    /// The worker pool description.
    pub inventory: HostInventory,
    /// Target shards for the least-capable worker (default 4).
    pub oversub: usize,
    /// Worker heartbeat period in milliseconds.
    pub beat_ms: u64,
    /// Dispatcher monitor poll period in milliseconds.
    pub poll_ms: u64,
    /// A lease whose content has not changed for this long is considered
    /// dead and reclaimed.
    pub stale_ms: u64,
    /// Overall deadline in milliseconds (`0`, the default, = none —
    /// paper-suite campaigns legitimately run for hours; tests and CI set
    /// a real deadline).
    pub timeout_ms: u64,
    /// Respawn budget per worker slot.
    pub max_respawns: usize,
    /// Write/use the shared scenario cache.
    pub use_cache: bool,
    /// Override the per-worker thread budget from the plan.
    pub threads_override: Option<usize>,
    /// Fault injection: the first spawned worker gets this chaos phase
    /// (tests and the CI kill-a-worker smoke).
    pub chaos: Option<ChaosPhase>,
    /// The executable to spawn workers with (defaults to the current
    /// executable — correct when the caller *is* the `campaign` binary).
    pub worker_exe: Option<PathBuf>,
}

impl DispatchConfig {
    /// Sensible defaults for dispatching into `out` with the given
    /// inventory.
    pub fn new(out: impl Into<PathBuf>, inventory: HostInventory) -> Self {
        Self {
            out: out.into(),
            inventory,
            oversub: 4,
            beat_ms: 200,
            poll_ms: 100,
            stale_ms: 5_000,
            timeout_ms: 0,
            max_respawns: 3,
            use_cache: true,
            threads_override: None,
            chaos: None,
            worker_exe: None,
        }
    }
}

/// What a completed dispatch did, plus the merged outcome.
#[derive(Debug)]
pub struct DispatchReport {
    /// The merged campaign outcome (bit-identical to `spec.run()`).
    pub outcome: SpecOutcome,
    /// The campaign root directory used.
    pub root: PathBuf,
    /// The plan that was executed.
    pub plan: DispatchPlan,
    /// Worker processes spawned (including respawns).
    pub spawned: usize,
    /// Worker processes respawned after dying with work remaining.
    pub respawned: usize,
    /// Leases reclaimed from dead or straggling workers.
    pub reclaimed: usize,
    /// Whether this dispatch wrote the scenario cache (false: reused).
    pub cache_written: bool,
}

/// The campaign root directory for a spec: `<out>/<name>-<hash8>`. Shard
/// state, queue and cache all live under it, keyed by the spec hash so two
/// campaigns never collide.
pub fn campaign_root(out: &Path, spec: &ExperimentSpec) -> PathBuf {
    let hash = spec.spec_hash();
    out.join(format!("{}-{}", sanitize(&spec.name), &hash[..8]))
}

/// One spawned worker process and its slot bookkeeping.
struct WorkerProc {
    plan: WorkerPlan,
    child: Child,
    /// How many processes this slot has consumed (1 = original).
    generation: usize,
}

/// Observation of one lease: the last seen content and when it changed.
struct LeaseWatch {
    content: String,
    changed: Instant,
}

/// Dispatches the campaign across worker processes and merges the result.
/// See the module docs for the protocol.
pub fn dispatch(
    spec: &ExperimentSpec,
    cfg: &DispatchConfig,
) -> Result<DispatchReport, DispatchError> {
    spec.validate()?;
    if cfg.stale_ms <= cfg.beat_ms.saturating_mul(2) {
        // A staleness threshold inside the heartbeat period reclaims every
        // *live* lease between two beats: workers lose their jobs
        // mid-shard, the jobs return to todo, and the campaign livelocks.
        return Err(DispatchError::Spec(SpecError::Invalid(format!(
            "stale-ms ({}) must exceed twice beat-ms ({}) or healthy leases \
             get reclaimed between heartbeats",
            cfg.stale_ms, cfg.beat_ms
        ))));
    }
    if spec.shard.is_some_and(|s| !s.is_full()) {
        return Err(DispatchError::Spec(SpecError::Invalid(
            "the spec selects a single shard — dispatch plans its own sharding; \
             clear `shard` and re-run"
                .into(),
        )));
    }
    let normalized = spec.normalized();
    let plan = cfg.inventory.plan(normalized.grid().len(), cfg.oversub)?;

    // Prepare the campaign root: spec, cache, queue. All idempotent.
    let root = campaign_root(&cfg.out, &normalized);
    fs::create_dir_all(root.join(SHARDS_DIR))?;
    let spec_path = root.join(SPEC_FILE);
    let spec_tmp = root.join(format!("{SPEC_FILE}.tmp-{}", std::process::id()));
    fs::write(&spec_tmp, format!("{}\n", normalized.to_json()))?;
    fs::rename(&spec_tmp, &spec_path)?;
    let cache_written = if cfg.use_cache {
        crate::cache::ensure_cache(&root, &normalized)?.1
    } else {
        false
    };
    let queue = WorkQueue::init(&root, &normalized, plan.shard_count)?;

    // The dispatcher's own journal segment, plus a tail over everyone
    // else's so worker-side events (notably partial-shard adoptions)
    // surface as live notices. The tail starts before any worker spawns,
    // so nothing is missed.
    let mut journal = Journal::open(&root, "dispatcher", &normalized.spec_hash());
    journal.emit(Event::CacheReady {
        written: cache_written,
    });
    journal.emit(Event::QueueInit {
        jobs: plan.shard_count as u64,
    });
    let mut tail = JournalTail::new(&root);

    let exe = match &cfg.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()
            .map_err(|e| DispatchError::Io(format!("cannot locate the worker executable: {e}")))?,
    };

    // Spawn the local workers; the first one carries the chaos flag.
    let mut procs: Vec<WorkerProc> = Vec::new();
    let mut spawned = 0usize;
    let mut chaos = cfg.chaos;
    for wp in plan.local_workers() {
        let child = spawn_worker(&exe, &root, wp, cfg, chaos.take())?;
        spawned += 1;
        crate::telemetry::WORKERS_SPAWNED.inc();
        journal.emit(Event::WorkerSpawned {
            worker: wp.id.clone(),
            generation: 1,
        });
        procs.push(WorkerProc {
            plan: wp.clone(),
            child,
            generation: 1,
        });
    }
    let remote: Vec<&WorkerPlan> = plan.remote_workers().collect();
    if !remote.is_empty() {
        eprintln!("{}", plan.render(&root));
    }
    if procs.is_empty() && remote.is_empty() {
        return Err(DispatchError::Worker {
            id: "-".into(),
            message: "the inventory plans zero workers".into(),
        });
    }

    // Monitor: observe leases, reclaim stale ones, respawn dead workers.
    let started = Instant::now();
    let stale_after = Duration::from_millis(cfg.stale_ms.max(1));
    let mut watches: HashMap<(usize, String), LeaseWatch> = HashMap::new();
    let mut missing_last_scan: Vec<usize> = Vec::new();
    let mut reclaimed = 0usize;
    let mut respawned = 0usize;
    let outcome = loop {
        // One directory scan per tick feeds status, lease liveness, the
        // conflict sweep and the missing-job check — metadata round-trips
        // matter on the network filesystems multi-host dispatch targets.
        let files = queue.scan()?;
        let status = queue.status_of(&files);
        if status.all_done() {
            break finish(&root, &queue, &mut procs, &mut journal, &mut tail)?;
        }
        if cfg.timeout_ms > 0 && started.elapsed() > Duration::from_millis(cfg.timeout_ms) {
            kill_all(&mut procs);
            return Err(DispatchError::Timeout {
                done: status.done,
                total: status.total,
            });
        }

        // Lease liveness, by observed content change.
        let now = Instant::now();
        watches.retain(|(job, worker), _| {
            files
                .get(job)
                .is_some_and(|f| !f.done && f.claims.iter().any(|w| w == worker))
        });
        for (job, f) in &files {
            if f.done {
                continue;
            }
            for worker in &f.claims {
                let Some(content) = queue.read_claim(*job, worker)? else {
                    continue;
                };
                let key = (*job, worker.clone());
                let watch = watches.entry(key).or_insert_with(|| LeaseWatch {
                    content: String::new(),
                    changed: now,
                });
                if watch.content != content {
                    watch.content = content;
                    watch.changed = now;
                } else if now.duration_since(watch.changed) > stale_after
                    && queue.reclaim(*job, worker)?
                {
                    eprintln!(
                        "dispatch: reclaimed job {job} from silent worker `{worker}` \
                         (no heartbeat for {} ms)",
                        now.duration_since(watch.changed).as_millis()
                    );
                    journal.emit(Event::LeaseReclaimed {
                        job: *job as u64,
                        worker: worker.clone(),
                    });
                    reclaimed += 1;
                }
            }
        }
        let swept = queue.sweep_conflicts_of(&files);
        if swept > 0 {
            journal.emit(Event::ConflictsSwept {
                removed: swept as u64,
            });
        }

        // Surface worker-side journal events worth a live notice.
        for (writer, event) in tail.poll() {
            if let Event::AdoptedPartial {
                job,
                donor,
                records,
                ..
            } = event
            {
                eprintln!(
                    "dispatch: worker `{writer}` adopted {records} committed record(s) \
                     from dead worker `{donor}` for job {job}"
                );
            }
        }

        // A job with no file in any state was deleted externally (a rename
        // in flight can hide a job for one scan, never two): re-seed its
        // todo so the campaign can still complete.
        let missing_now: Vec<usize> = (0..queue.shard_count())
            .filter(|job| !files.contains_key(job))
            .collect();
        for job in &missing_now {
            if missing_last_scan.contains(job) {
                eprintln!("dispatch: job {job} lost all queue files; re-seeding its todo");
                queue.reseed(*job)?;
                journal.emit(Event::JobReseeded { job: *job as u64 });
            }
        }
        missing_last_scan = missing_now;

        // Worker process lifecycle.
        let mut exhausted: Option<(String, String)> = None;
        for proc in &mut procs {
            let Some(exit) = proc
                .child
                .try_wait()
                .map_err(|e| DispatchError::Io(format!("waiting on worker: {e}")))?
            else {
                continue;
            };
            let status_now = queue.status()?;
            if status_now.all_done() {
                continue; // Finished pool winds down on its own.
            }
            // The dying process's id: the base plan id for generation 1,
            // the `-r<n>` respawn id afterwards.
            let current_id = if proc.generation == 1 {
                proc.plan.id.clone()
            } else {
                format!("{}-r{}", proc.plan.id, proc.generation - 1)
            };
            journal.emit(Event::WorkerDied {
                worker: current_id.clone(),
                exit: exit.to_string(),
            });
            if proc.generation > cfg.max_respawns {
                exhausted = Some((
                    proc.plan.id.clone(),
                    format!(
                        "died with {exit} and exhausted its {} respawns \
                         (campaign at {status_now})",
                        cfg.max_respawns
                    ),
                ));
                break;
            }
            eprintln!(
                "dispatch: worker `{}` exited with {exit} and {status_now}; respawning",
                proc.plan.id
            );
            // A fresh id per generation keeps claim files of the dead
            // process distinguishable from the replacement's.
            let mut plan = proc.plan.clone();
            plan.id = format!("{}-r{}", proc.plan.id, proc.generation);
            let child = spawn_worker(&exe, &root, &plan, cfg, None)?;
            journal.emit(Event::WorkerRespawned {
                worker: current_id,
                replacement: plan.id.clone(),
            });
            journal.emit(Event::WorkerSpawned {
                worker: plan.id.clone(),
                generation: proc.generation as u64 + 1,
            });
            proc.child = child;
            proc.generation += 1;
            spawned += 1;
            respawned += 1;
            crate::telemetry::WORKERS_SPAWNED.inc();
            crate::telemetry::WORKERS_RESPAWNED.inc();
        }
        if let Some((id, message)) = exhausted {
            kill_all(&mut procs);
            return Err(DispatchError::Worker { id, message });
        }

        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
    };

    Ok(DispatchReport {
        outcome,
        root,
        plan,
        spawned,
        respawned,
        reclaimed,
        cache_written,
    })
}

fn spawn_worker(
    exe: &Path,
    root: &Path,
    plan: &WorkerPlan,
    cfg: &DispatchConfig,
    chaos: Option<ChaosPhase>,
) -> Result<Child, DispatchError> {
    let threads = cfg.threads_override.unwrap_or(plan.threads).max(1);
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg(root)
        .arg("--worker-id")
        .arg(&plan.id)
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--beat-ms")
        .arg(cfg.beat_ms.to_string())
        .arg("--poll-ms")
        .arg(cfg.poll_ms.to_string())
        .arg("--parent-pid")
        .arg(std::process::id().to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if let Some(phase) = chaos {
        cmd.arg("--chaos").arg(phase.as_str());
    }
    cmd.spawn().map_err(|e| DispatchError::Worker {
        id: plan.id.clone(),
        message: format!("failed to spawn {exe:?}: {e}"),
    })
}

/// All jobs are done: let workers drain, then merge every shard file under
/// the campaign root.
fn finish(
    root: &Path,
    queue: &WorkQueue,
    procs: &mut Vec<WorkerProc>,
    journal: &mut Journal,
    tail: &mut JournalTail,
) -> Result<SpecOutcome, DispatchError> {
    // Workers exit by themselves once they observe the all-done queue;
    // give them a moment, then insist.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        procs.retain_mut(|p| matches!(p.child.try_wait(), Ok(None)));
        if procs.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    kill_all(procs);
    let swept = queue.sweep_conflicts()?;
    if swept > 0 {
        journal.emit(Event::ConflictsSwept {
            removed: swept as u64,
        });
    }
    // One last tail drain so adoptions landing in the final beat still get
    // their notice before the merge summary.
    for (writer, event) in tail.poll() {
        if let Event::AdoptedPartial {
            job,
            donor,
            records,
            ..
        } = event
        {
            eprintln!(
                "dispatch: worker `{writer}` adopted {records} committed record(s) \
                 from dead worker `{donor}` for job {job}"
            );
        }
    }

    // A worker killed before its manifest committed can leave an empty or
    // torn-line-1 shard file (only possible for files written by builds
    // predating the atomic manifest write — but garbage on a shared
    // directory is forever). No record can live in such a file, so skip
    // it rather than wedge the merge; coverage validation still catches
    // any job that is genuinely missing.
    let mut paths = Vec::new();
    for path in collect_shard_files_recursive(&root.join(SHARDS_DIR))? {
        match read_shard_file(&path) {
            Ok(_) => paths.push(path),
            Err(e) => {
                let lines = fs::read_to_string(&path)
                    .map(|t| t.lines().count())
                    .unwrap_or(0);
                if lines <= 1 {
                    eprintln!("dispatch: skipping pre-manifest shard wreck {path:?} ({e})");
                } else {
                    return Err(e.into());
                }
            }
        }
    }
    let outcome = merge_shards(&paths)?;
    journal.emit(Event::MergeCompleted {
        shard_files: paths.len() as u64,
        records: outcome.spec.grid().len(),
    });
    Ok(outcome)
}

fn kill_all(procs: &mut Vec<WorkerProc>) {
    for p in procs.iter_mut() {
        let _ = p.child.kill();
        let _ = p.child.wait();
    }
    procs.clear();
}

/// Every `*.jsonl` under `dir`, descending one level into the per-worker
/// subdirectories, name-sorted for deterministic merge input order. Each
/// directory level delegates to [`collect_shard_files`] so "what counts as
/// a shard file" has exactly one definition.
pub fn collect_shard_files_recursive(dir: &Path) -> Result<Vec<PathBuf>, DispatchError> {
    let mut out = collect_shard_files(dir)?;
    let entries = fs::read_dir(dir).map_err(|e| DispatchError::Io(format!("{dir:?}: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| DispatchError::Io(e.to_string()))?;
        let path = entry.path();
        if path.is_dir() {
            out.extend(collect_shard_files(&path)?);
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_experiments::spec::SuiteSpec;

    #[test]
    fn campaign_roots_are_hash_keyed() {
        let a = ExperimentSpec::naive("my run", "chti", SuiteSpec::Mini, 1);
        let mut b = a.clone();
        b.seed = 2;
        let out = Path::new("/tmp/x");
        let ra = campaign_root(out, &a);
        let rb = campaign_root(out, &b);
        assert_ne!(ra, rb, "different campaigns, different roots");
        assert!(ra.to_string_lossy().contains("my-run-"));
        // Execution-only fields do not move the root.
        let mut c = a.clone();
        c.threads = Some(7);
        assert_eq!(campaign_root(out, &c), ra);
    }

    #[test]
    fn dispatch_rejects_stale_inside_the_beat_period() {
        let spec = ExperimentSpec::naive("s", "chti", SuiteSpec::Mini, 1);
        let mut cfg = DispatchConfig::new(
            std::env::temp_dir().join("rats-dispatch-stale"),
            HostInventory::localhost(2, 1),
        );
        cfg.beat_ms = 1000;
        cfg.stale_ms = 500; // healthy leases would be reclaimed between beats
        match dispatch(&spec, &cfg) {
            Err(DispatchError::Spec(e)) => {
                assert!(e.to_string().contains("stale-ms"), "{e}")
            }
            other => panic!("expected a stale-ms validation error, got {other:?}"),
        }
    }

    #[test]
    fn dispatch_rejects_pre_sharded_specs() {
        let mut spec = ExperimentSpec::naive("s", "chti", SuiteSpec::Mini, 1);
        spec.shard = Some(rats_experiments::grid::ShardSpec::new(1, 3));
        let cfg = DispatchConfig::new(
            std::env::temp_dir().join("rats-dispatch-reject"),
            HostInventory::localhost(2, 1),
        );
        assert!(matches!(dispatch(&spec, &cfg), Err(DispatchError::Spec(_))));
    }
}
