//! Host inventories and capacity-weighted dispatch planning.
//!
//! An inventory describes the machines available to a campaign as plain
//! data — TOML on disk, mirroring how `ExperimentSpec` treats campaigns:
//!
//! ```text
//! [[hosts]]
//! name = "alpha"
//! cores = 16
//! workers = 2        # worker processes on this host (default 1)
//! weight = 2.0       # relative capacity (default: cores)
//!
//! [[hosts]]
//! name = "beta"
//! cores = 8
//! local = false      # dispatcher prints the worker command instead of
//!                    # spawning it (shared-filesystem multi-host setup)
//! ```
//!
//! [`HostInventory::plan`] turns capacity weights into a [`DispatchPlan`]:
//! how many shards to cut the job grid into, and one [`WorkerPlan`] per
//! worker process with its thread budget. Shard *count* is the balancing
//! knob — the queue hands shards out dynamically, so a 2×-weight host ends
//! up with ≈2× the shards without any static assignment; the plan only has
//! to make shards fine-grained enough that the smallest worker still gets
//! several (the star-platform observation of arXiv:cs/0610131: adapt the
//! partition to observed capacity, don't fix it up front).

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// One machine of the inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Host name (becomes the worker-id prefix; keep it short).
    pub name: String,
    /// Cores available to campaign workers on this host.
    pub cores: usize,
    /// Worker processes to run on this host.
    pub workers: usize,
    /// Relative capacity weight (defaults to `cores`).
    pub weight: f64,
    /// Whether the dispatcher should spawn this host's workers itself
    /// (`true`, the single-host case) or leave them to the operator
    /// (`false`: the host reaches the queue via a shared directory).
    pub local: bool,
}

impl HostSpec {
    /// A local host with one worker per call site's choosing.
    pub fn local(name: &str, cores: usize, workers: usize) -> Self {
        Self {
            name: name.to_string(),
            cores,
            workers,
            weight: cores as f64,
            local: true,
        }
    }
}

impl Serialize for HostSpec {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", &self.name)
            .insert("cores", &self.cores)
            .insert("workers", &self.workers)
            .insert("weight", &self.weight)
            .insert("local", &self.local);
        t
    }
}

impl Deserialize for HostSpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let name: String = v.field("name")?;
        let cores: usize = v.field("cores")?;
        Ok(Self {
            name,
            cores,
            workers: v.field_or("workers", 1)?,
            weight: v.field_or("weight", cores as f64)?,
            local: v.field_or("local", true)?,
        })
    }
}

/// The machines a campaign may use.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInventory {
    /// The hosts, in declaration order.
    pub hosts: Vec<HostSpec>,
}

/// An inventory validation or parse failure. `key` names the offending
/// TOML key (`hosts[1].cores` style) so a hand-edited file can be fixed
/// without guesswork.
#[derive(Debug, Clone, PartialEq)]
pub struct InventoryError {
    /// Dotted path of the key at fault (empty when the document as a whole
    /// failed to parse).
    pub key: String,
    /// What is wrong with it.
    pub message: String,
}

impl InventoryError {
    fn new(key: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            key: key.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for InventoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.key.is_empty() {
            write!(f, "invalid inventory: {}", self.message)
        } else {
            write!(f, "invalid inventory: key `{}`: {}", self.key, self.message)
        }
    }
}

impl std::error::Error for InventoryError {}

impl Serialize for HostInventory {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("hosts", &self.hosts);
        t
    }
}

impl HostInventory {
    /// The implicit single-host inventory: `workers` local worker processes
    /// sharing `cores` cores.
    pub fn localhost(cores: usize, workers: usize) -> Self {
        Self {
            hosts: vec![HostSpec::local("local", cores.max(1), workers.max(1))],
        }
    }

    /// Parses and validates an inventory from TOML text. Errors name the
    /// offending key.
    pub fn from_toml(text: &str) -> Result<Self, InventoryError> {
        let doc: Value =
            toml::from_str(text).map_err(|e| InventoryError::new("", e.to_string()))?;
        Self::from_value(&doc)
    }

    /// Parses and validates an inventory from an already-parsed document.
    pub fn from_value(doc: &Value) -> Result<Self, InventoryError> {
        let Some(hosts_value) = doc.get("hosts") else {
            return Err(InventoryError::new(
                "hosts",
                "missing — an inventory needs at least one [[hosts]] entry",
            ));
        };
        let Value::Array(items) = hosts_value else {
            return Err(InventoryError::new(
                "hosts",
                "must be an array of tables ([[hosts]])",
            ));
        };
        let mut hosts = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let host = HostSpec::deserialize(item)
                .map_err(|e| InventoryError::new(format!("hosts[{i}]"), e.to_string()))?;
            hosts.push(host);
        }
        let inventory = Self { hosts };
        inventory.validate()?;
        Ok(inventory)
    }

    /// Checks every host entry; the error names the bad key.
    pub fn validate(&self) -> Result<(), InventoryError> {
        if self.hosts.is_empty() {
            return Err(InventoryError::new(
                "hosts",
                "an inventory needs at least one host",
            ));
        }
        for (i, h) in self.hosts.iter().enumerate() {
            let key = |field: &str| format!("hosts[{i}].{field}");
            if h.name.trim().is_empty() {
                return Err(InventoryError::new(key("name"), "must not be empty"));
            }
            if h.cores == 0 {
                return Err(InventoryError::new(key("cores"), "must be at least 1"));
            }
            if h.workers == 0 {
                return Err(InventoryError::new(key("workers"), "must be at least 1"));
            }
            if !(h.weight.is_finite() && h.weight > 0.0) {
                return Err(InventoryError::new(
                    key("weight"),
                    format!("must be a positive finite number, got {}", h.weight),
                ));
            }
            if self.hosts[..i].iter().any(|other| other.name == h.name) {
                return Err(InventoryError::new(
                    key("name"),
                    format!("duplicate host name `{}`", h.name),
                ));
            }
        }
        Ok(())
    }

    /// Total worker processes across all hosts.
    pub fn total_workers(&self) -> usize {
        self.hosts.iter().map(|h| h.workers).sum()
    }

    /// Plans a dispatch for a `jobs`-job grid: the shard count and one
    /// [`WorkerPlan`] per worker process. `oversub` is the target number of
    /// shards for the *least*-capable worker (≥ 1); heavier workers get
    /// proportionally more through dynamic queue draining.
    pub fn plan(&self, jobs: u64, oversub: usize) -> Result<DispatchPlan, InventoryError> {
        self.validate()?;
        if jobs == 0 {
            return Err(InventoryError::new("", "cannot plan an empty job grid"));
        }
        let oversub = oversub.max(1);
        let mut workers = Vec::with_capacity(self.total_workers());
        for host in &self.hosts {
            let threads = (host.cores / host.workers).max(1);
            let weight = host.weight / host.workers as f64;
            for w in 0..host.workers {
                workers.push(WorkerPlan {
                    host: host.name.clone(),
                    id: crate::sanitize(&format!("{}-w{w}", host.name)),
                    threads,
                    weight,
                    local: host.local,
                });
            }
        }
        let total_weight: f64 = workers.iter().map(|w| w.weight).sum();
        let min_weight = workers
            .iter()
            .map(|w| w.weight)
            .fold(f64::INFINITY, f64::min);
        // Enough shards that the least-capable worker expects ≈ `oversub` of
        // them; never fewer shards than workers (when the grid has that
        // many jobs), never more than jobs.
        let raw = (oversub as f64 * total_weight / min_weight).ceil() as u64;
        let min_shards = (workers.len() as u64).min(jobs);
        let shard_count = raw.clamp(min_shards, jobs) as usize;
        Ok(DispatchPlan {
            shard_count,
            jobs,
            workers,
        })
    }
}

/// One planned worker process.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerPlan {
    /// Host the worker belongs to.
    pub host: String,
    /// Worker id (unique across the plan, filesystem-safe).
    pub id: String,
    /// Worker thread budget (cores / workers on its host).
    pub threads: usize,
    /// Per-worker capacity weight (host weight / host workers).
    pub weight: f64,
    /// Whether the dispatcher spawns this worker locally.
    pub local: bool,
}

/// The planned decomposition of a campaign across a worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPlan {
    /// How many shards the job grid is cut into.
    pub shard_count: usize,
    /// Total jobs in the grid (for reporting).
    pub jobs: u64,
    /// Every worker process, in host order.
    pub workers: Vec<WorkerPlan>,
}

impl DispatchPlan {
    /// The worker plans the dispatcher spawns itself.
    pub fn local_workers(&self) -> impl Iterator<Item = &WorkerPlan> {
        self.workers.iter().filter(|w| w.local)
    }

    /// The worker plans left to the operator (non-local hosts).
    pub fn remote_workers(&self) -> impl Iterator<Item = &WorkerPlan> {
        self.workers.iter().filter(|w| !w.local)
    }

    /// Human-readable plan summary, including the `campaign worker` command
    /// to run for every non-local worker.
    pub fn render(&self, root: &std::path::Path) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "plan: {} jobs in {} shards across {} workers\n",
            self.jobs,
            self.shard_count,
            self.workers.len()
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  {:<12} host {:<10} threads {:<3} weight {:.2}{}",
                w.id,
                w.host,
                w.threads,
                w.weight,
                if w.local { "" } else { "  (remote)" }
            );
        }
        let remote: Vec<&WorkerPlan> = self.remote_workers().collect();
        if !remote.is_empty() {
            let _ = writeln!(
                out,
                "start each remote worker on its host (shared filesystem required):"
            );
            for w in remote {
                let _ = writeln!(
                    out,
                    "  campaign worker {} --worker-id {} --threads {}",
                    root.display(),
                    w.id,
                    w.threads
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_parsing_and_defaults() {
        let inv = HostInventory::from_toml(
            "[[hosts]]\nname = \"alpha\"\ncores = 16\nworkers = 2\n\
             [[hosts]]\nname = \"beta\"\ncores = 8\nlocal = false\n",
        )
        .unwrap();
        assert_eq!(inv.hosts.len(), 2);
        assert_eq!(inv.hosts[0].workers, 2);
        assert_eq!(inv.hosts[0].weight, 16.0);
        assert!(inv.hosts[0].local);
        assert_eq!(inv.hosts[1].workers, 1);
        assert!(!inv.hosts[1].local);
        assert_eq!(inv.total_workers(), 3);
    }

    #[test]
    fn errors_name_the_offending_key() {
        let e = HostInventory::from_toml("x = 1").unwrap_err();
        assert_eq!(e.key, "hosts");
        let e = HostInventory::from_toml("[[hosts]]\ncores = 4\n").unwrap_err();
        assert_eq!(e.key, "hosts[0]");
        assert!(e.message.contains("name"), "{e}");
        let e = HostInventory::from_toml("[[hosts]]\nname = \"a\"\ncores = 0\n").unwrap_err();
        assert_eq!(e.key, "hosts[0].cores", "{e}");
        let e = HostInventory::from_toml("[[hosts]]\nname = \"a\"\ncores = 4\nweight = -1.0\n")
            .unwrap_err();
        assert_eq!(e.key, "hosts[0].weight", "{e}");
        let e = HostInventory::from_toml(
            "[[hosts]]\nname = \"a\"\ncores = 4\n[[hosts]]\nname = \"a\"\ncores = 2\n",
        )
        .unwrap_err();
        assert_eq!(e.key, "hosts[1].name", "{e}");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn homogeneous_plan_oversubscribes_evenly() {
        let inv = HostInventory::localhost(8, 4);
        let plan = inv.plan(1000, 4).unwrap();
        assert_eq!(plan.workers.len(), 4);
        assert_eq!(plan.shard_count, 16, "4 workers × oversub 4");
        for w in &plan.workers {
            assert_eq!(w.threads, 2);
        }
    }

    #[test]
    fn heterogeneous_plan_scales_with_weights() {
        let inv = HostInventory {
            hosts: vec![
                HostSpec {
                    weight: 3.0,
                    ..HostSpec::local("big", 12, 1)
                },
                HostSpec {
                    weight: 1.0,
                    ..HostSpec::local("small", 4, 1)
                },
            ],
        };
        let plan = inv.plan(1000, 4).unwrap();
        // min weight 1, total 4 → 16 shards: the small worker expects ~4,
        // the big one ~12.
        assert_eq!(plan.shard_count, 16);
        assert_eq!(plan.workers[0].threads, 12);
        assert_eq!(plan.workers[1].threads, 4);
    }

    #[test]
    fn plan_is_clamped_to_the_grid() {
        let inv = HostInventory::localhost(4, 2);
        assert_eq!(inv.plan(3, 8).unwrap().shard_count, 3);
        assert_eq!(inv.plan(1, 8).unwrap().shard_count, 1);
        assert!(inv.plan(0, 8).is_err());
        // Never fewer shards than workers (when the grid allows).
        let one = HostInventory::localhost(4, 4).plan(100, 1).unwrap();
        assert!(one.shard_count >= 4);
    }

    #[test]
    fn worker_ids_are_unique_and_safe() {
        let inv = HostInventory {
            hosts: vec![HostSpec::local("node a", 4, 2), HostSpec::local("b", 2, 1)],
        };
        let plan = inv.plan(50, 2).unwrap();
        let ids: Vec<&str> = plan.workers.iter().map(|w| w.id.as_str()).collect();
        assert_eq!(ids, ["node-a-w0", "node-a-w1", "b-w0"]);
    }

    #[test]
    fn render_lists_remote_commands() {
        let inv = HostInventory {
            hosts: vec![
                HostSpec::local("a", 2, 1),
                HostSpec {
                    local: false,
                    ..HostSpec::local("far", 8, 1)
                },
            ],
        };
        let plan = inv.plan(20, 2).unwrap();
        let text = plan.render(std::path::Path::new("/shared/run"));
        assert!(
            text.contains("campaign worker /shared/run --worker-id far-w0"),
            "{text}"
        );
    }
}
