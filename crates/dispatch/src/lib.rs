//! Fault-tolerant multi-worker campaign dispatch over a filesystem work
//! queue.
//!
//! The sharded campaign engine (`rats_experiments::shard`) made every
//! campaign a flat deterministic job grid with durable, location-transparent
//! shard files — but left scheduling the shards to the operator. This crate
//! closes that gap with a master–worker layer in the spirit of the
//! star-platform scheduling literature (Marchal et al., arXiv:cs/0610131)
//! and resizable-pool computations (Sudarsan & Ribbens, arXiv:0706.2146):
//! the worker pool can grow, shrink or lose members mid-campaign and the
//! dispatcher adapts, because all coordination lives in the filesystem.
//!
//! * [`inventory`] — hosts as data ([`HostInventory`], TOML-loadable):
//!   capacity weights auto-plan the shard count and per-worker thread
//!   budgets ([`DispatchPlan`]).
//! * [`queue`] — the filesystem work queue: one file per shard job under
//!   the campaign's manifest directory, claimed by **atomic rename** and
//!   kept alive by **heartbeat rewrites**, so any number of worker
//!   processes — one host or many, via a shared directory — pull jobs
//!   concurrently with no coordination service.
//! * [`cache`] — the shared scenario cache: the population is generated
//!   once, serialized under the manifest directory
//!   (`rats_daggen::population`), and read back by every worker.
//! * [`worker`] — the worker loop: claim → adopt partial output from dead
//!   predecessors → execute via the durable shard engine → mark done.
//! * [`status`] — read-only observability: scan a campaign's queue
//!   directory and report per-job state, stale-lease hints and progress
//!   (the `campaign status` subcommand) without touching anything.
//! * [`dispatcher`] — the orchestrator: plans from an inventory, spawns
//!   local `campaign worker` processes, watches heartbeats, reclaims and
//!   re-dispatches shards from dead or straggling workers, and finishes
//!   with the validated merge — the dispatched result is **bit-identical**
//!   to the in-process [`ExperimentSpec::run`] outcome.
//! * [`replay_check`] — the journal invariant checker: replays the
//!   campaign's hash-chained event journal (`rats_journal`) and verifies
//!   the reconstructed per-job state matches the live queue directory
//!   (the `campaign replay --check` subcommand).
//!
//! The `campaign` binary (this crate) fronts the whole engine:
//!
//! ```text
//! campaign dispatch spec.toml --inventory hosts.toml --out dispatch/
//! campaign worker  dispatch/<name>-<hash>   # on any host sharing the dir
//! ```

use std::fmt;

use rats_experiments::shard::{MergeError, ShardError};
use rats_experiments::spec::SpecError;

pub mod cache;
pub mod dispatcher;
pub mod inventory;
pub mod queue;
pub mod replay_check;
pub mod status;
pub mod telemetry;
pub mod worker;

pub use cache::{ensure_cache, load_cache, CACHE_FILE};
pub use dispatcher::{campaign_root, dispatch, DispatchConfig, DispatchReport};
pub use inventory::{DispatchPlan, HostInventory, HostSpec, InventoryError, WorkerPlan};
pub use queue::{JobState, Lease, QueueError, QueueStatus, WorkQueue};
pub use replay_check::{replay_check, ReplayCheckReport};
pub use status::{campaign_status, CampaignStatus, JobView, JournalInsight};
pub use worker::{run_worker, ChaosPhase, WorkerConfig, WorkerReport};

/// Errors from the dispatch layer.
#[derive(Debug)]
pub enum DispatchError {
    /// The spec is invalid or not dispatchable.
    Spec(SpecError),
    /// The host inventory is invalid.
    Inventory(InventoryError),
    /// A work-queue operation failed.
    Queue(QueueError),
    /// Shard execution failed in a worker.
    Shard(ShardError),
    /// The final merge failed (incomplete or inconsistent shard files).
    Merge(MergeError),
    /// The event journal is unreadable, tampered with, or absent where
    /// one is required.
    Journal(rats_journal::JournalError),
    /// Filesystem failure outside the queue.
    Io(String),
    /// A worker process could not be spawned or kept failing past the
    /// respawn budget.
    Worker {
        /// The worker slot's base id.
        id: String,
        /// What happened.
        message: String,
    },
    /// The dispatch deadline passed with jobs still outstanding.
    Timeout {
        /// Jobs finished.
        done: usize,
        /// Total jobs.
        total: usize,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Spec(e) => write!(f, "{e}"),
            DispatchError::Inventory(e) => write!(f, "{e}"),
            DispatchError::Queue(e) => write!(f, "{e}"),
            DispatchError::Shard(e) => write!(f, "{e}"),
            DispatchError::Merge(e) => write!(f, "{e}"),
            DispatchError::Journal(e) => write!(f, "{e}"),
            DispatchError::Io(m) => write!(f, "dispatch io error: {m}"),
            DispatchError::Worker { id, message } => {
                write!(f, "worker `{id}`: {message}")
            }
            DispatchError::Timeout { done, total } => write!(
                f,
                "dispatch timed out with {done}/{total} jobs done (raise --timeout-ms, \
                 or inspect the queue directory for stuck leases)"
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<SpecError> for DispatchError {
    fn from(e: SpecError) -> Self {
        DispatchError::Spec(e)
    }
}

impl From<InventoryError> for DispatchError {
    fn from(e: InventoryError) -> Self {
        DispatchError::Inventory(e)
    }
}

impl From<QueueError> for DispatchError {
    fn from(e: QueueError) -> Self {
        DispatchError::Queue(e)
    }
}

impl From<ShardError> for DispatchError {
    fn from(e: ShardError) -> Self {
        DispatchError::Shard(e)
    }
}

impl From<MergeError> for DispatchError {
    fn from(e: MergeError) -> Self {
        DispatchError::Merge(e)
    }
}

impl From<rats_journal::JournalError> for DispatchError {
    fn from(e: rats_journal::JournalError) -> Self {
        DispatchError::Journal(e)
    }
}

impl From<std::io::Error> for DispatchError {
    fn from(e: std::io::Error) -> Self {
        DispatchError::Io(e.to_string())
    }
}

/// Restricts a name to `[A-Za-z0-9_-]` so it can live inside file names
/// (worker ids become claim-file suffixes; campaign names become directory
/// names).
pub(crate) fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "x".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_names_filesystem_safe() {
        assert_eq!(sanitize("alpha-w0"), "alpha-w0");
        assert_eq!(sanitize("a b/c.d"), "a-b-c-d");
        assert_eq!(sanitize(""), "x");
    }
}
