//! The filesystem work queue: shard jobs as files, claimed by atomic
//! rename, kept alive by heartbeat rewrites.
//!
//! Layout, under a campaign root directory (shared between every worker,
//! locally or over a network filesystem):
//!
//! ```text
//! <root>/queue/meta.json                 queue identity: spec hash, seed,
//!                                        shard count
//! <root>/queue/job-<i>-of-<n>.todo       unclaimed shard job
//! <root>/queue/job-<i>-of-<n>.claim-<w>  leased by worker <w>; the file's
//!                                        content is the lease (heartbeats
//!                                        rewrite it)
//! <root>/queue/job-<i>-of-<n>.done       completed shard job
//! ```
//!
//! Every transition is a single `rename(2)`, which is atomic on POSIX
//! filesystems: two workers racing for the same `.todo` both call rename,
//! exactly one succeeds, the loser sees `ENOENT` and moves on — no lock
//! server, no fsync ordering between processes, no shared memory. A lease
//! carries a monotonically increasing beat counter; liveness is judged by
//! *observed content change* (the dispatcher remembers when it last saw the
//! content move), so nothing depends on clocks being synchronized across
//! hosts.
//!
//! Completion beats everything: once a `.done` file exists for a job, stray
//! `.todo`/`.claim` files for the same job (left by a zombie worker's last
//! heartbeat racing a reclaim) are garbage the dispatcher sweeps up.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use rats_experiments::grid::ShardSpec;
use rats_experiments::spec::ExperimentSpec;
use serde::{Deserialize, Serialize, Value};

/// Name of the queue subdirectory under the campaign root.
pub const QUEUE_DIR: &str = "queue";

/// Name of the queue identity file inside the queue directory.
pub const META_FILE: &str = "meta.json";

/// Errors from queue operations.
#[derive(Debug)]
pub struct QueueError {
    message: String,
}

impl QueueError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "work queue: {}", self.message)
    }
}

impl std::error::Error for QueueError {}

fn io_err(context: &str, e: std::io::Error) -> QueueError {
    QueueError::new(format!("{context}: {e}"))
}

/// The queue's identity line, written once at init.
#[derive(Debug, Clone, PartialEq)]
struct QueueMeta {
    spec_hash: String,
    seed: u64,
    shard_count: usize,
}

impl Serialize for QueueMeta {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("kind", "queue-meta")
            .insert("spec_hash", &self.spec_hash)
            .insert("seed", &self.seed)
            .insert("shard_count", &self.shard_count);
        t
    }
}

impl Deserialize for QueueMeta {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind: String = v.field("kind")?;
        if kind != "queue-meta" {
            return Err(serde::Error::new(format!(
                "expected a queue-meta document, got kind `{kind}`"
            )));
        }
        Ok(Self {
            spec_hash: v.field("spec_hash")?,
            seed: v.field("seed")?,
            shard_count: v.field("shard_count")?,
        })
    }
}

/// The state a job file encodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Unclaimed, ready to be picked up.
    Todo,
    /// Leased by the named worker.
    Claimed {
        /// The worker id embedded in the claim file name.
        worker: String,
    },
    /// Completed.
    Done,
}

/// A live lease on one shard job, held by one worker process.
#[derive(Debug, Clone)]
pub struct Lease {
    /// Shard index of the job.
    pub job: usize,
    /// Total shard count of the campaign.
    pub count: usize,
    /// The holder's worker id.
    pub worker: String,
    /// Process id recorded in the lease (diagnostics only).
    pub pid: u32,
    path: PathBuf,
    beats: u64,
}

impl Lease {
    /// The shard coordinates this lease covers.
    pub fn shard(&self) -> ShardSpec {
        ShardSpec::new(self.job, self.count)
    }

    /// The lease file's path (content changes on every beat).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn body(&self) -> String {
        let mut t = Value::table();
        t.insert("kind", "lease")
            .insert("job", &self.job)
            .insert("count", &self.count)
            .insert("worker", &self.worker)
            .insert("pid", &u64::from(self.pid))
            .insert("beats", &self.beats);
        serde_json::to_string(&t).expect("leases always serialize")
    }

    /// Rewrites the lease file with an incremented beat counter (via a
    /// temp file + rename, so readers never see a torn lease). Returns
    /// `false` — without beating — when the claim file is gone: the lease
    /// was reclaimed, and the holder should treat it as lost.
    pub fn beat(&mut self) -> Result<bool, QueueError> {
        if !self.path.exists() {
            return Ok(false);
        }
        self.beats += 1;
        let tmp = self.path.with_extension(format!("tmp-{}", self.worker));
        fs::write(&tmp, format!("{}\n", self.body()))
            .map_err(|e| io_err("writing lease beat", e))?;
        fs::rename(&tmp, &self.path).map_err(|e| io_err("publishing lease beat", e))?;
        crate::telemetry::LEASE_RENEWALS.inc();
        Ok(true)
    }
}

/// One job's file presence, as observed by a directory scan.
#[derive(Debug, Clone, Default)]
pub struct JobFiles {
    /// A `.todo` file exists.
    pub todo: bool,
    /// Claim files and their holders (normally at most one).
    pub claims: Vec<String>,
    /// A `.done` file exists.
    pub done: bool,
}

/// Aggregate queue state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueStatus {
    /// Total jobs the queue was initialized with.
    pub total: usize,
    /// Jobs waiting to be claimed.
    pub todo: usize,
    /// Jobs currently leased.
    pub claimed: usize,
    /// Jobs completed.
    pub done: usize,
}

impl QueueStatus {
    /// Whether every job is done.
    pub fn all_done(&self) -> bool {
        self.done >= self.total
    }
}

impl fmt::Display for QueueStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} done, {} leased, {} todo",
            self.done, self.total, self.claimed, self.todo
        )
    }
}

/// A handle on a campaign's work queue (see the module docs for the
/// on-disk protocol).
#[derive(Debug, Clone)]
pub struct WorkQueue {
    dir: PathBuf,
    spec_hash: String,
    shard_count: usize,
}

impl WorkQueue {
    /// Creates (or idempotently re-opens) the queue for `spec` under
    /// `root`, with one job per shard of an `shard_count`-way split.
    /// Re-initializing an existing queue validates identity and leaves
    /// claimed/done jobs untouched, so a crashed dispatcher can simply be
    /// re-run.
    pub fn init(
        root: &Path,
        spec: &ExperimentSpec,
        shard_count: usize,
    ) -> Result<Self, QueueError> {
        if shard_count == 0 {
            return Err(QueueError::new("shard count must be at least 1"));
        }
        let dir = root.join(QUEUE_DIR);
        fs::create_dir_all(&dir).map_err(|e| io_err("creating queue directory", e))?;
        let meta = QueueMeta {
            spec_hash: spec.spec_hash(),
            seed: spec.seed,
            shard_count,
        };
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            let existing = read_meta(&meta_path)?;
            if existing.spec_hash != meta.spec_hash || existing.seed != meta.seed {
                return Err(QueueError::new(format!(
                    "queue at {dir:?} belongs to a different campaign \
                     (spec hash {} / seed {} on disk, {} / {} requested)",
                    existing.spec_hash, existing.seed, meta.spec_hash, meta.seed
                )));
            }
            if existing.shard_count != shard_count {
                return Err(QueueError::new(format!(
                    "queue at {dir:?} was planned with {} shards, not {shard_count} \
                     (finish or delete it before replanning)",
                    existing.shard_count
                )));
            }
        } else {
            let body = serde_json::to_string(&meta).expect("queue meta always serializes");
            write_atomically(&meta_path, &format!("{body}\n"))?;
        }
        let queue = Self {
            dir,
            spec_hash: meta.spec_hash,
            shard_count,
        };
        // Seed the todo files for jobs that have no file in any state yet.
        let files = queue.scan()?;
        for job in 0..shard_count {
            let f = files.get(&job);
            let present = f.map(|f| f.todo || f.done || !f.claims.is_empty());
            if !present.unwrap_or(false) {
                let path = queue.job_path(job, "todo");
                write_atomically(&path, &format!("{}\n", queue.todo_body(job)))?;
            }
        }
        Ok(queue)
    }

    /// Opens an existing queue, checking it belongs to `spec`.
    pub fn attach(root: &Path, spec: &ExperimentSpec) -> Result<Self, QueueError> {
        let dir = root.join(QUEUE_DIR);
        let meta = read_meta(&dir.join(META_FILE))?;
        let hash = spec.spec_hash();
        if meta.spec_hash != hash || meta.seed != spec.seed {
            return Err(QueueError::new(format!(
                "queue at {dir:?} belongs to a different campaign \
                 (spec hash {} / seed {} on disk, {hash} / {} in the spec)",
                meta.spec_hash, meta.seed, spec.seed
            )));
        }
        Ok(Self {
            dir,
            spec_hash: meta.spec_hash,
            shard_count: meta.shard_count,
        })
    }

    /// The queue directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shard jobs.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The campaign's spec hash (identity key of the queue).
    pub fn spec_hash(&self) -> &str {
        &self.spec_hash
    }

    pub(crate) fn job_path(&self, job: usize, state: &str) -> PathBuf {
        self.dir
            .join(format!("job-{job}-of-{}.{state}", self.shard_count))
    }

    fn todo_body(&self, job: usize) -> String {
        let mut t = Value::table();
        t.insert("kind", "todo")
            .insert("job", &job)
            .insert("count", &self.shard_count)
            .insert("spec_hash", &self.spec_hash);
        serde_json::to_string(&t).expect("todo bodies always serialize")
    }

    /// Scans the queue directory; returns each job's file presence.
    pub fn scan(&self) -> Result<BTreeMap<usize, JobFiles>, QueueError> {
        let mut out: BTreeMap<usize, JobFiles> = BTreeMap::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("reading queue directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("reading queue entry", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((job, state)) = parse_job_file(name, self.shard_count) else {
                continue;
            };
            let slot = out.entry(job).or_default();
            match state {
                JobState::Todo => slot.todo = true,
                JobState::Claimed { worker } => slot.claims.push(worker),
                JobState::Done => slot.done = true,
            }
        }
        Ok(out)
    }

    /// Aggregate counts. A job with a `.done` file counts as done no matter
    /// what other stray files exist; otherwise a claim wins over a todo
    /// (the todo is a reclaim the holder has not noticed yet).
    pub fn status(&self) -> Result<QueueStatus, QueueError> {
        Ok(self.status_of(&self.scan()?))
    }

    /// [`Self::status`] over an existing [`Self::scan`] snapshot — no I/O.
    /// The dispatcher's monitor derives status, lease liveness and the
    /// missing-job check from one scan per tick instead of re-reading the
    /// directory for each.
    pub fn status_of(&self, files: &BTreeMap<usize, JobFiles>) -> QueueStatus {
        let mut status = QueueStatus {
            total: self.shard_count,
            todo: 0,
            claimed: 0,
            done: 0,
        };
        for job in 0..self.shard_count {
            match files.get(&job) {
                Some(f) if f.done => status.done += 1,
                Some(f) if f.todo => status.todo += 1,
                Some(f) if !f.claims.is_empty() => status.claimed += 1,
                // No file at all: a claim/done rename is mid-flight (the
                // source vanished, the destination not yet scanned) or the
                // job file was externally deleted. Count it as claimed; a
                // rename resolves by the next scan, and the dispatcher
                // re-seeds jobs that stay file-less ([`Self::reseed`]).
                _ => status.claimed += 1,
            }
        }
        status
    }

    /// Tries to claim the lowest-numbered unclaimed job for `worker`.
    /// Returns `None` when nothing is claimable right now (jobs may still
    /// be leased to others — not the same as the campaign being done).
    pub fn claim(&self, worker: &str) -> Result<Option<Lease>, QueueError> {
        let worker = crate::sanitize(worker);
        let files = self.scan()?;
        for (job, f) in &files {
            if !f.todo || f.done {
                continue;
            }
            let from = self.job_path(*job, "todo");
            let to = self.job_path(*job, &format!("claim-{worker}"));
            match fs::rename(&from, &to) {
                Ok(()) => {
                    let mut lease = Lease {
                        job: *job,
                        count: self.shard_count,
                        worker: worker.clone(),
                        pid: std::process::id(),
                        path: to,
                        beats: 0,
                    };
                    // Publish the initial lease body (beat 1). Losing the
                    // file already — reclaimed before the first beat — is
                    // indistinguishable from an instant reclaim; treat the
                    // claim as lost and keep looking.
                    if lease.beat()? {
                        crate::telemetry::CLAIMS.inc();
                        return Ok(Some(lease));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Lost the race to another worker; try the next job.
                    crate::telemetry::CLAIM_RACES.inc();
                }
                Err(e) => return Err(io_err("claiming job", e)),
            }
        }
        Ok(None)
    }

    /// Reads the current content of a job's claim file (the lease body, or
    /// the original todo body right after the claim rename). `None` if the
    /// file is gone.
    pub fn read_claim(&self, job: usize, worker: &str) -> Result<Option<String>, QueueError> {
        let path = self.job_path(job, &format!("claim-{worker}"));
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("reading claim", e)),
        }
    }

    /// Returns a claimed job to the todo state (the dispatcher's reclaim of
    /// a dead or straggling worker's lease). Atomic: if the holder
    /// completes the job concurrently, exactly one of the two renames wins.
    /// Returns `false` if the claim was already gone.
    pub fn reclaim(&self, job: usize, worker: &str) -> Result<bool, QueueError> {
        let from = self.job_path(job, &format!("claim-{worker}"));
        let to = self.job_path(job, "todo");
        match fs::rename(&from, &to) {
            Ok(()) => {
                crate::telemetry::RECLAIMS.inc();
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("reclaiming job", e)),
        }
    }

    /// Marks a leased job done. Returns `false` when the lease had been
    /// reclaimed (the job will be re-executed elsewhere; because jobs are
    /// deterministic, the duplicate results merge bit-identically).
    pub fn mark_done(&self, lease: &Lease) -> Result<bool, QueueError> {
        let to = self.job_path(lease.job, "done");
        match fs::rename(&lease.path, &to) {
            Ok(()) => {
                crate::telemetry::JOBS_DONE.inc();
                crate::telemetry::WORKER_JOBS.inc(&lease.worker);
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("completing job", e)),
        }
    }

    /// Re-seeds the `.todo` file of a job that has lost *every* file (an
    /// external deletion — operator cleanup, filesystem hiccup). Safe to
    /// race: if the job was actually claimed or done, the stray todo is a
    /// conflict [`Self::sweep_conflicts`] resolves (done wins; duplicate
    /// execution is harmless because jobs are deterministic).
    pub fn reseed(&self, job: usize) -> Result<(), QueueError> {
        if job >= self.shard_count {
            return Err(QueueError::new(format!(
                "cannot reseed job {job} of a {}-job queue",
                self.shard_count
            )));
        }
        let path = self.job_path(job, "todo");
        write_atomically(&path, &format!("{}\n", self.todo_body(job)))?;
        crate::telemetry::RESEEDS.inc();
        Ok(())
    }

    /// Sweeps contradictory files: once a job is done, stray `.todo` and
    /// `.claim-*` files for it are deleted; a job with both a todo and a
    /// claim (a zombie heartbeat re-published a reclaimed lease) loses the
    /// claim. Returns how many files were removed.
    pub fn sweep_conflicts(&self) -> Result<usize, QueueError> {
        let files = self.scan()?;
        Ok(self.sweep_conflicts_of(&files))
    }

    /// [`Self::sweep_conflicts`] over an existing scan snapshot. Acting on
    /// a slightly stale snapshot is safe: removals of already-gone files
    /// are ignored, and a conflict that appears after the scan is caught
    /// by the next one.
    pub fn sweep_conflicts_of(&self, files: &BTreeMap<usize, JobFiles>) -> usize {
        let mut removed = 0;
        for (job, f) in files {
            if f.done {
                if f.todo && fs::remove_file(self.job_path(*job, "todo")).is_ok() {
                    removed += 1;
                }
                for w in &f.claims {
                    if fs::remove_file(self.job_path(*job, &format!("claim-{w}"))).is_ok() {
                        removed += 1;
                    }
                }
            } else if f.todo {
                for w in &f.claims {
                    if fs::remove_file(self.job_path(*job, &format!("claim-{w}"))).is_ok() {
                        removed += 1;
                    }
                }
            }
        }
        crate::telemetry::CONFLICTS_SWEPT.add(removed as u64);
        removed
    }
}

fn read_meta(path: &Path) -> Result<QueueMeta, QueueError> {
    let text = fs::read_to_string(path)
        .map_err(|e| QueueError::new(format!("no queue at {path:?}: {e}")))?;
    serde_json::from_str(text.trim())
        .map_err(|e| QueueError::new(format!("corrupt queue meta {path:?}: {e}")))
}

/// Writes `content` to `path` through a sibling temp file + rename, so a
/// crash never leaves a torn file and concurrent writers of identical
/// content are harmless.
fn write_atomically(path: &Path, content: &str) -> Result<(), QueueError> {
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    let mut file = fs::File::create(&tmp).map_err(|e| io_err("creating temp file", e))?;
    file.write_all(content.as_bytes())
        .map_err(|e| io_err("writing temp file", e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err("publishing file", e))?;
    Ok(())
}

/// Parses `job-<i>-of-<n>.<state>` file names; ignores everything else
/// (temp files, the meta file, foreign shard counts).
fn parse_job_file(name: &str, shard_count: usize) -> Option<(usize, JobState)> {
    let rest = name.strip_prefix("job-")?;
    let (coords, state) = rest.split_once('.')?;
    let (job, count) = coords.split_once("-of-")?;
    let job: usize = job.parse().ok()?;
    let count: usize = count.parse().ok()?;
    if count != shard_count || job >= count {
        return None;
    }
    let state = match state {
        "todo" => JobState::Todo,
        "done" => JobState::Done,
        other => {
            // Temp files from atomic rewrites never reach here: they
            // *replace* the extension (`job-i-of-n.tmp-<w>`), so they fail
            // the `claim-` prefix. The dot guard keeps any other stray
            // multi-extension leftovers from masquerading as claims.
            let worker = other.strip_prefix("claim-")?;
            if worker.contains('.') {
                return None;
            }
            JobState::Claimed {
                worker: worker.to_string(),
            }
        }
    };
    Some((job, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_experiments::spec::SuiteSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rats-queue-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(seed: u64) -> ExperimentSpec {
        ExperimentSpec::naive("q", "grillon", SuiteSpec::Mini, seed)
    }

    #[test]
    fn job_file_names_parse() {
        assert_eq!(
            parse_job_file("job-3-of-8.todo", 8),
            Some((3, JobState::Todo))
        );
        assert_eq!(
            parse_job_file("job-0-of-8.done", 8),
            Some((0, JobState::Done))
        );
        assert_eq!(
            parse_job_file("job-2-of-8.claim-alpha-w0", 8),
            Some((
                2,
                JobState::Claimed {
                    worker: "alpha-w0".into()
                }
            ))
        );
        // Worker ids that merely *start* with "tmp-" are legitimate (a
        // host named "tmp" in an inventory): their claims must be seen.
        assert_eq!(
            parse_job_file("job-2-of-8.claim-tmp-w0", 8),
            Some((
                2,
                JobState::Claimed {
                    worker: "tmp-w0".into()
                }
            ))
        );
        // Foreign counts, temp files and the meta file are ignored.
        assert_eq!(parse_job_file("job-2-of-9.todo", 8), None);
        assert_eq!(parse_job_file("job-2-of-8.tmp-123", 8), None);
        assert_eq!(parse_job_file("job-2-of-8.claim-a.tmp-a", 8), None);
        assert_eq!(parse_job_file("meta.json", 8), None);
        assert_eq!(parse_job_file("job-9-of-8.todo", 8), None);
    }

    #[test]
    fn init_seeds_todos_and_is_idempotent() {
        let root = temp_root("init");
        let s = spec(1);
        let q = WorkQueue::init(&root, &s, 5).unwrap();
        let st = q.status().unwrap();
        assert_eq!((st.total, st.todo, st.claimed, st.done), (5, 5, 0, 0));
        // Re-init keeps state.
        let lease = q.claim("w0").unwrap().unwrap();
        q.mark_done(&lease).unwrap();
        let q2 = WorkQueue::init(&root, &s, 5).unwrap();
        let st = q2.status().unwrap();
        assert_eq!((st.todo, st.done), (4, 1));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn init_rejects_identity_changes() {
        let root = temp_root("identity");
        WorkQueue::init(&root, &spec(1), 4).unwrap();
        assert!(WorkQueue::init(&root, &spec(1), 5).is_err(), "shard count");
        assert!(WorkQueue::init(&root, &spec(2), 4).is_err(), "seed/hash");
        assert!(WorkQueue::attach(&root, &spec(2)).is_err());
        let q = WorkQueue::attach(&root, &spec(1)).unwrap();
        assert_eq!(q.shard_count(), 4);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn claim_lease_done_lifecycle() {
        let root = temp_root("lifecycle");
        let q = WorkQueue::init(&root, &spec(3), 2).unwrap();
        let mut lease = q.claim("w-a").unwrap().unwrap();
        assert_eq!(lease.job, 0, "lowest job first");
        assert_eq!(lease.shard(), ShardSpec::new(0, 2));
        let body = q.read_claim(0, "w-a").unwrap().unwrap();
        assert!(body.contains("\"beats\":1"), "{body}");
        assert!(lease.beat().unwrap());
        let body = q.read_claim(0, "w-a").unwrap().unwrap();
        assert!(body.contains("\"beats\":2"), "{body}");

        let second = q.claim("w-b").unwrap().unwrap();
        assert_eq!(second.job, 1);
        assert!(q.claim("w-c").unwrap().is_none(), "everything is leased");
        let st = q.status().unwrap();
        assert_eq!((st.todo, st.claimed, st.done), (0, 2, 0));

        assert!(q.mark_done(&lease).unwrap());
        assert!(q.mark_done(&second).unwrap());
        assert!(q.status().unwrap().all_done());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reclaim_returns_jobs_and_breaks_dead_leases() {
        let root = temp_root("reclaim");
        let q = WorkQueue::init(&root, &spec(4), 1).unwrap();
        let mut lease = q.claim("w0").unwrap().unwrap();
        assert!(q.reclaim(0, "w0").unwrap());
        assert!(!q.reclaim(0, "w0").unwrap(), "second reclaim is a no-op");
        // The holder notices the reclaim on its next beat and stops.
        assert!(!lease.beat().unwrap(), "beat reports the lost lease");
        // A zombie losing the beat-vs-reclaim race can still re-publish a
        // claim next to the todo; sweep resolves it in favour of the todo.
        fs::write(q.job_path(0, "claim-w0"), "{}\n").unwrap();
        assert_eq!(q.sweep_conflicts().unwrap(), 1);
        let st = q.status().unwrap();
        assert_eq!((st.todo, st.claimed), (1, 0));
        // And the holder's mark_done now fails (lease lost).
        assert!(!q.mark_done(&lease).unwrap());
        let other = q.claim("w1").unwrap().unwrap();
        assert!(q.mark_done(&other).unwrap());
        assert!(q.status().unwrap().all_done());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reseed_recovers_externally_deleted_jobs() {
        let root = temp_root("reseed");
        let q = WorkQueue::init(&root, &spec(9), 2).unwrap();
        // An operator (or a filesystem mishap) deletes a todo outright.
        fs::remove_file(q.job_path(1, "todo")).unwrap();
        let st = q.status().unwrap();
        assert_eq!(
            (st.todo, st.claimed),
            (1, 1),
            "file-less job reads as claimed"
        );
        q.reseed(1).unwrap();
        let st = q.status().unwrap();
        assert_eq!((st.todo, st.claimed), (2, 0));
        assert!(q.claim("w").unwrap().is_some());
        assert!(q.reseed(5).is_err(), "out-of-range job");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn done_wins_over_stray_files() {
        let root = temp_root("donewins");
        let q = WorkQueue::init(&root, &spec(5), 1).unwrap();
        let lease = q.claim("w0").unwrap().unwrap();
        assert!(q.mark_done(&lease).unwrap());
        // A very confused zombie resurrects both a todo and a claim.
        fs::write(q.job_path(0, "todo"), "{}\n").unwrap();
        fs::write(q.job_path(0, "claim-zombie"), "{}\n").unwrap();
        assert!(q.status().unwrap().all_done(), "done wins");
        assert_eq!(q.sweep_conflicts().unwrap(), 2);
        assert!(q.claim("w1").unwrap().is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_claims_never_double_assign() {
        let root = temp_root("race");
        let jobs = 24;
        let q = WorkQueue::init(&root, &spec(6), jobs).unwrap();
        let claimed: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let q = q.clone();
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(lease) = q.claim(&format!("w{w}")).unwrap() {
                            mine.push(lease.job);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claimed.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..jobs).collect::<Vec<_>>(), "each job exactly once");
        fs::remove_dir_all(&root).unwrap();
    }
}
