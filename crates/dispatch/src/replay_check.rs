//! The journal invariant checker: does replaying the event journal
//! reconstruct exactly the state the live queue directory shows?
//!
//! [`replay_check`] reads every hash-chained segment under
//! `<root>/journal/` (chain verification included — a tampered segment
//! fails here with the offending sequence number), folds the stitched
//! timeline through [`rats_journal::Replay`], and compares the resulting
//! per-job view against a fresh scan of `<root>/queue/`. Both sides apply
//! the same *done-wins* rule, so a campaign whose history was fully
//! journaled matches bit for bit — any mismatch means events were lost,
//! fabricated, or the queue directory was mutated behind the journal's
//! back.

use std::fmt;
use std::path::Path;

use rats_journal::{read_journal, JournalError, Replay, ReplayState, JOURNAL_DIR};

use crate::queue::WorkQueue;
use crate::worker::load_root_spec;
use crate::DispatchError;

/// The outcome of one invariant check.
#[derive(Debug, Clone)]
pub struct ReplayCheckReport {
    /// Events replayed across all segments.
    pub events: usize,
    /// Segments (writers) read.
    pub segments: usize,
    /// Queue jobs compared.
    pub jobs: usize,
    /// Human-readable descriptions of every divergence (empty = pass).
    pub mismatches: Vec<String>,
    /// The final replayed state (counters for reclaims, adoptions, …).
    pub state: ReplayState,
}

impl ReplayCheckReport {
    /// Whether the journal and the live queue agree everywhere.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for ReplayCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replayed {} event(s) from {} segment(s) over {} job(s): \
             {} reclaimed, {} adopted, {} worker(s) spawned, {} died",
            self.events,
            self.segments,
            self.jobs,
            self.state.reclaimed,
            self.state.adopted,
            self.state.workers_spawned,
            self.state.workers_died,
        )?;
        if self.ok() {
            write!(f, "journal and live queue agree on every job")
        } else {
            writeln!(f, "{} mismatch(es):", self.mismatches.len())?;
            for (i, m) in self.mismatches.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(f, "  - {m}")?;
            }
            Ok(())
        }
    }
}

/// Replays `<root>/journal/` and checks the reconstruction against the
/// live queue. Chain verification failures (tampering) and i/o errors
/// surface as [`DispatchError::Journal`]; state divergence lands in the
/// report's `mismatches`.
pub fn replay_check(root: &Path) -> Result<ReplayCheckReport, DispatchError> {
    let spec = load_root_spec(root)?;
    let segments = read_journal(root)?;
    if segments.is_empty() {
        return Err(DispatchError::Journal(JournalError::Malformed {
            path: root.join(JOURNAL_DIR),
            message: "no journal segments found (campaign predates journaling, \
                      or the journal directory was removed)"
                .into(),
        }));
    }

    let mut mismatches = Vec::new();
    let expected_hash = spec.spec_hash();
    for seg in &segments {
        if seg.spec_hash != expected_hash {
            mismatches.push(format!(
                "segment `{}` was written under spec hash {} but the campaign \
                 spec hashes to {expected_hash}",
                seg.writer, seg.spec_hash
            ));
        }
    }

    let mut replay = Replay::new(&segments);
    let events = replay.len();
    let state = replay.run_to_end().clone();

    let queue = WorkQueue::attach(root, &spec)?;
    let files = queue.scan()?;
    let jobs = queue.shard_count();
    if state.jobs != Some(jobs as u64) {
        mismatches.push(format!(
            "journal says the queue holds {} job(s), the live queue holds {jobs}",
            state
                .jobs
                .map_or("an unknown number of".to_string(), |j| j.to_string()),
        ));
    }

    for job in 0..jobs {
        // The live view under the same done-wins priority the replay fold
        // applies (and the queue's conflict sweep enforces eventually).
        let live = match files.get(&job) {
            None => rats_journal::JobView::Missing,
            Some(f) if f.done => rats_journal::JobView::Done,
            Some(f) if !f.claims.is_empty() => {
                let mut ws = f.claims.clone();
                ws.sort();
                rats_journal::JobView::Claimed(ws)
            }
            Some(f) if f.todo => rats_journal::JobView::Todo,
            Some(_) => rats_journal::JobView::Missing,
        };
        let replayed = state.view(job as u64);
        if live != replayed {
            mismatches.push(format!(
                "job {job}: journal replays to `{replayed}`, live queue shows `{live}`"
            ));
        }
    }

    Ok(ReplayCheckReport {
        events,
        segments: segments.len(),
        jobs,
        mismatches,
        state,
    })
}
