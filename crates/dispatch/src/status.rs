//! Read-only campaign observability: `campaign status`.
//!
//! A long paper-suite dispatch runs for hours across many worker
//! processes; the only ground truth of its progress is the queue directory.
//! [`campaign_status`] scans it **without mutating anything** — no
//! reclaims, no sweeps, no reseeds — and reports per-job state
//! (todo/claimed/done), which leases look stale, and a completed/total
//! progress line. Safe to run at any time, from any host that mounts the
//! campaign root, while the dispatcher and workers are live.
//!
//! When the campaign has an event journal (`<root>/journal/`, written by
//! journal-aware dispatchers and workers), staleness and progress come
//! from it: a lease is stale when its holder has emitted no event within
//! the threshold, and `job-finished` timing events yield a mean per-job
//! duration, an ETA and a completion throughput. Campaigns without a
//! journal (older builds, or a removed directory) fall back to the
//! original mtime heuristic: the claim file's mtime against the local
//! clock. Either way a lease flagged stale by `status` is a hint to look
//! closer, not proof of death — the dispatcher's reclaim logic watches
//! lease *content change* over time and trusts no cross-host clock.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use rats_journal::Event;
use serde::{Serialize, Value};

use crate::queue::{QueueStatus, WorkQueue};
use crate::worker::load_root_spec;
use crate::DispatchError;

/// One job's observed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobView {
    /// Waiting to be claimed.
    Todo,
    /// Leased; `stale` leases have not changed for longer than the
    /// threshold (by local-clock mtime — advisory only).
    Claimed {
        /// Lease holders (normally one; more means a conflict in flight).
        workers: Vec<String>,
        /// Whether every claim file's mtime is older than the threshold.
        stale: bool,
    },
    /// Completed.
    Done,
    /// No file in any state (a rename mid-flight, or external deletion).
    Missing,
}

/// The scan result: aggregate counts plus one [`JobView`] per job.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// Campaign name (from the root's spec document).
    pub name: String,
    /// Suite tag.
    pub suite: String,
    /// Workload seed.
    pub seed: u64,
    /// Spec hash (the queue's identity key).
    pub spec_hash: String,
    /// Aggregate queue counts, derived from [`Self::jobs`] so the summary
    /// can never contradict the per-job list. Unlike the raw
    /// [`WorkQueue::status_of`] aggregate (which lumps file-less jobs in
    /// with claimed, the dispatcher's conservative reading), `missing`
    /// jobs are counted on their own here.
    pub queue: QueueStatus,
    /// Jobs with no file in any state (a rename mid-flight, or external
    /// deletion the dispatcher would re-seed).
    pub missing: usize,
    /// Per-job state, indexed by shard job number.
    pub jobs: Vec<JobView>,
    /// Number of leased jobs whose every claim looks stale.
    pub stale: usize,
    /// Timing and fault intelligence from the event journal, when the
    /// campaign has one (`None`: no journal, mtime heuristics were used).
    pub journal: Option<JournalInsight>,
    /// The campaign root that was scanned.
    pub root: PathBuf,
}

/// Progress intelligence derived from the campaign's event journal:
/// real per-job timing instead of mtime guesswork.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalInsight {
    /// Events across all verified segments.
    pub events: usize,
    /// Mean wall clock per completed shard job (`job-finished` events).
    pub mean_job_ms: Option<u64>,
    /// Estimated remaining wall clock: mean job duration × jobs remaining
    /// ÷ workers currently holding leases.
    pub eta_ms: Option<u64>,
    /// Completion throughput over the observed `job-done` span.
    pub jobs_per_min: Option<f64>,
    /// Leases reclaimed so far (from the dispatcher's events).
    pub reclaimed: u64,
    /// Partial shard files adopted from dead predecessors.
    pub adopted: u64,
}

impl CampaignStatus {
    /// Fraction of jobs completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.queue.total == 0 {
            1.0
        } else {
            self.queue.done as f64 / self.queue.total as f64
        }
    }

    /// Machine-readable form of the report, as one JSON document. Shared
    /// by `campaign status --json` and the server's `status` response so
    /// the two can never drift apart.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.serialize()).expect("status reports always serialize")
    }
}

impl Serialize for JobView {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        match self {
            JobView::Todo => t.insert("state", "todo"),
            JobView::Done => t.insert("state", "done"),
            JobView::Missing => t.insert("state", "missing"),
            JobView::Claimed { workers, stale } => t
                .insert("state", "claimed")
                .insert("workers", workers)
                .insert("stale", stale),
        };
        t
    }
}

impl Serialize for JournalInsight {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("events", &self.events)
            .insert("mean_job_ms", &self.mean_job_ms)
            .insert("eta_ms", &self.eta_ms)
            .insert("jobs_per_min", &self.jobs_per_min)
            .insert("reclaimed", &self.reclaimed)
            .insert("adopted", &self.adopted);
        t
    }
}

impl Serialize for CampaignStatus {
    fn serialize(&self) -> Value {
        let jobs: Vec<Value> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(job, view)| {
                let mut t = view.serialize();
                t.insert("job", &job);
                t
            })
            .collect();
        let mut t = Value::table();
        t.insert("name", &self.name)
            .insert("suite", &self.suite)
            .insert("seed", &self.seed)
            .insert("spec_hash", &self.spec_hash)
            .insert("root", &self.root.display().to_string())
            .insert("total", &self.queue.total)
            .insert("todo", &self.queue.todo)
            .insert("claimed", &self.queue.claimed)
            .insert("done", &self.queue.done)
            .insert("missing", &self.missing)
            .insert("stale", &self.stale)
            .insert("progress", &self.progress())
            .insert("jobs", &jobs)
            .insert("journal", &self.journal);
        t
    }
}

impl fmt::Display for CampaignStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign `{}` — suite {}, seed {}, spec {} at {:?}",
            self.name, self.suite, self.seed, self.spec_hash, self.root
        )?;
        for (job, view) in self.jobs.iter().enumerate() {
            let line = match view {
                JobView::Todo => "todo".to_string(),
                JobView::Done => "done".to_string(),
                JobView::Missing => "missing (rename in flight or externally deleted)".into(),
                JobView::Claimed { workers, stale } => format!(
                    "claimed by {}{}",
                    workers.join(", "),
                    if *stale { "  [stale?]" } else { "" }
                ),
            };
            writeln!(f, "  job {job:>4}/{}  {line}", self.jobs.len())?;
        }
        if self.stale > 0 {
            if self.journal.is_some() {
                writeln!(
                    f,
                    "stale leases: {} (journal-based hint: the holder emitted no \
                     event within the threshold)",
                    self.stale
                )?;
            } else {
                writeln!(
                    f,
                    "stale leases: {} (mtime-based hint; the dispatcher reclaims by \
                     observed content change)",
                    self.stale
                )?;
            }
        }
        write!(
            f,
            "progress: {}/{} done ({:.1} %), {} leased, {} todo",
            self.queue.done,
            self.queue.total,
            self.progress() * 100.0,
            self.queue.claimed,
            self.queue.todo
        )?;
        if self.missing > 0 {
            write!(f, ", {} missing", self.missing)?;
        }
        if let Some(j) = &self.journal {
            write!(f, "\njournal: {} event(s)", j.events)?;
            if j.reclaimed > 0 {
                write!(f, ", {} lease(s) reclaimed", j.reclaimed)?;
            }
            if j.adopted > 0 {
                write!(f, ", {} partial shard(s) adopted", j.adopted)?;
            }
            if let Some(mean) = j.mean_job_ms {
                write!(f, "; mean job {:.1} s", mean as f64 / 1000.0)?;
            }
            if self.queue.done < self.queue.total {
                if let Some(eta) = j.eta_ms {
                    write!(f, ", ETA ~{:.1} s", eta as f64 / 1000.0)?;
                }
            }
            if let Some(rate) = j.jobs_per_min {
                write!(f, " ({rate:.1} jobs/min)")?;
            }
        }
        Ok(())
    }
}

/// Scans the campaign rooted at `root` (a directory created by `campaign
/// dispatch`, holding `spec.json` and `queue/`). Claims whose file mtime is
/// older than `stale_ms` are flagged stale. Strictly read-only.
pub fn campaign_status(root: &Path, stale_ms: u64) -> Result<CampaignStatus, DispatchError> {
    let spec = load_root_spec(root)?;
    let queue = WorkQueue::attach(root, &spec)?;
    let files = queue.scan()?;
    let now = SystemTime::now();
    let is_stale = |path: &Path| -> bool {
        fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .is_some_and(|age| age.as_millis() > u128::from(stale_ms))
    };

    // Journal enrichment (still strictly read-only): a verified journal
    // replaces the mtime staleness heuristic with per-worker event
    // activity and yields timing intelligence. Unreadable or tampered
    // journals are reported and ignored — status never fails over
    // provenance.
    let segments = match rats_journal::read_journal(root) {
        Ok(segs) => segs,
        Err(e) => {
            eprintln!("status: ignoring the event journal ({e})");
            Vec::new()
        }
    };
    let last_event_by_writer: BTreeMap<&str, u64> = segments
        .iter()
        .filter_map(|s| s.records.last().map(|rec| (s.writer.as_str(), rec.ms)))
        .collect();
    // Reference clock for event ages: the local clock, advanced to the
    // newest event seen so a fast worker clock cannot make everyone else
    // look stale.
    let local_ms = now
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let now_ref = last_event_by_writer
        .values()
        .copied()
        .max()
        .map_or(local_ms, |newest| newest.max(local_ms));

    let mut jobs = Vec::with_capacity(queue.shard_count());
    let mut stale = 0usize;
    for job in 0..queue.shard_count() {
        let view = match files.get(&job) {
            Some(f) if f.done => JobView::Done,
            Some(f) if f.todo => JobView::Todo,
            Some(f) if !f.claims.is_empty() => {
                let all_stale = f.claims.iter().all(|w| {
                    match last_event_by_writer.get(w.as_str()) {
                        // Journal-based: no event from the holder within
                        // the threshold.
                        Some(&last) if !segments.is_empty() => {
                            now_ref.saturating_sub(last) > stale_ms
                        }
                        // Worker unknown to the journal (manual worker,
                        // older build): fall back to the claim mtime.
                        _ => is_stale(&queue.job_path(job, &format!("claim-{w}"))),
                    }
                });
                if all_stale {
                    stale += 1;
                }
                JobView::Claimed {
                    workers: f.claims.clone(),
                    stale: all_stale,
                }
            }
            _ => JobView::Missing,
        };
        jobs.push(view);
    }
    // Aggregate counts come from the views just built, so the report's
    // summary and its per-job list always agree (file-less jobs count as
    // missing, not as claimed).
    let count = |want: fn(&JobView) -> bool| jobs.iter().filter(|v| want(v)).count();
    let aggregate = QueueStatus {
        total: jobs.len(),
        todo: count(|v| matches!(v, JobView::Todo)),
        claimed: count(|v| matches!(v, JobView::Claimed { .. })),
        done: count(|v| matches!(v, JobView::Done)),
    };

    let journal = if segments.is_empty() {
        None
    } else {
        let events: usize = segments.iter().map(|s| s.records.len()).sum();
        let mut finished: Vec<u64> = Vec::new();
        let mut done_stamps: Vec<u64> = Vec::new();
        let mut reclaimed = 0u64;
        let mut adopted = 0u64;
        for seg in &segments {
            for rec in &seg.records {
                match &rec.event {
                    Event::JobFinished { elapsed_ms, .. } => finished.push(*elapsed_ms),
                    Event::JobDone { .. } => done_stamps.push(rec.ms),
                    Event::LeaseReclaimed { .. } => reclaimed += 1,
                    Event::AdoptedPartial { .. } => adopted += 1,
                    _ => {}
                }
            }
        }
        let mean_job_ms =
            (!finished.is_empty()).then(|| finished.iter().sum::<u64>() / finished.len() as u64);
        let active_workers: BTreeSet<&String> = jobs
            .iter()
            .filter_map(|v| match v {
                JobView::Claimed { workers, .. } => Some(workers.iter()),
                _ => None,
            })
            .flatten()
            .collect();
        let remaining = (aggregate.total - aggregate.done) as u64;
        let eta_ms = mean_job_ms.map(|mean| mean * remaining / active_workers.len().max(1) as u64);
        done_stamps.sort_unstable();
        let jobs_per_min = match (done_stamps.first(), done_stamps.last()) {
            (Some(&first), Some(&last)) if last > first => {
                Some((done_stamps.len() as f64 - 1.0) * 60_000.0 / (last - first) as f64)
            }
            _ => None,
        };
        Some(JournalInsight {
            events,
            mean_job_ms,
            eta_ms,
            jobs_per_min,
            reclaimed,
            adopted,
        })
    };
    Ok(CampaignStatus {
        name: spec.name.clone(),
        suite: spec.suite.name(),
        seed: spec.seed,
        spec_hash: spec.spec_hash(),
        queue: aggregate,
        missing: count(|v| matches!(v, JobView::Missing)),
        jobs,
        stale,
        journal,
        root: root.to_path_buf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::SPEC_FILE;
    use rats_experiments::spec::{ExperimentSpec, SuiteSpec};

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rats-status-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn status_reports_states_without_mutating() {
        let root = temp_root("basic");
        let spec = ExperimentSpec::naive("st", "grillon", SuiteSpec::Mini, 3);
        fs::write(root.join(SPEC_FILE), format!("{}\n", spec.to_json())).unwrap();
        let queue = WorkQueue::init(&root, &spec, 3).unwrap();
        let lease = queue.claim("w0").unwrap().unwrap();
        let done = queue.claim("w1").unwrap().unwrap();
        queue.mark_done(&done).unwrap();

        let status = campaign_status(&root, 60_000).unwrap();
        assert_eq!(status.queue.total, 3);
        assert_eq!(status.queue.done, 1);
        assert_eq!(status.queue.claimed, 1);
        assert_eq!(status.queue.todo, 1);
        assert_eq!(status.stale, 0, "fresh lease is not stale");
        assert!(matches!(
            &status.jobs[lease.job],
            JobView::Claimed { workers, stale: false } if workers == &vec!["w0".to_string()]
        ));
        assert!((status.progress() - 1.0 / 3.0).abs() < 1e-12);
        let rendered = status.to_string();
        assert!(rendered.contains("claimed by w0"), "{rendered}");
        assert!(rendered.contains("1/3 done"), "{rendered}");

        // A zero threshold flags the live lease as stale — advisory only.
        // (Give the claim file's mtime a moment to age past 0 ms.)
        std::thread::sleep(std::time::Duration::from_millis(30));
        let status = campaign_status(&root, 0).unwrap();
        assert_eq!(status.stale, 1);
        assert!(status.to_string().contains("[stale?]"));

        // The scan mutated nothing: the same queue state is still there.
        let again = campaign_status(&root, 60_000).unwrap();
        assert_eq!(again.queue, status.queue);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn file_less_jobs_count_as_missing_not_leased() {
        let root = temp_root("missing");
        let spec = ExperimentSpec::naive("mi", "grillon", SuiteSpec::Mini, 4);
        fs::write(root.join(SPEC_FILE), format!("{}\n", spec.to_json())).unwrap();
        let queue = WorkQueue::init(&root, &spec, 2).unwrap();
        fs::remove_file(queue.dir().join("job-1-of-2.todo")).unwrap();
        let status = campaign_status(&root, 60_000).unwrap();
        assert_eq!(status.jobs[1], JobView::Missing);
        assert_eq!(status.missing, 1);
        assert_eq!(status.queue.claimed, 0, "missing is not leased");
        let rendered = status.to_string();
        assert!(
            rendered.contains("0 leased, 1 todo, 1 missing"),
            "{rendered}"
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn json_report_matches_the_scan() {
        let root = temp_root("json");
        let spec = ExperimentSpec::naive("js", "grillon", SuiteSpec::Mini, 9);
        fs::write(root.join(SPEC_FILE), format!("{}\n", spec.to_json())).unwrap();
        let queue = WorkQueue::init(&root, &spec, 2).unwrap();
        let done = queue.claim("w0").unwrap().unwrap();
        queue.mark_done(&done).unwrap();

        let status = campaign_status(&root, 60_000).unwrap();
        let parsed: Value = serde_json::from_str(&status.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.field::<String>("spec_hash").unwrap(),
            spec.spec_hash()
        );
        assert_eq!(parsed.field::<usize>("total").unwrap(), 2);
        assert_eq!(parsed.field::<usize>("done").unwrap(), 1);
        assert_eq!(parsed.field::<usize>("todo").unwrap(), 1);
        let jobs: Vec<Value> = parsed.field("jobs").unwrap();
        assert_eq!(jobs.len(), 2);
        let states: Vec<String> = jobs.iter().map(|j| j.field("state").unwrap()).collect();
        assert!(states.contains(&"done".to_string()), "{states:?}");
        assert!(states.contains(&"todo".to_string()), "{states:?}");
        assert_eq!(jobs[done.job].field::<usize>("job").unwrap(), done.job);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn status_rejects_a_rootless_directory() {
        let root = temp_root("empty");
        assert!(campaign_status(&root, 1000).is_err());
        fs::remove_dir_all(&root).unwrap();
    }
}
