//! Work-queue and dispatcher metrics — the data feed the ROADMAP's
//! dynamic re-weighting follow-on needs: claim/reclaim/renewal counters,
//! conflict sweeps, and per-worker job completions (from which a scraper
//! derives per-worker jobs/s). All queue operations are filesystem-bound,
//! so the unconditional atomic increments here are noise.

use rats_telemetry::{Counter, Family, Metric};

/// Successful job claims (atomic todo → claim renames that won).
pub static CLAIMS: Counter = Counter::new(
    "rats_dispatch_claims_total",
    "Jobs successfully claimed from the work queue.",
);

/// Claim attempts that lost the rename race to another worker.
pub static CLAIM_RACES: Counter = Counter::new(
    "rats_dispatch_claim_races_total",
    "Claim renames lost to a concurrent worker.",
);

/// Leases reclaimed from dead or straggling workers.
pub static RECLAIMS: Counter = Counter::new(
    "rats_dispatch_reclaims_total",
    "Leases reclaimed (claim returned to todo) from silent workers.",
);

/// Lease heartbeat renewals.
pub static LEASE_RENEWALS: Counter = Counter::new(
    "rats_dispatch_lease_renewals_total",
    "Lease heartbeat rewrites published by workers.",
);

/// Conflict files removed by sweeps.
pub static CONFLICTS_SWEPT: Counter = Counter::new(
    "rats_dispatch_conflict_files_swept_total",
    "Contradictory queue files (stray todo/claim) removed by conflict sweeps.",
);

/// Jobs re-seeded after losing every file.
pub static RESEEDS: Counter = Counter::new(
    "rats_dispatch_reseeds_total",
    "File-less jobs re-seeded with a fresh todo file.",
);

/// Jobs marked done while still holding the lease.
pub static JOBS_DONE: Counter = Counter::new(
    "rats_dispatch_jobs_done_total",
    "Jobs marked done by the lease holder.",
);

/// Worker processes spawned by the dispatcher (including respawns).
pub static WORKERS_SPAWNED: Counter = Counter::new(
    "rats_dispatch_workers_spawned_total",
    "Worker processes spawned by the dispatcher, respawns included.",
);

/// Worker processes respawned after dying with work remaining.
pub static WORKERS_RESPAWNED: Counter = Counter::new(
    "rats_dispatch_workers_respawned_total",
    "Worker processes respawned after dying with work remaining.",
);

/// Per-worker job completions (rate over scrapes = per-worker jobs/s).
pub static WORKER_JOBS: Family = Family::new(
    "rats_dispatch_worker_jobs_total",
    "Jobs completed per worker id.",
    "worker",
);

/// Every metric this crate exports, for registry registration.
pub static METRICS: &[Metric] = &[
    Metric::Counter(&CLAIMS),
    Metric::Counter(&CLAIM_RACES),
    Metric::Counter(&RECLAIMS),
    Metric::Counter(&LEASE_RENEWALS),
    Metric::Counter(&CONFLICTS_SWEPT),
    Metric::Counter(&RESEEDS),
    Metric::Counter(&JOBS_DONE),
    Metric::Counter(&WORKERS_SPAWNED),
    Metric::Counter(&WORKERS_RESPAWNED),
    Metric::Family(&WORKER_JOBS),
];
