//! The worker loop: claim shard jobs from the queue and execute them with
//! the durable shard engine, heartbeating the lease all the while.
//!
//! A worker is deliberately dumb: it knows the campaign root directory and
//! nothing else. It attaches to the queue (validating the spec hash),
//! loads the shared scenario cache (or regenerates on a cache miss), then
//! loops: claim the lowest todo job, adopt whatever partial shard file a
//! dead predecessor left for that job, run the shard, mark it done. When
//! nothing is claimable it idles until the campaign completes — reclaimed
//! jobs may reappear at any time — and exits once every job is done.
//!
//! Crash safety comes from composing two layers: the queue's lease
//! protocol (a dead worker's lease goes stale and is reclaimed by the
//! dispatcher) and the shard engine's append-only JSONL files (the
//! adopting worker resumes after the last committed record, re-running at
//! most one job). Because every job is a deterministic pure function of
//! the spec, even a *straggler* that was reclaimed while still alive is
//! harmless — its duplicate records are bit-identical and merge cleanly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rats_daggen::suite::Scenario;
use rats_experiments::shard::{
    read_shard_file, run_shard_journaled, run_shard_with_scenarios, shard_file_name,
};
use rats_experiments::spec::ExperimentSpec;
use rats_journal::{Event, Journal};

use crate::queue::{Lease, WorkQueue};
use crate::{sanitize, DispatchError};

/// Subdirectory of the campaign root holding per-worker shard output.
pub const SHARDS_DIR: &str = "shards";

/// Name of the spec document the dispatcher writes under the campaign root.
pub const SPEC_FILE: &str = "spec.json";

/// Fault-injection points for tests and the CI kill-a-worker smoke: the
/// worker aborts (as if SIGKILLed — no cleanup, no lease release) at a
/// precisely reproducible place in its first claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhase {
    /// Die right after claiming: lease held, no shard file at all.
    Claim,
    /// Die after writing the shard manifest line but before the first
    /// record.
    Manifest,
    /// Die mid-shard: some records committed, plus a torn trailing line.
    Partial,
}

impl ChaosPhase {
    /// Parses the CLI spelling.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "claim" => Some(ChaosPhase::Claim),
            "manifest" => Some(ChaosPhase::Manifest),
            "partial" => Some(ChaosPhase::Partial),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosPhase::Claim => "claim",
            ChaosPhase::Manifest => "manifest",
            ChaosPhase::Partial => "partial",
        }
    }
}

/// Configuration of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Campaign root directory (holds `queue/`, `shards/`, `spec.json`).
    pub root: PathBuf,
    /// This worker's id (unique per live worker; filesystem-safe).
    pub worker_id: String,
    /// Threads for shard execution.
    pub threads: usize,
    /// Heartbeat period.
    pub beat_ms: u64,
    /// Idle poll period when nothing is claimable.
    pub poll_ms: u64,
    /// Give up after this long without claiming anything while the
    /// campaign is still incomplete (`0` = wait forever). Protects manual
    /// workers from orphaned queues.
    pub idle_timeout_ms: u64,
    /// Exit when this process disappears (the dispatcher passes its own
    /// pid, so its workers do not poll forever as orphans if the
    /// dispatcher is killed — nobody would reclaim leases or merge).
    pub parent_pid: Option<u32>,
    /// Fault injection for tests (see [`ChaosPhase`]).
    pub chaos: Option<ChaosPhase>,
}

/// Whether the process with `pid` is still alive, judged by `/proc`.
/// Returns `true` (assume alive) on systems without a `/proc` to consult.
fn process_alive(pid: u32) -> bool {
    if !std::path::Path::new("/proc/self").exists() {
        return true;
    }
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

impl WorkerConfig {
    /// A worker on `root` with default timing (200 ms beats, 100 ms polls,
    /// wait forever).
    pub fn new(root: impl Into<PathBuf>, worker_id: &str) -> Self {
        Self {
            root: root.into(),
            worker_id: sanitize(worker_id),
            threads: 1,
            beat_ms: 200,
            poll_ms: 100,
            idle_timeout_ms: 0,
            parent_pid: None,
            chaos: None,
        }
    }
}

/// What a worker accomplished before exiting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Shard jobs completed (claim → done).
    pub jobs_done: usize,
    /// Grid jobs executed across those shards.
    pub executed: usize,
    /// Grid jobs skipped because an adopted file already held them.
    pub resumed: usize,
    /// Leases lost to reclaim while still working.
    pub leases_lost: usize,
    /// Whether the scenario population came from the shared cache.
    pub used_cache: bool,
}

/// Loads the campaign spec the dispatcher serialized under `root`.
pub fn load_root_spec(root: &Path) -> Result<ExperimentSpec, DispatchError> {
    let path = root.join(SPEC_FILE);
    let text = fs::read_to_string(&path)
        .map_err(|e| DispatchError::Io(format!("cannot read campaign spec {path:?}: {e}")))?;
    Ok(ExperimentSpec::from_json(&text)?)
}

/// Runs the worker loop to completion (all queue jobs done) or error.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerReport, DispatchError> {
    let spec = load_root_spec(&cfg.root)?;
    let queue = WorkQueue::attach(&cfg.root, &spec)?;
    let mut journal = Journal::open(&cfg.root, &cfg.worker_id, queue.spec_hash());
    let (scenarios, used_cache) = crate::cache::load_or_generate(&cfg.root, &spec);
    journal.emit(Event::PopulationLoaded {
        from_cache: used_cache,
    });
    let my_dir = cfg.root.join(SHARDS_DIR).join(&cfg.worker_id);
    fs::create_dir_all(&my_dir)?;

    let mut report = WorkerReport {
        used_cache,
        ..WorkerReport::default()
    };
    let mut chaos = cfg.chaos;
    let mut last_progress = Instant::now();
    loop {
        match queue.claim(&cfg.worker_id)? {
            Some(lease) => {
                last_progress = Instant::now();
                // Journal the claim before any chaos injection: a worker
                // that dies right after claiming has still claimed, and its
                // segment must say so for replay to match the live queue.
                journal.emit(Event::JobClaimed {
                    job: lease.job as u64,
                    worker: lease.worker.clone(),
                });
                if let Some(phase) = chaos.take() {
                    inject_chaos(phase, &spec, &lease, &my_dir, cfg.threads, &scenarios)?;
                }
                let (run, kept) =
                    execute_lease(&spec, &queue, lease, &my_dir, cfg, &scenarios, &mut journal)?;
                report.executed += run.executed;
                report.resumed += run.skipped;
                if kept {
                    report.jobs_done += 1;
                } else {
                    report.leases_lost += 1;
                }
            }
            None => {
                let status = queue.status()?;
                if status.all_done() {
                    break;
                }
                if let Some(pid) = cfg.parent_pid {
                    if !process_alive(pid) {
                        eprintln!(
                            "worker {}: dispatcher (pid {pid}) is gone with the campaign \
                             at {status}; exiting",
                            cfg.worker_id
                        );
                        break;
                    }
                }
                if cfg.idle_timeout_ms > 0
                    && last_progress.elapsed() > Duration::from_millis(cfg.idle_timeout_ms)
                {
                    return Err(DispatchError::Worker {
                        id: cfg.worker_id.clone(),
                        message: format!(
                            "idle for {} ms with campaign at {status}",
                            cfg.idle_timeout_ms
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
            }
        }
    }
    Ok(report)
}

/// Runs one leased shard with a heartbeat thread alive for the duration,
/// then marks it done. Returns the shard run and whether the lease was
/// still ours at completion.
fn execute_lease(
    spec: &ExperimentSpec,
    queue: &WorkQueue,
    lease: Lease,
    my_dir: &Path,
    cfg: &WorkerConfig,
    scenarios: &[Scenario],
    journal: &mut Journal,
) -> Result<(rats_experiments::shard::ShardRun, bool), DispatchError> {
    let mut shard_spec = spec.clone();
    shard_spec.shard = Some(lease.shard());
    if let Some((donor, records)) =
        adopt_partial_output(&cfg.root, &cfg.worker_id, &shard_spec, my_dir)
    {
        journal.emit(Event::AdoptedPartial {
            job: lease.job as u64,
            worker: lease.worker.clone(),
            donor,
            records: records as u64,
        });
    }

    let stop = AtomicBool::new(false);
    let run = std::thread::scope(|scope| {
        let mut beater = lease.clone();
        let beat_ms = cfg.beat_ms.max(1);
        let stop = &stop;
        scope.spawn(move || {
            // Sleep in short slices so a finished shard stops the beater
            // promptly even with long beat periods.
            let slice = Duration::from_millis(beat_ms.min(25));
            let mut elapsed = Duration::ZERO;
            let period = Duration::from_millis(beat_ms);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                elapsed += slice;
                if elapsed >= period {
                    elapsed = Duration::ZERO;
                    match beater.beat() {
                        Ok(true) => {}
                        // Lease gone (reclaimed) or unreachable: stop
                        // beating; the main thread finds out via mark_done.
                        Ok(false) | Err(_) => break,
                    }
                }
            }
        });
        let run = run_shard_journaled(
            &shard_spec,
            my_dir,
            Some(cfg.threads),
            Some(scenarios),
            Some(&mut *journal),
        );
        stop.store(true, Ordering::Relaxed);
        run
    })?;
    let kept = queue.mark_done(&lease)?;
    if kept {
        journal.emit(Event::JobDone {
            job: lease.job as u64,
            worker: lease.worker.clone(),
        });
    } else {
        journal.emit(Event::LeaseLost {
            job: lease.job as u64,
            worker: lease.worker.clone(),
        });
    }
    Ok((run, kept))
}

/// Seeds this worker's shard file from the most advanced copy another
/// worker (typically a dead one) left behind, so resumed shards skip the
/// jobs already committed instead of recomputing the whole shard. Purely
/// best-effort: on any doubt the copy is discarded and the shard runs from
/// scratch. On success returns the donor worker's directory name and how
/// many committed records the adopted copy held.
fn adopt_partial_output(
    root: &Path,
    worker_id: &str,
    shard_spec: &ExperimentSpec,
    my_dir: &Path,
) -> Option<(String, usize)> {
    let file_name = shard_file_name(shard_spec);
    let mine = my_dir.join(&file_name);
    if mine.exists() {
        return None; // Our own previous attempt; run_shard resumes it directly.
    }
    let entries = fs::read_dir(root.join(SHARDS_DIR)).ok()?;
    let expected_hash = shard_spec.spec_hash();
    let mut best: Option<(usize, String, PathBuf)> = None;
    for entry in entries.flatten() {
        let dir = entry.path();
        if dir.file_name().is_some_and(|n| n == worker_id) || !dir.is_dir() {
            continue;
        }
        let candidate = dir.join(&file_name);
        let Ok(loaded) = read_shard_file(&candidate) else {
            continue;
        };
        if loaded.manifest.spec_hash != expected_hash
            || loaded.manifest.shard != shard_spec.shard.unwrap_or_default()
        {
            continue;
        }
        let records = loaded.records.len();
        if best.as_ref().is_none_or(|(n, _, _)| records > *n) {
            let donor = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            best = Some((records, donor, candidate));
        }
    }
    let (records, donor, source) = best?;
    // Copy through a temp file so our directory never holds a torn file,
    // then re-validate the copy (the source may be mid-append; a torn
    // *final* line is fine — the shard engine drops and re-runs it).
    let tmp = my_dir.join(format!("{file_name}.adopt-tmp"));
    if fs::copy(&source, &tmp).is_err() {
        let _ = fs::remove_file(&tmp);
        return None;
    }
    if read_shard_file(&tmp).is_err() {
        let _ = fs::remove_file(&tmp);
        return None;
    }
    if fs::rename(&tmp, &mine).is_err() {
        let _ = fs::remove_file(&tmp);
        return None;
    }
    Some((donor, records))
}

/// Reproduces a worker death at a precise point of its first claim, then
/// aborts the process (no unwinding, no lease cleanup — the closest safe
/// approximation of `kill -9` that a test can trigger deterministically).
fn inject_chaos(
    phase: ChaosPhase,
    spec: &ExperimentSpec,
    lease: &Lease,
    my_dir: &Path,
    threads: usize,
    scenarios: &[Scenario],
) -> Result<(), DispatchError> {
    let mut shard_spec = spec.clone();
    shard_spec.shard = Some(lease.shard());
    match phase {
        ChaosPhase::Claim => {}
        ChaosPhase::Manifest => {
            // Run the real executor far enough to commit the manifest, then
            // strip the records: the on-disk state is exactly "died between
            // manifest write and first record".
            run_shard_with_scenarios(&shard_spec, my_dir, Some(threads), Some(scenarios))?;
            let path = my_dir.join(shard_file_name(&shard_spec));
            let text = fs::read_to_string(&path)?;
            let manifest_line = text.lines().next().unwrap_or_default();
            fs::write(&path, format!("{manifest_line}\n"))?;
        }
        ChaosPhase::Partial => {
            // Commit roughly half the records and tear the next line.
            run_shard_with_scenarios(&shard_spec, my_dir, Some(threads), Some(scenarios))?;
            let path = my_dir.join(shard_file_name(&shard_spec));
            let text = fs::read_to_string(&path)?;
            let lines: Vec<&str> = text.lines().collect();
            let keep = 1 + (lines.len() - 1) / 2;
            let mut crashed = lines[..keep].join("\n");
            crashed.push('\n');
            if let Some(next) = lines.get(keep) {
                crashed.push_str(&next[..next.len() / 2]);
            }
            fs::write(&path, crashed)?;
        }
    }
    eprintln!(
        "worker {}: chaos `{}` on job {} — aborting",
        lease.worker,
        phase.as_str(),
        lease.job
    );
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_phases_parse() {
        for phase in [ChaosPhase::Claim, ChaosPhase::Manifest, ChaosPhase::Partial] {
            assert_eq!(ChaosPhase::parse(phase.as_str()), Some(phase));
        }
        assert_eq!(ChaosPhase::parse("sigsegv"), None);
    }
}
