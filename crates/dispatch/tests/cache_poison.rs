//! Population-cache corruption must never poison workers: a
//! digest-mismatched or truncated `scenarios.cache` makes every worker
//! silently fall back to regeneration, and the campaign outcome stays
//! bit-identical to the in-process run.

mod common;

use std::fs;
use std::path::{Path, PathBuf};

use common::{assert_outcomes_bit_identical, temp_dir};
use rats_dispatch::cache::{ensure_cache, load_cache, CACHE_FILE};
use rats_dispatch::dispatcher::collect_shard_files_recursive;
use rats_dispatch::worker::{run_worker, WorkerConfig, SHARDS_DIR, SPEC_FILE};
use rats_dispatch::WorkQueue;
use rats_experiments::shard::merge_shards;
use rats_experiments::spec::{ExperimentSpec, SpecOutcome};

fn temp_root(tag: &str) -> PathBuf {
    temp_dir(&format!("poison-{tag}"))
}

/// A small custom-workload campaign, so the corruption paths are exercised
/// on a synthesized population (generated star cluster included).
fn custom_spec(seed: u64) -> ExperimentSpec {
    let toml = format!(
        "name = \"poison\"\n\
         seed = {seed}\n\
         suite = \"custom\"\n\
         threads = 2\n\
         clusters = [\"edge\"]\n\
         \n\
         [[strategies]]\n\
         kind = \"hcpa\"\n\
         \n\
         [[strategies]]\n\
         kind = \"delta\"\n\
         mindelta = 0.5\n\
         maxdelta = 0.5\n\
         \n\
         [[families]]\n\
         kind = \"fork-join\"\n\
         count = 2\n\
         stages = 2\n\
         branches = 3\n\
         \n\
         [[families]]\n\
         kind = \"chain\"\n\
         count = 2\n\
         n = [4, 7]\n\
         \n\
         [[topologies]]\n\
         name = \"edge\"\n\
         kind = \"star\"\n\
         procs = 6\n"
    );
    ExperimentSpec::from_toml(&toml).unwrap()
}

/// Prepares a campaign root the way `campaign dispatch` would, runs one
/// in-process worker to completion, and returns its merged outcome plus
/// whether the worker loaded the cache.
fn run_one_worker(root: &Path, spec: &ExperimentSpec, worker_id: &str) -> (SpecOutcome, bool) {
    let normalized = spec.normalized();
    fs::write(root.join(SPEC_FILE), format!("{}\n", normalized.to_json())).unwrap();
    WorkQueue::init(root, &normalized, 2).unwrap();
    let mut cfg = WorkerConfig::new(root.to_path_buf(), worker_id);
    cfg.threads = 2;
    cfg.beat_ms = 25;
    cfg.poll_ms = 10;
    cfg.idle_timeout_ms = 60_000;
    let report = run_worker(&cfg).unwrap();
    let files = collect_shard_files_recursive(&root.join(SHARDS_DIR)).unwrap();
    (merge_shards(&files).unwrap(), report.used_cache)
}

#[test]
fn valid_cache_is_used_and_round_trips_custom_populations() {
    let root = temp_root("valid");
    let spec = custom_spec(41);
    let reference = spec.run().unwrap();
    let normalized = spec.normalized();
    let (_, written) = ensure_cache(&root, &normalized).unwrap();
    assert!(written);
    // The cached custom population is bit-exactly what the spec generates.
    let cached = load_cache(&root, &normalized).expect("fresh cache must load");
    let generated = normalized.scenarios();
    assert_eq!(cached.len(), generated.len());
    for (a, b) in cached.iter().zip(&generated) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.family, b.family);
        for (x, y) in a.dag.edge_ids().zip(b.dag.edge_ids()) {
            assert_eq!(a.dag.edge(x).bytes.to_bits(), b.dag.edge(y).bytes.to_bits());
        }
    }
    let (outcome, used_cache) = run_one_worker(&root, &spec, "w-valid");
    assert!(used_cache, "an intact cache must be loaded");
    assert_outcomes_bit_identical(&outcome, &reference);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn digest_mismatched_cache_falls_back_to_regeneration() {
    let root = temp_root("digest");
    let spec = custom_spec(42);
    let reference = spec.run().unwrap();
    let normalized = spec.normalized();
    ensure_cache(&root, &normalized).unwrap();
    // Flip content without touching the digest trailer.
    let path = root.join(CACHE_FILE);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, text.replacen("task", "tusk", 1)).unwrap();
    assert!(load_cache(&root, &normalized).is_none(), "digest must fail");

    let (outcome, used_cache) = run_one_worker(&root, &spec, "w-digest");
    assert!(!used_cache, "corrupt cache must be bypassed, not trusted");
    assert_outcomes_bit_identical(&outcome, &reference);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn truncated_cache_falls_back_to_regeneration() {
    let root = temp_root("torn");
    let spec = custom_spec(43);
    let reference = spec.run().unwrap();
    let normalized = spec.normalized();
    ensure_cache(&root, &normalized).unwrap();
    // A torn write: half the file, no digest trailer.
    let path = root.join(CACHE_FILE);
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(load_cache(&root, &normalized).is_none());

    let (outcome, used_cache) = run_one_worker(&root, &spec, "w-torn");
    assert!(!used_cache);
    assert_outcomes_bit_identical(&outcome, &reference);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn sibling_campaigns_cache_is_rejected_by_identity() {
    // A cache from a *different* custom workload (same seed, same scenario
    // count) must be rejected by its suite tag, not silently served.
    let root = temp_root("sibling");
    let spec = custom_spec(44);
    let mut other = custom_spec(44);
    if let rats_experiments::spec::SuiteSpec::Custom(w) = &mut other.suite {
        w.families[0].branches = rats_workloads::IntDist::Fixed(4);
    }
    assert_eq!(spec.suite.len(), other.suite.len());
    ensure_cache(&root, &other.normalized()).unwrap();
    assert!(
        load_cache(&root, &spec.normalized()).is_none(),
        "a sibling workload's population must not be served"
    );
    let (outcome, used_cache) = run_one_worker(&root, &spec, "w-sibling");
    assert!(!used_cache);
    assert_outcomes_bit_identical(&outcome, &spec.run().unwrap());
    fs::remove_dir_all(&root).unwrap();
}
