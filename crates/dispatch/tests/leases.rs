//! Lease-file edge cases: stale-heartbeat reclamation, the double-claim
//! rename race, and resume after a worker dies between the shard-manifest
//! write and its first record.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rats_dispatch::dispatcher::campaign_root;
use rats_dispatch::worker::SHARDS_DIR;
use rats_dispatch::WorkQueue;
use rats_experiments::grid::ShardSpec;
use rats_experiments::shard::{
    merge_shards, read_shard_file, run_shard, shard_file_name, ShardManifest,
};
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rats-leases-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn mini_spec(name: &str, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::naive(name, "grillon", SuiteSpec::Mini, seed);
    spec.threads = Some(2);
    spec
}

/// A lease that keeps beating is never reclaim-eligible by the content-
/// observation rule; one that stops beating is. This drives the exact
/// staleness logic the dispatcher uses: remember the last content and when
/// it changed, reclaim when it stops changing.
#[test]
fn stale_heartbeats_are_reclaimed_live_ones_are_not() {
    let out = temp_out("stale");
    let spec = mini_spec("leases-stale", 1).normalized();
    let root = campaign_root(&out, &spec);
    fs::create_dir_all(&root).unwrap();
    let queue = WorkQueue::init(&root, &spec, 2).unwrap();

    // Job 0: a live worker beating every 30 ms. Job 1: claimed, then
    // silence (the worker "died").
    let live = queue.claim("live").unwrap().unwrap();
    let dead = queue.claim("dead").unwrap().unwrap();
    assert_eq!((live.job, dead.job), (0, 1));

    let stop = AtomicBool::new(false);
    let reclaimed: Vec<usize> = std::thread::scope(|scope| {
        let stop = &stop;
        let queue_ref = &queue;
        let mut beater = live.clone();
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(30));
                if !beater.beat().unwrap() {
                    break;
                }
            }
        });
        // The dispatcher's observation loop, condensed: content + instant.
        let stale_after = Duration::from_millis(400);
        let mut watch: Vec<(String, Instant)> = vec![
            (String::new(), Instant::now()),
            (String::new(), Instant::now()),
        ];
        let mut reclaimed = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while reclaimed.is_empty() && Instant::now() < deadline {
            for (job, worker) in [(0usize, "live"), (1usize, "dead")] {
                let Some(content) = queue_ref.read_claim(job, worker).unwrap() else {
                    continue;
                };
                let slot = &mut watch[job];
                if slot.0 != content {
                    *slot = (content, Instant::now());
                } else if slot.1.elapsed() > stale_after && queue_ref.reclaim(job, worker).unwrap()
                {
                    reclaimed.push(job);
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        reclaimed
    });

    assert_eq!(reclaimed, vec![1], "only the silent lease is reclaimed");
    // The reclaimed job is claimable again; the live lease is intact.
    let files = queue.scan().unwrap();
    assert!(files[&1].todo);
    assert_eq!(files[&0].claims, vec!["live".to_string()]);
    let second = queue.claim("heir").unwrap().unwrap();
    assert_eq!(second.job, 1);
    fs::remove_dir_all(&out).unwrap();
}

/// Many workers racing rename(2) for the same todo files: every job is
/// claimed exactly once, and losers observe `None`, not corruption.
#[test]
fn double_claim_rename_race_has_one_winner() {
    let out = temp_out("race");
    let spec = mini_spec("leases-race", 2).normalized();
    let root = campaign_root(&out, &spec);
    fs::create_dir_all(&root).unwrap();
    // One single job so every round is a direct head-to-head collision.
    for round in 0..20 {
        let queue = WorkQueue::init(&root, &spec, 1).unwrap();
        let barrier = Barrier::new(2);
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = ["a", "b"]
                .into_iter()
                .map(|w| {
                    let queue = queue.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        queue.claim(&format!("{w}{round}")).unwrap().is_some()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            winners.iter().filter(|&&won| won).count(),
            1,
            "round {round}: exactly one claimant must win, got {winners:?}"
        );
        // Reset for the next round.
        fs::remove_dir_all(root.join("queue")).unwrap();
    }
    fs::remove_dir_all(&out).unwrap();
}

/// A worker dies after the shard manifest hit the disk but before any
/// record: the successor adopts a record-less file, resumes with zero
/// skips, and the merge still reproduces the in-process outcome.
#[test]
fn resume_after_death_between_manifest_and_first_record() {
    let out = temp_out("manifest");
    let spec = mini_spec("leases-manifest", 3);
    let reference = spec.run().unwrap();
    let normalized = spec.normalized();
    let root = campaign_root(&out, &normalized);
    let shard0 = {
        let mut s = spec.clone();
        s.shard = Some(ShardSpec::new(0, 2));
        s
    };

    // The dead worker's directory: exactly the manifest line, no records —
    // the on-disk state of a death between the manifest write and the
    // first record append.
    let dead_dir = root.join(SHARDS_DIR).join("dead");
    fs::create_dir_all(&dead_dir).unwrap();
    let manifest = ShardManifest {
        spec: normalized.clone(),
        spec_hash: normalized.spec_hash(),
        seed: normalized.seed,
        shard: ShardSpec::new(0, 2),
        threads: 2,
    };
    let manifest_line = serde_json::to_string(&manifest).unwrap();
    let file = shard_file_name(&shard0);
    fs::write(dead_dir.join(&file), format!("{manifest_line}\n")).unwrap();
    let loaded = read_shard_file(&dead_dir.join(&file)).unwrap();
    assert!(loaded.records.is_empty());
    assert!(!loaded.truncated_tail);

    // The heir resumes shard 0 in its own directory (run_shard's resume
    // path accepts the manifest-only file it adopted) and runs shard 1
    // fresh.
    let heir_dir = root.join(SHARDS_DIR).join("heir");
    fs::create_dir_all(&heir_dir).unwrap();
    fs::copy(dead_dir.join(&file), heir_dir.join(&file)).unwrap();
    let resumed = run_shard(&shard0, &heir_dir, None).unwrap();
    assert_eq!(resumed.skipped, 0, "no records had been committed");
    assert_eq!(resumed.executed, resumed.total);
    let shard1 = {
        let mut s = spec.clone();
        s.shard = Some(ShardSpec::new(1, 2));
        s
    };
    run_shard(&shard1, &heir_dir, None).unwrap();

    let merged = merge_shards(&[
        dead_dir.join(&file),
        heir_dir.join(&file),
        heir_dir.join(shard_file_name(&shard1)),
    ]);
    // The dead worker's manifest-only file merges harmlessly (no records),
    // and the result matches the in-process run bit for bit.
    let merged = merged.unwrap();
    assert_eq!(merged.render(), reference.render());
    fs::remove_dir_all(&out).unwrap();
}

/// The dispatcher-side counterpart: reclaiming a lease whose worker died
/// pre-manifest leaves no shard file at all; the heir starts from scratch
/// and nothing wedges on the empty directory.
#[test]
fn reclaim_with_no_shard_file_restarts_cleanly() {
    let out = temp_out("noshard");
    let spec = mini_spec("leases-noshard", 4).normalized();
    let root = campaign_root(&out, &spec);
    fs::create_dir_all(root.join(SHARDS_DIR).join("ghost")).unwrap();
    let queue = WorkQueue::init(&root, &spec, 1).unwrap();
    let _ghost = queue.claim("ghost").unwrap().unwrap();
    // Death: no beats, no shard file. Reclaim and let the heir run it.
    assert!(queue.reclaim(0, "ghost").unwrap());
    let heir = queue.claim("heir").unwrap().unwrap();
    let mut shard_spec = spec.clone();
    shard_spec.shard = Some(heir.shard());
    let heir_dir = root.join(SHARDS_DIR).join("heir");
    let run = run_shard(&shard_spec, &heir_dir, Some(2)).unwrap();
    assert_eq!(run.skipped, 0);
    assert!(queue.mark_done(&heir).unwrap());
    assert!(queue.status().unwrap().all_done());
    fs::remove_dir_all(&out).unwrap();
}

/// Claim files of foreign shard granularities are invisible: a queue sees
/// only its own `job-*-of-<its count>` files (defends the meta identity
/// check against directory reuse).
#[test]
fn foreign_granularity_files_are_ignored() {
    let out = temp_out("foreign");
    let spec = mini_spec("leases-foreign", 5).normalized();
    let root = campaign_root(&out, &spec);
    fs::create_dir_all(&root).unwrap();
    let queue = WorkQueue::init(&root, &spec, 2).unwrap();
    // Drop a stray file with a different shard count into the queue dir.
    fs::write(queue.dir().join("job-0-of-9.todo"), "{}\n").unwrap();
    let st = queue.status().unwrap();
    assert_eq!((st.total, st.todo), (2, 2));
    let a = queue.claim("w").unwrap().unwrap();
    let b = queue.claim("w").unwrap().unwrap();
    assert_eq!((a.job, b.job), (0, 1));
    assert!(queue.claim("w").unwrap().is_none());
    fs::remove_dir_all(&out).unwrap();
}
