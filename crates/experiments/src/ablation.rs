//! Quality ablations for the design choices DESIGN.md calls out.
//!
//! Unlike the Criterion benches (which time the code), these experiments
//! measure **schedule quality**: how each design alternative moves the
//! simulated makespan across a scenario suite.

use rats_platform::Platform;
use rats_sched::{allocate, AllocParams, AreaPolicy, CandidatePolicy, MappingStrategy, Scheduler};
use rats_sim::simulate;

use crate::campaign::PreparedScenario;
use crate::runner::parallel_map;
use crate::stats;

/// Mean relative makespan + win fraction of an algorithm against a
/// scenario-aligned baseline.
fn summary_line(name: &str, makespans: &[f64], base: &[f64]) -> String {
    let rel = stats::relative(makespans, base);
    let s = stats::summarize(&rel);
    format!(
        "  {name:<22} mean {:.4} ({:+.1} %), better in {:.1} %\n",
        s.mean_ratio,
        (s.mean_ratio - 1.0) * 100.0,
        s.wins * 100.0
    )
}

/// Ablation A — mapping strategies and candidate policies, on a shared HCPA
/// allocation. Shows how much of RATS's win a merely *stronger baseline
/// placement* (parent-aware candidate search) would capture, and where the
/// combined extension lands.
pub fn mapping_ablation(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> String {
    let evaluate = |strategy: MappingStrategy, candidates: CandidatePolicy| -> Vec<f64> {
        parallel_map(prepared, threads, |_, p| {
            let schedule = Scheduler::new(platform)
                .strategy(strategy)
                .candidate_policy(candidates)
                .schedule_with_allocation(&p.scenario.dag, &p.alloc);
            simulate(&p.scenario.dag, &schedule, platform).makespan
        })
    };
    let base = evaluate(MappingStrategy::Hcpa, CandidatePolicy::EarliestK);
    let mut out = format!(
        "# Ablation A — mapping strategies vs HCPA/earliest-k on {} ({} scenarios)\n",
        platform.name(),
        prepared.len()
    );
    for (name, strategy, candidates) in [
        (
            "HCPA parent-aware",
            MappingStrategy::Hcpa,
            CandidatePolicy::ParentAware,
        ),
        (
            "delta (0.5, 0.5)",
            MappingStrategy::rats_delta(0.5, 0.5),
            CandidatePolicy::EarliestK,
        ),
        (
            "time-cost (0.5, pack)",
            MappingStrategy::rats_time_cost(0.5, true),
            CandidatePolicy::EarliestK,
        ),
        (
            "combined (.5, 1, .4)",
            MappingStrategy::rats_combined(0.5, 1.0, 0.4),
            CandidatePolicy::EarliestK,
        ),
    ] {
        let m = evaluate(strategy, candidates);
        out.push_str(&summary_line(name, &m, &base));
    }
    out
}

/// Ablation B — allocation-step policies (area definition and the
/// communication-inclusive critical path), all evaluated under the
/// time-cost mapping.
pub fn allocation_ablation(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> String {
    let evaluate = |params: AllocParams| -> Vec<f64> {
        parallel_map(prepared, threads, |_, p| {
            let alloc = allocate(&p.scenario.dag, platform, params);
            let schedule = Scheduler::new(platform)
                .strategy(MappingStrategy::rats_time_cost(0.5, true))
                .schedule_with_allocation(&p.scenario.dag, &alloc);
            simulate(&p.scenario.dag, &schedule, platform).makespan
        })
    };
    let base = evaluate(AllocParams::default());
    let mut out = format!(
        "# Ablation B — allocation policies (time-cost mapping) on {} ({} scenarios)\n",
        platform.name(),
        prepared.len()
    );
    for (name, params) in [
        (
            "CPA classic area",
            AllocParams {
                policy: AreaPolicy::CpaClassic,
                ..AllocParams::default()
            },
        ),
        (
            "MCPA level cap",
            AllocParams {
                policy: AreaPolicy::Mcpa,
                ..AllocParams::default()
            },
        ),
        (
            "comm-inclusive C-inf",
            AllocParams {
                policy: AreaPolicy::Hcpa,
                cp_includes_comm: true,
            },
        ),
    ] {
        let m = evaluate(params);
        out.push_str(&summary_line(name, &m, &base));
    }
    out
}

/// Both ablations on one platform.
pub fn run(prepared: &[PreparedScenario], platform: &Platform, threads: usize) -> String {
    let mut out = mapping_ablation(prepared, platform, threads);
    out.push('\n');
    out.push_str(&allocation_ablation(prepared, platform, threads));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::suite::mini_suite;
    use rats_model::CostParams;
    use rats_platform::ClusterSpec;

    #[test]
    fn ablation_report_smoke() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared = PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 13), &platform, 2);
        let report = run(&prepared, &platform, 2);
        assert!(report.contains("Ablation A"));
        assert!(report.contains("Ablation B"));
        assert!(report.contains("combined"));
        assert!(report.contains("MCPA"));
    }
}
