//! One generator per paper artifact (tables II–VI, figures 2–7).
//!
//! Each function returns the artifact as printable text; the binaries in
//! `src/bin/` are thin wrappers. `quick = true` swaps the 557-configuration
//! paper suite for a mini suite (smoke-test scale).

use std::fmt::Write as _;

use rats_daggen::suite::{self, AppFamily, Scenario};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};

use crate::campaign::{AlgoResults, PreparedScenario, BASE_SEED};
use crate::figures;
use crate::runner::parallel_map;
use crate::spec::ExperimentSpec;
use crate::stats;
use crate::tuning::{self, paper_tuned};

/// Loads the scenario suite (full paper population or mini).
pub fn load_suite(quick: bool) -> Vec<Scenario> {
    if quick {
        suite::mini_suite(&CostParams::paper(), BASE_SEED)
    } else {
        suite::paper_suite(&CostParams::paper(), BASE_SEED)
    }
}

/// The paper's three clusters.
pub fn clusters() -> Vec<Platform> {
    ClusterSpec::paper_clusters()
        .iter()
        .map(Platform::from_spec)
        .collect()
}

/// Table II: cluster characteristics.
pub fn table2() -> String {
    let mut out = String::from("# Table II — cluster characteristics\n");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>12} {:>14}",
        "cluster", "#proc", "GFlop/s", "topology"
    );
    for spec in ClusterSpec::paper_clusters() {
        let topo = match spec.topology {
            rats_platform::TopologySpec::Flat => "flat".to_string(),
            rats_platform::TopologySpec::Hierarchical {
                cabinets,
                nodes_per_cabinet,
                ..
            } => format!("{cabinets}x{nodes_per_cabinet} cab"),
            rats_platform::TopologySpec::Star { .. } => "star".to_string(),
            rats_platform::TopologySpec::Bus { .. } => "bus".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>12.3} {:>14}",
            spec.name, spec.num_procs, spec.gflops, topo
        );
    }
    out
}

/// Table III: DAG generation parameters and realized population counts.
pub fn table3(quick: bool) -> String {
    let suite = load_suite(quick);
    let mut out = String::from("# Table III — random DAG generation parameters\n");
    out.push_str("#computation tasks : 25, 50, 100\n");
    out.push_str("non-parallelizable : [0.0, 0.25]\n");
    out.push_str("width              : 0.2, 0.5, 0.8\n");
    out.push_str("density            : 0.2, 0.8\n");
    out.push_str("regularity         : 0.2, 0.8\n");
    out.push_str("jump (irregular)   : 1, 2, 4\n");
    out.push_str("#samples           : 3 (random), 25 (FFT per k, Strassen)\n\n");
    let _ = writeln!(out, "realized population ({} configurations):", suite.len());
    for f in AppFamily::PAPER {
        let n = suite.iter().filter(|s| s.family == f).count();
        let tasks: usize = suite
            .iter()
            .filter(|s| s.family == f)
            .map(|s| s.dag.num_tasks())
            .sum();
        let _ = writeln!(
            out,
            "  {:<10} {:>4} DAGs, {:>6} tasks total",
            f.name(),
            n,
            tasks
        );
    }
    out
}

/// Shared helper: prepared scenarios for a platform.
fn prepare(platform: &Platform, quick: bool, threads: usize) -> Vec<PreparedScenario> {
    PreparedScenario::prepare(load_suite(quick), platform, threads)
}

/// Figures 2 and 3: relative makespan and relative work of RATS (naive
/// parameters) vs HCPA on grillon. The campaign itself is declared as data
/// (an [`ExperimentSpec`]) and executed by the spec engine; only the
/// figure-shaped rendering lives here.
pub fn fig2_3(quick: bool, threads: usize) -> String {
    let suite = if quick {
        crate::spec::SuiteSpec::Mini
    } else {
        crate::spec::SuiteSpec::Paper
    };
    let mut spec = ExperimentSpec::naive("fig2_3-naive", "grillon", suite, BASE_SEED);
    spec.threads = Some(threads);
    let outcome = spec.run().expect("the built-in fig2_3 spec is valid");
    fig2_3_from_results(&outcome.clusters[0].results)
}

/// Figures 2 and 3 from already-obtained results (`results[0]` = HCPA
/// baseline) — e.g. the merged records of a sharded naive campaign.
pub fn fig2_3_from_results(results: &[AlgoResults]) -> String {
    render_relative_pair(
        "Figure 2 — relative makespan (naive parameters, grillon)",
        "Figure 3 — relative work (naive parameters, grillon)",
        results,
    )
}

/// Figure 4, Figure 5 and the tuned triple from a completed tuning sweep
/// (results in [`tuning::sweep_strategies`] order, e.g. merged from
/// shards). A pure renderer over [`tuning::sweep_tables`].
pub fn render_sweep(cluster: &str, results: &[AlgoResults]) -> String {
    let tables = tuning::sweep_tables(results);
    let n = results.first().map_or(0, |r| r.runs.len());
    let mut out = figures::render_delta_grid(
        &format!("Figure 4 — avg relative makespan of delta vs (mindelta, maxdelta), {cluster} ({n} DAGs)"),
        &tables.delta_grid,
    );
    out.push('\n');
    out.push_str(&figures::render_rho_curves(
        &format!("Figure 5 — avg relative makespan of time-cost vs minrho, {cluster} ({n} DAGs)"),
        &tables.rho_with_packing,
        &tables.rho_without_packing,
    ));
    let t = tables.tuned;
    let _ = writeln!(
        out,
        "tuned (Table IV style): (-{}, {}, {})",
        t.mindelta, t.maxdelta, t.minrho
    );
    out
}

/// Renders the makespan + work relative-series pair shared by Figures 2/3
/// and 6/7. `results[0]` must be the baseline. A **pure renderer**: the
/// results may come from an in-process campaign or from merged shard
/// records (`campaign merge --figures`) — the output is identical.
pub fn render_relative_pair(
    title_makespan: &str,
    title_work: &str,
    results: &[AlgoResults],
) -> String {
    let base_m = results[0].makespans();
    let base_w = results[0].works();
    let labels: Vec<&str> = results[1..].iter().map(|r| r.name.as_str()).collect();

    let rel_m: Vec<Vec<f64>> = results[1..]
        .iter()
        .map(|r| stats::relative(&r.makespans(), &base_m))
        .collect();
    let rel_w: Vec<Vec<f64>> = results[1..]
        .iter()
        .map(|r| stats::relative(&r.works(), &base_w))
        .collect();

    let mut out = String::new();
    let sorted_m: Vec<Vec<f64>> = rel_m
        .iter()
        .map(|v| stats::sorted_ascending(v.clone()))
        .collect();
    out.push_str(&figures::render_relative_series(
        title_makespan,
        &labels,
        &sorted_m,
        21,
    ));
    for (label, rel) in labels.iter().zip(&rel_m) {
        let _ = writeln!(
            out,
            "{}",
            figures::render_summary(label, stats::summarize(rel))
        );
    }
    for (label, algo) in labels.iter().zip(&results[1..]) {
        let by = stats::summarize_by_family(&algo.runs, &results[0].runs);
        let cells: Vec<String> = by
            .iter()
            .map(|(f, s)| format!("{} {:.3}", f.name(), s.mean_ratio))
            .collect();
        let _ = writeln!(out, "{label} by family: {}", cells.join(", "));
    }
    out.push('\n');
    let sorted_w: Vec<Vec<f64>> = rel_w
        .iter()
        .map(|v| stats::sorted_ascending(v.clone()))
        .collect();
    out.push_str(&figures::render_relative_series(
        title_work, &labels, &sorted_w, 21,
    ));
    for (label, rel) in labels.iter().zip(&rel_w) {
        let _ = writeln!(
            out,
            "{}",
            figures::render_summary(label, stats::summarize(rel))
        );
    }
    out
}

/// Figure 4: delta-strategy parameter surface for FFT DAGs on grillon.
pub fn fig4(quick: bool, threads: usize) -> String {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let prepared: Vec<PreparedScenario> = prepare(&platform, quick, threads)
        .into_iter()
        .filter(|p| p.scenario.family == AppFamily::Fft)
        .collect();
    let grid = tuning::TuningSet::new(&prepared, &platform, threads).delta_grid(threads);
    figures::render_delta_grid(
        &format!(
            "Figure 4 — avg relative makespan of delta vs (mindelta, maxdelta), \
             FFT on grillon ({} DAGs)",
            prepared.len()
        ),
        &grid,
    )
}

/// Figure 5: time-cost `minrho` curves (packing on/off) for irregular DAGs
/// on grillon.
pub fn fig5(quick: bool, threads: usize) -> String {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let prepared: Vec<PreparedScenario> = prepare(&platform, quick, threads)
        .into_iter()
        .filter(|p| p.scenario.family == AppFamily::Irregular)
        .collect();
    let (with_packing, without_packing) =
        tuning::TuningSet::new(&prepared, &platform, threads).rho_curves(threads);
    figures::render_rho_curves(
        &format!(
            "Figure 5 — avg relative makespan of time-cost vs minrho, \
             irregular DAGs on grillon ({} DAGs)",
            prepared.len()
        ),
        &with_packing,
        &without_packing,
    )
}

/// Table IV: tuned parameters per application family and cluster
/// (recomputed from scratch by sweeping the grids — the heavy artifact).
/// `thin` keeps every `thin`-th scenario of each family (1 = all).
pub fn table4(quick: bool, threads: usize, thin: usize) -> String {
    let mut out = format!(
        "# Table IV — tuned (mindelta, maxdelta, minrho) per family and cluster\
         {}\n",
        if thin > 1 {
            format!(" (thinned 1/{thin})")
        } else {
            String::new()
        }
    );
    let _ = write!(out, "{:<10}", "cluster");
    for f in AppFamily::PAPER {
        let _ = write!(out, "{:>22}", f.name());
    }
    out.push('\n');
    for platform in clusters() {
        let prepared = prepare(&platform, quick, threads);
        let _ = write!(out, "{:<10}", platform.name());
        for family in AppFamily::PAPER {
            let fam: Vec<PreparedScenario> = prepared
                .iter()
                .filter(|p| p.scenario.family == family)
                .step_by(thin.max(1))
                .cloned()
                .collect();
            if fam.is_empty() {
                let _ = write!(out, "{:>22}", "-");
                continue;
            }
            let t = tuning::tune_family(&fam, &platform, threads);
            let _ = write!(
                out,
                "{:>22}",
                format!("(-{}, {}, {})", t.mindelta, t.maxdelta, t.minrho)
            );
        }
        out.push('\n');
    }
    out
}

/// Runs the tuned campaign on one platform: every scenario evaluated with
/// its family's paper-tuned parameters. Returns `[HCPA, delta, time-cost]`.
pub fn tuned_campaign(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> Vec<AlgoResults> {
    let names = ["HCPA", "delta", "time-cost"];
    let runs = parallel_map(prepared, threads, |_, p| {
        let params = paper_tuned(p.scenario.family, platform.name());
        tuning::evaluate_tuned(p, platform, params)
    });
    (0..3)
        .map(|k| AlgoResults {
            name: names[k].to_string(),
            runs: runs.iter().map(|r| r[k]).collect(),
        })
        .collect()
}

/// Figures 6 and 7: the Figure 2/3 comparison with tuned parameters.
pub fn fig6_7(quick: bool, threads: usize) -> String {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let prepared = prepare(&platform, quick, threads);
    let results = tuned_campaign(&prepared, &platform, threads);
    render_relative_pair(
        "Figure 6 — relative makespan (tuned parameters, grillon)",
        "Figure 7 — relative work (tuned parameters, grillon)",
        &results,
    )
}

/// Tables V and VI: pairwise comparison counts and degradation-from-best of
/// the tuned algorithms on all three clusters. Returns `(table5, table6)`.
pub fn table5_6(quick: bool, threads: usize) -> (String, String) {
    let names = ["HCPA", "delta", "time-cost"];
    // makespans[cluster][algo][scenario]
    let mut makespans: Vec<Vec<Vec<f64>>> = Vec::new();
    for platform in clusters() {
        let prepared = prepare(&platform, quick, threads);
        let results = tuned_campaign(&prepared, &platform, threads);
        makespans.push(results.iter().map(AlgoResults::makespans).collect());
    }

    let mut t5 = String::from(
        "# Table V — pairwise better/equal/worse counts (tuned), chti / grillon / grelon\n",
    );
    for (ai, a) in names.iter().enumerate() {
        let columns: Vec<&str> = names
            .iter()
            .enumerate()
            .filter(|(bi, _)| *bi != ai)
            .map(|(_, n)| *n)
            .collect();
        let counts: Vec<[stats::PairwiseCount; 3]> = names
            .iter()
            .enumerate()
            .filter(|(bi, _)| *bi != ai)
            .map(|(bi, _)| {
                std::array::from_fn(|cl| stats::pairwise(&makespans[cl][ai], &makespans[cl][bi]))
            })
            .collect();
        let combined: [stats::PairwiseCount; 3] = std::array::from_fn(|cl| {
            let others: Vec<&[f64]> = (0..names.len())
                .filter(|&bi| bi != ai)
                .map(|bi| makespans[cl][bi].as_slice())
                .collect();
            stats::pairwise_combined(&makespans[cl][ai], &others)
        });
        t5.push_str(&figures::render_pairwise_block(
            a, &columns, &counts, &combined,
        ));
        t5.push('\n');
    }

    let mut t6 = String::from("# Table VI — average degradation from best (tuned)\n");
    for (cl, platform) in clusters().iter().enumerate() {
        let deg = stats::degradation_from_best(&makespans[cl]);
        t6.push_str(&figures::render_degradation(platform.name(), &names, &deg));
    }
    (t5, t6)
}

/// The full report: every artifact in paper order.
pub fn all(quick: bool, threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&table2());
    out.push('\n');
    out.push_str(&table3(quick));
    out.push('\n');
    out.push_str(&fig2_3(quick, threads));
    out.push('\n');
    out.push_str(&fig4(quick, threads));
    out.push('\n');
    out.push_str(&fig5(quick, threads));
    out.push('\n');
    out.push_str(&table4(quick, threads, 1));
    out.push('\n');
    out.push_str(&fig6_7(quick, threads));
    out.push('\n');
    let (t5, t6) = table5_6(quick, threads);
    out.push_str(&t5);
    out.push('\n');
    out.push_str(&t6);
    out
}

/// Minimal CLI parsing shared by the artifact binaries: `--quick` and
/// `--threads N`. `--thin N` (used by the Table IV sweep) keeps only every
/// N-th scenario of each family to bound the tuning cost; it is recorded in
/// the artifact header.
pub fn cli_opts() -> (bool, usize) {
    let (quick, threads, _) = cli_opts_thin();
    (quick, threads)
}

/// See [`cli_opts`]; also returns the `--thin` factor (default 1).
pub fn cli_opts_thin() -> (bool, usize, usize) {
    let mut quick = false;
    let mut threads = crate::runner::default_threads();
    let mut thin = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--thin" => {
                thin = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .expect("--thin needs a positive number");
            }
            other => {
                panic!("unknown argument {other:?} (expected --quick / --threads N / --thin N)")
            }
        }
    }
    (quick, threads, thin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_clusters() {
        let t = table2();
        for c in ["chti", "grillon", "grelon"] {
            assert!(t.contains(c));
        }
    }

    #[test]
    fn table3_quick_counts_families() {
        let t = table3(true);
        for f in ["FFT", "Strassen", "Layered", "Random"] {
            assert!(t.contains(f), "missing {f} in:\n{t}");
        }
    }

    #[test]
    fn fig2_3_quick_produces_both_figures() {
        let s = fig2_3(true, 2);
        assert!(s.contains("Figure 2"));
        assert!(s.contains("Figure 3"));
        assert!(s.contains("delta"));
        assert!(s.contains("time-cost"));
    }

    #[test]
    fn tuned_pipeline_quick_smoke() {
        let (t5, t6) = table5_6(true, 2);
        assert!(t5.contains("HCPA"));
        assert!(t6.contains("# not best"));
    }
}
