//! Quality ablations for the design alternatives (see DESIGN.md §5):
//! candidate policies, the combined strategy, area policies, and the
//! communication-inclusive critical path.
use rats_experiments::artifacts::{cli_opts_thin, load_suite};
use rats_experiments::campaign::PreparedScenario;
use rats_platform::{ClusterSpec, Platform};

fn main() {
    let (quick, threads, thin) = cli_opts_thin();
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let prepared: Vec<PreparedScenario> =
        PreparedScenario::prepare(load_suite(quick), &platform, threads)
            .into_iter()
            .step_by(thin)
            .collect();
    print!(
        "{}",
        rats_experiments::ablation::run(&prepared, &platform, threads)
    );
}
