//! Regenerates every table and figure of the paper in one run.
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    print!("{}", rats_experiments::artifacts::all(quick, threads));
}
