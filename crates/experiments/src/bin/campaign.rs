//! Runs declarative campaigns from TOML or JSON spec files — in one
//! process, or sharded across workers with durable resume and merge.
//!
//! ```text
//! campaign <spec.toml|spec.json> [--threads N]
//!     run the whole campaign in-process and print the report
//!
//! campaign run <spec> [--shard I/N] [--out DIR] [--threads N]
//!     execute one shard of the campaign's job grid, appending JSONL
//!     records to DIR (default ./shards). Re-running resumes: jobs already
//!     on disk are skipped.
//!
//! campaign merge <DIR|file.jsonl ...> [--figures]
//!     validate shard files (coverage, seed, spec hash) and print the
//!     report reassembled from them — bit-identical to the in-process run.
//!     --figures additionally renders the relative makespan/work series.
//!
//! campaign --print-template
//! ```

use std::path::PathBuf;

use rats_experiments::grid::ShardSpec;
use rats_experiments::shard::{collect_shard_files, merge_shards, run_shard};
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("campaign: {message}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign <spec.toml|spec.json> [--threads N]\n\
         \x20      campaign run <spec> [--shard I/N] [--out DIR] [--threads N]\n\
         \x20      campaign merge <DIR|file.jsonl ...> [--figures]\n\
         \x20      campaign --print-template"
    );
    std::process::exit(2);
}

fn load_spec(path: &str) -> ExperimentSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read spec {path:?}: {e}")));
    if path.ends_with(".json") {
        ExperimentSpec::from_json(&text)
    } else {
        ExperimentSpec::from_toml(&text)
    }
    .unwrap_or_else(|e| fail(e))
}

fn parse_shard(text: &str) -> ShardSpec {
    let parsed = text.split_once('/').and_then(|(i, n)| {
        Some(ShardSpec::new(
            i.trim().parse().ok()?,
            n.trim().parse().ok()?,
        ))
    });
    let shard = parsed
        .unwrap_or_else(|| fail(format_args!("--shard expects I/N (e.g. 0/4), got {text:?}")));
    shard
        .validate()
        .unwrap_or_else(|e| fail(format_args!("--shard {text}: {e}")));
    shard
}

fn parse_threads(value: Option<String>) -> usize {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| fail("--threads needs a positive number"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => usage(),
        Some("--print-template") => {
            let template = ExperimentSpec::naive(
                "naive-grillon",
                "grillon",
                SuiteSpec::Mini,
                rats_experiments::campaign::BASE_SEED,
            );
            print!("{}", template.to_toml());
        }
        Some("run") => {
            let mut spec_path = None;
            let mut out = PathBuf::from("shards");
            let mut shard = None;
            let mut threads = None;
            let mut rest = args[1..].iter().cloned();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--shard" => {
                        shard = Some(parse_shard(
                            &rest.next().unwrap_or_else(|| fail("--shard needs I/N")),
                        ))
                    }
                    "--out" => {
                        out = PathBuf::from(
                            rest.next()
                                .unwrap_or_else(|| fail("--out needs a directory")),
                        )
                    }
                    "--threads" => threads = Some(parse_threads(rest.next())),
                    other if spec_path.is_none() && !other.starts_with('-') => {
                        spec_path = Some(other.to_string())
                    }
                    other => fail(format_args!("unexpected argument {other:?}")),
                }
            }
            let mut spec = load_spec(&spec_path.unwrap_or_else(|| usage()));
            if let Some(shard) = shard {
                spec.shard = Some(shard);
            }
            let run = run_shard(&spec, &out, threads).unwrap_or_else(|e| fail(e));
            eprintln!(
                "campaign: shard {} — {} jobs executed, {} resumed from disk, {} total → {:?}",
                spec.shard.unwrap_or_default(),
                run.executed,
                run.skipped,
                run.total,
                run.path
            );
        }
        Some("merge") => {
            let mut paths: Vec<PathBuf> = Vec::new();
            let mut figures = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--figures" => figures = true,
                    other if other.starts_with('-') => {
                        fail(format_args!("unexpected argument {other:?}"))
                    }
                    other => {
                        let p = PathBuf::from(other);
                        if p.is_dir() {
                            paths.extend(collect_shard_files(&p).unwrap_or_else(|e| fail(e)));
                        } else {
                            paths.push(p);
                        }
                    }
                }
            }
            if paths.is_empty() {
                usage();
            }
            let outcome = merge_shards(&paths).unwrap_or_else(|e| fail(e));
            print!("{}", outcome.render());
            if figures {
                // A tuning sweep is recognized by its exact strategy list,
                // not by a length coincidence.
                let is_sweep = outcome.spec.strategies == rats_experiments::tuning::sweep_specs();
                for cluster in &outcome.clusters {
                    if is_sweep {
                        // A tuning sweep: render Figure 4/5 + tuned triple.
                        print!(
                            "\n{}",
                            rats_experiments::artifacts::render_sweep(
                                &cluster.cluster,
                                &cluster.results
                            )
                        );
                    } else if cluster.results.len() >= 2 {
                        print!(
                            "\n{}",
                            rats_experiments::artifacts::render_relative_pair(
                                &format!("relative makespan ({})", cluster.cluster),
                                &format!("relative work ({})", cluster.cluster),
                                &cluster.results,
                            )
                        );
                    }
                }
            }
        }
        Some(spec_path) if !spec_path.starts_with('-') => {
            let mut threads = None;
            let mut rest = args[1..].iter().cloned();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--threads" => threads = Some(parse_threads(rest.next())),
                    other => fail(format_args!("unexpected argument {other:?}")),
                }
            }
            let mut spec = load_spec(spec_path);
            if threads.is_some() {
                spec.threads = threads;
            }
            let outcome = spec.run().unwrap_or_else(|e| fail(e));
            print!("{}", outcome.render());
        }
        Some(_) => usage(),
    }
}
