//! Runs a declarative campaign from a TOML or JSON spec file.
//!
//! ```text
//! cargo run --release -p rats-experiments --bin campaign -- spec.toml
//! cargo run --release -p rats-experiments --bin campaign -- --print-template
//! ```

use rats_experiments::spec::{ExperimentSpec, SuiteSpec};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("campaign: {message}");
    std::process::exit(1);
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: campaign <spec.toml|spec.json> | --print-template");
        std::process::exit(2);
    });
    if arg == "--print-template" {
        let template = ExperimentSpec::naive(
            "naive-grillon",
            "grillon",
            SuiteSpec::Mini,
            rats_experiments::campaign::BASE_SEED,
        );
        print!("{}", template.to_toml());
        return;
    }
    let text = std::fs::read_to_string(&arg)
        .unwrap_or_else(|e| fail(format_args!("cannot read spec {arg:?}: {e}")));
    let spec = if arg.ends_with(".json") {
        ExperimentSpec::from_json(&text)
    } else {
        ExperimentSpec::from_toml(&text)
    }
    .unwrap_or_else(|e| fail(e));
    let outcome = spec.run().unwrap_or_else(|e| fail(e));
    print!("{}", outcome.render());
}
