//! Regenerates Figures 2 and 3 (naive-parameter RATS vs HCPA on grillon).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    print!("{}", rats_experiments::artifacts::fig2_3(quick, threads));
}
