//! Regenerates Figure 4 (delta parameter surface, FFT DAGs on grillon).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    print!("{}", rats_experiments::artifacts::fig4(quick, threads));
}
