//! Regenerates Figure 5 (minrho curves, irregular DAGs on grillon).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    print!("{}", rats_experiments::artifacts::fig5(quick, threads));
}
