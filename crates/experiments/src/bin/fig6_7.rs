//! Regenerates Figures 6 and 7 (tuned RATS vs HCPA on grillon).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    print!("{}", rats_experiments::artifacts::fig6_7(quick, threads));
}
