//! Regenerates the paper's Table II (cluster characteristics).
fn main() {
    print!("{}", rats_experiments::artifacts::table2());
}
