//! Regenerates the paper's Table III (DAG generation parameter grid).
fn main() {
    let (quick, _) = rats_experiments::artifacts::cli_opts();
    print!("{}", rats_experiments::artifacts::table3(quick));
}
