//! Regenerates Table IV (tuned parameters per family and cluster).
fn main() {
    let (quick, threads, thin) = rats_experiments::artifacts::cli_opts_thin();
    print!(
        "{}",
        rats_experiments::artifacts::table4(quick, threads, thin)
    );
}
