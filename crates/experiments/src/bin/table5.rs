//! Regenerates Table V (pairwise comparison of the tuned algorithms).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    let (t5, _) = rats_experiments::artifacts::table5_6(quick, threads);
    print!("{t5}");
}
