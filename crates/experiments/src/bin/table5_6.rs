//! Regenerates Tables V and VI together (one shared tuned campaign).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    let (t5, t6) = rats_experiments::artifacts::table5_6(quick, threads);
    println!("{t5}");
    println!("{t6}");
}
