//! Regenerates Table VI (average degradation from best).
fn main() {
    let (quick, threads) = rats_experiments::artifacts::cli_opts();
    let (_, t6) = rats_experiments::artifacts::table5_6(quick, threads);
    print!("{t6}");
}
