//! Campaign execution: schedule + simulate every scenario under every
//! mapping strategy, sharing the HCPA allocation (step one) per scenario.

use rats_daggen::suite::{AppFamily, Scenario};
use rats_platform::Platform;
use rats_sched::{allocate, AllocParams, Allocation, MappingStrategy, Scheduler};
use rats_sim::simulate;

use crate::runner::parallel_map;

/// The base seed of the reproduction campaign (any change regenerates a new
/// random population with the same statistics).
///
/// Sharding interplay: the seed *is* the scenario population, so every
/// shard file embeds it (in the manifest and in each record) and
/// [`merge_shards`](crate::shard::merge_shards) rejects mixed-seed inputs
/// — two workers that disagree on the seed ran two different campaigns,
/// and combining their records would silently misattribute results. The
/// `sharding` integration tests pin this with a negative test.
pub const BASE_SEED: u64 = 20080929; // CLUSTER 2008 opened Sept 29, Tsukuba

/// One (scenario, strategy) evaluation.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Scenario id within its suite.
    pub scenario_id: usize,
    /// Application family (for Table IV-style grouping).
    pub family: AppFamily,
    /// Simulated makespan in seconds (lower is better).
    pub makespan: f64,
    /// Total work in processor-seconds (lower is cheaper).
    pub work: f64,
}

/// All results of one strategy over a suite, aligned by scenario index.
#[derive(Debug, Clone)]
pub struct AlgoResults {
    /// Strategy display name (`"HCPA"`, `"delta"`, `"time-cost"`).
    pub name: String,
    /// One result per scenario, in suite order.
    pub runs: Vec<RunResult>,
}

impl AlgoResults {
    /// The makespans, in suite order.
    pub fn makespans(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.makespan).collect()
    }

    /// The works, in suite order.
    pub fn works(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.work).collect()
    }
}

/// A scenario with its step-one output precomputed for a given platform.
///
/// The allocation depends only on the DAG and the platform, so tuning
/// sweeps that evaluate dozens of mapping-parameter combinations reuse it —
/// exactly mirroring the paper's design where every strategy "relies on the
/// allocation procedure of HCPA".
#[derive(Debug, Clone)]
pub struct PreparedScenario {
    /// The underlying scenario.
    pub scenario: Scenario,
    /// HCPA allocation on the target platform.
    pub alloc: Allocation,
}

impl PreparedScenario {
    /// Allocates (step one) every scenario of a suite in parallel.
    pub fn prepare(suite: Vec<Scenario>, platform: &Platform, threads: usize) -> Vec<Self> {
        let allocs = parallel_map(&suite, threads, |_, s| {
            let _span = rats_telemetry::span(&rats_sched::telemetry::ALLOC_SECONDS);
            allocate(&s.dag, platform, AllocParams::default())
        });
        suite
            .into_iter()
            .zip(allocs)
            .map(|(scenario, alloc)| Self { scenario, alloc })
            .collect()
    }

    /// Maps (step two) with `strategy` and simulates; returns the result.
    pub fn evaluate(&self, platform: &Platform, strategy: MappingStrategy) -> RunResult {
        let schedule = Scheduler::new(platform)
            .strategy(strategy)
            .schedule_with_allocation(&self.scenario.dag, &self.alloc);
        let outcome = simulate(&self.scenario.dag, &schedule, platform);
        RunResult {
            scenario_id: self.scenario.id,
            family: self.scenario.family,
            makespan: outcome.makespan,
            work: outcome.total_work,
        }
    }
}

/// Evaluates each strategy over every prepared scenario — the one executor
/// behind campaigns, tuning sweeps and shard workers. Returns per-strategy
/// result vectors in scenario order (strategy-major, matching the job
/// grid's strategy axis).
pub fn evaluate_strategies(
    prepared: &[PreparedScenario],
    platform: &Platform,
    strategies: &[MappingStrategy],
    threads: usize,
) -> Vec<Vec<RunResult>> {
    strategies
        .iter()
        .map(|&strategy| parallel_map(prepared, threads, |_, p| p.evaluate(platform, strategy)))
        .collect()
}

/// Runs every strategy over every prepared scenario; returns one
/// [`AlgoResults`] per strategy, scenario-aligned.
pub fn run_campaign(
    prepared: &[PreparedScenario],
    platform: &Platform,
    strategies: &[MappingStrategy],
    threads: usize,
) -> Vec<AlgoResults> {
    strategies
        .iter()
        .zip(evaluate_strategies(prepared, platform, strategies, threads))
        .map(|(strategy, runs)| AlgoResults {
            name: strategy.name().to_string(),
            runs,
        })
        .collect()
}

/// The paper's three compared algorithms with *naive* RATS parameters
/// (section IV-B): `mindelta = maxdelta = 0.5`, `minrho = 0.5`,
/// packing allowed.
pub fn naive_strategies() -> Vec<MappingStrategy> {
    vec![
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::suite::mini_suite;
    use rats_model::CostParams;
    use rats_platform::ClusterSpec;

    #[test]
    fn campaign_runs_all_strategies_aligned() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared = PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 1), &platform, 2);
        let results = run_campaign(&prepared, &platform, &naive_strategies(), 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].name, "HCPA");
        for algo in &results {
            assert_eq!(algo.runs.len(), prepared.len());
            for (i, r) in algo.runs.iter().enumerate() {
                assert_eq!(r.scenario_id, prepared[i].scenario.id);
                assert!(r.makespan > 0.0);
                assert!(r.work > 0.0);
            }
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared = PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 2), &platform, 2);
        let a = run_campaign(&prepared, &platform, &naive_strategies(), 2);
        let b = run_campaign(&prepared, &platform, &naive_strategies(), 1);
        for (x, y) in a.iter().zip(&b) {
            for (rx, ry) in x.runs.iter().zip(&y.runs) {
                assert_eq!(rx.makespan, ry.makespan);
                assert_eq!(rx.work, ry.work);
            }
        }
    }
}
