//! Plain-text renderers for the paper's tables and figures.

use std::fmt::Write as _;

use crate::stats::{Degradation, PairwiseCount, RelativeSummary};
use crate::tuning::{MAXDELTA_GRID, MINDELTA_GRID, MINRHO_GRID};

/// Renders independently-sorted relative series side by side, down-sampled
/// to at most `rows` rows (Figures 2/3/6/7: x = DAGs sorted by value,
/// y = value relative to HCPA).
pub fn render_relative_series(
    title: &str,
    labels: &[&str],
    sorted_series: &[Vec<f64>],
    rows: usize,
) -> String {
    assert_eq!(labels.len(), sorted_series.len());
    let n = sorted_series.first().map_or(0, Vec::len);
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>8}", "rank");
    for l in labels {
        let _ = write!(out, "{l:>12}");
    }
    out.push('\n');
    let rows = rows.min(n).max(1);
    for r in 0..rows {
        // Sample evenly, always including the first and last rank.
        let i = if rows == 1 {
            0
        } else {
            r * (n - 1) / (rows - 1)
        };
        let _ = write!(out, "{i:>8}");
        for s in sorted_series {
            let _ = write!(out, "{:>12.4}", s[i]);
        }
        out.push('\n');
    }
    out
}

/// One-line summary of a relative series ("x% shorter in y% of scenarios").
pub fn render_summary(label: &str, s: RelativeSummary) -> String {
    format!(
        "{label}: mean relative = {:.4} ({:+.1}% vs baseline), better in {:.1}%, \
         equal in {:.1}% of {} scenarios",
        s.mean_ratio,
        (s.mean_ratio - 1.0) * 100.0,
        s.wins * 100.0,
        s.ties * 100.0,
        s.n
    )
}

/// Renders the Figure 4 surface: average relative makespan over the
/// `(mindelta, maxdelta)` grid.
pub fn render_delta_grid(title: &str, grid: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>10}", "mindelta");
    for maxd in MAXDELTA_GRID {
        let _ = write!(out, "  maxd={maxd:<5}");
    }
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let _ = write!(out, "{:>10}", format!("-{}", MINDELTA_GRID[i]));
        for v in row {
            let _ = write!(out, "{v:>11.4}");
        }
        out.push('\n');
    }
    out
}

/// Renders the Figure 5 curves: relative makespan vs `minrho`, with and
/// without packing.
pub fn render_rho_curves(title: &str, with_packing: &[f64], without_packing: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:>8} {:>16} {:>16}",
        "minrho", "packing", "no packing"
    );
    for (i, &rho) in MINRHO_GRID.iter().enumerate() {
        let _ = writeln!(
            out,
            "{rho:>8} {:>16.4} {:>16.4}",
            with_packing[i], without_packing[i]
        );
    }
    out
}

/// Renders one Table V block: `algo` vs each column algorithm on the three
/// clusters (`counts[col][cluster]`), plus the combined percentages.
pub fn render_pairwise_block(
    algo: &str,
    columns: &[&str],
    counts: &[[PairwiseCount; 3]],
    combined: &[PairwiseCount; 3],
) -> String {
    let total: [usize; 3] =
        std::array::from_fn(|c| combined[c].better + combined[c].equal + combined[c].worse);
    let mut out = String::new();
    let _ = writeln!(out, "{algo}  (cells: chti / grillon / grelon)");
    for (what, pick) in [("better", 0usize), ("equal", 1), ("worse", 2)] {
        let _ = write!(out, "  {what:>7}");
        for (ci, col) in columns.iter().enumerate() {
            let v: Vec<String> = (0..3)
                .map(|cl| {
                    let c = counts[ci][cl];
                    let x = [c.better, c.equal, c.worse][pick];
                    x.to_string()
                })
                .collect();
            let _ = write!(out, "  vs {col}: {:>17}", v.join(" / "));
        }
        let pct: Vec<String> = (0..3)
            .map(|cl| {
                let c = combined[cl];
                let x = [c.better, c.equal, c.worse][pick];
                format!("{:.1}", 100.0 * x as f64 / total[cl] as f64)
            })
            .collect();
        let _ = writeln!(out, "  combined%: {}", pct.join(" / "));
    }
    out
}

/// Renders one cluster's rows of Table VI.
pub fn render_degradation(cluster: &str, algos: &[&str], deg: &[Degradation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{cluster}:");
    let _ = write!(out, "  {:>22}", "avg over all exp.");
    for d in deg {
        let _ = write!(out, "{:>13.2}%", d.avg_over_all_pct);
    }
    out.push('\n');
    let _ = write!(out, "  {:>22}", "# not best");
    for d in deg {
        let _ = write!(out, "{:>14}", d.not_best);
    }
    out.push('\n');
    let _ = write!(out, "  {:>22}", "avg over # not best");
    for d in deg {
        let _ = write!(out, "{:>13.2}%", d.avg_over_not_best_pct);
    }
    out.push('\n');
    let header: Vec<&str> = algos.to_vec();
    format!("  algorithms: {}\n{out}", header.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    #[test]
    fn series_rendering_samples_rows() {
        let s = render_relative_series(
            "fig",
            &["delta", "time-cost"],
            &[vec![0.5, 0.8, 1.0, 1.2], vec![0.4, 0.7, 0.9, 1.1]],
            3,
        );
        assert!(s.contains("# fig"));
        assert!(s.contains("delta"));
        // first and last ranks always present
        assert!(s.contains("\n       0"));
        assert!(s.contains("\n       3"));
    }

    #[test]
    fn summary_line_mentions_percentages() {
        let line = render_summary("delta", summarize(&[0.8, 0.9, 1.0, 1.1]));
        assert!(line.contains("delta"));
        assert!(line.contains("-5.0%"));
    }

    #[test]
    fn grid_rendering_has_all_rows() {
        let grid = vec![vec![1.0; MAXDELTA_GRID.len()]; MINDELTA_GRID.len()];
        let s = render_delta_grid("fig4", &grid);
        assert_eq!(s.lines().count(), 2 + MINDELTA_GRID.len());
        assert!(s.contains("-0.75"));
    }

    #[test]
    fn rho_rendering_lists_all_rhos() {
        let v = vec![1.0; MINRHO_GRID.len()];
        let s = render_rho_curves("fig5", &v, &v);
        for rho in MINRHO_GRID {
            assert!(s.contains(&format!("{rho}")));
        }
    }

    #[test]
    fn degradation_rendering() {
        let deg = vec![Degradation {
            avg_over_all_pct: 26.19,
            not_best: 453,
            avg_over_not_best_pct: 61.03,
        }];
        let s = render_degradation("chti", &["HCPA"], &deg);
        assert!(s.contains("26.19%"));
        assert!(s.contains("453"));
    }
}
