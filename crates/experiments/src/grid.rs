//! The deterministic job grid: a campaign as a flat, addressable space of
//! `(cluster, scenario, strategy)` jobs.
//!
//! Sharding and resume need every unit of campaign work to have a stable
//! address. [`JobGrid`] fixes the bijection between the dense [`JobId`]
//! space and grid coordinates, and [`ShardSpec`] names a strided subset of
//! that space (`job % count == index`), so any shard of any campaign is
//! reproducible from the spec document alone — no coordination, no shared
//! state, and merged results are provably the same jobs a single process
//! would have run.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// One shard of a campaign's job grid: the jobs `j` with
/// `j % count == index`. The stride layout spreads clusters, scenarios and
/// strategies roughly evenly over shards, so per-shard cost stays balanced
/// without knowing the grid shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's shard number, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the campaign is split into (`>= 1`).
    pub count: usize,
}

impl Default for ShardSpec {
    /// The full campaign as a single shard (`0/1`).
    fn default() -> Self {
        Self { index: 0, count: 1 }
    }
}

impl ShardSpec {
    /// Shard `index` of `count`.
    pub fn new(index: usize, count: usize) -> Self {
        Self { index, count }
    }

    /// Whether this shard covers the whole grid.
    pub fn is_full(self) -> bool {
        self.count == 1
    }

    /// Checks the shard coordinates are coherent.
    pub fn validate(self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if self.index >= self.count {
            return Err(format!(
                "shard index {} out of range for {} shards",
                self.index, self.count
            ));
        }
        Ok(())
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl Serialize for ShardSpec {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("index", &self.index).insert("count", &self.count);
        t
    }
}

impl Deserialize for ShardSpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            index: v.field("index")?,
            count: v.field("count")?,
        })
    }
}

/// Dense address of one `(cluster, scenario, strategy)` evaluation within a
/// campaign — the durable job unit that shard files record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Decomposed coordinates of a [`JobId`]: indices into the spec's cluster
/// list, the suite's scenario order, and the spec's strategy list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCoords {
    /// Index into the spec's cluster list.
    pub cluster: usize,
    /// Scenario index in suite order (equals the scenario's dense id).
    pub scenario: usize,
    /// Index into the spec's strategy list.
    pub strategy: usize,
}

/// The dense job space of a campaign: cluster-major, then scenario, with
/// the strategy index innermost, so
/// `job = (cluster * scenarios + scenario) * strategies + strategy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobGrid {
    clusters: usize,
    scenarios: usize,
    strategies: usize,
}

impl JobGrid {
    /// A grid with the given axis sizes.
    ///
    /// # Panics
    /// Panics if any axis is empty (a validated spec never is).
    pub fn new(clusters: usize, scenarios: usize, strategies: usize) -> Self {
        assert!(
            clusters > 0 && scenarios > 0 && strategies > 0,
            "job grid axes must be non-empty ({clusters} x {scenarios} x {strategies})"
        );
        Self {
            clusters,
            scenarios,
            strategies,
        }
    }

    /// Number of clusters on the first axis.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Number of scenarios on the second axis.
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// Number of strategies on the third axis.
    pub fn strategies(&self) -> usize {
        self.strategies
    }

    /// Total number of jobs.
    pub fn len(&self) -> u64 {
        (self.clusters * self.scenarios * self.strategies) as u64
    }

    /// Whether the grid has no jobs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The job id of a coordinate triple.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn id(&self, c: JobCoords) -> JobId {
        assert!(
            c.cluster < self.clusters
                && c.scenario < self.scenarios
                && c.strategy < self.strategies,
            "coordinates {c:?} out of range for {self:?}"
        );
        JobId(((c.cluster * self.scenarios + c.scenario) * self.strategies + c.strategy) as u64)
    }

    /// The coordinates of a job id (inverse of [`Self::id`]).
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn coords(&self, id: JobId) -> JobCoords {
        assert!(id.0 < self.len(), "job {id} out of range for {self:?}");
        let i = id.0 as usize;
        JobCoords {
            cluster: i / (self.scenarios * self.strategies),
            scenario: (i / self.strategies) % self.scenarios,
            strategy: i % self.strategies,
        }
    }

    /// Whether `id` addresses a job of this grid.
    pub fn contains(&self, id: JobId) -> bool {
        id.0 < self.len()
    }

    /// The jobs of one shard, in increasing id order.
    pub fn shard_jobs(&self, shard: ShardSpec) -> impl Iterator<Item = JobId> {
        let len = self.len();
        (shard.index as u64..len)
            .step_by(shard.count.max(1))
            .map(JobId)
    }

    /// Number of jobs in one shard.
    pub fn shard_len(&self, shard: ShardSpec) -> u64 {
        let len = self.len();
        let index = shard.index as u64;
        if index >= len {
            0
        } else {
            1 + (len - 1 - index) / shard.count as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coords_bijection() {
        let grid = JobGrid::new(3, 9, 4);
        for j in 0..grid.len() {
            let c = grid.coords(JobId(j));
            assert_eq!(grid.id(c), JobId(j));
        }
        assert_eq!(grid.len(), 3 * 9 * 4);
        assert_eq!(
            grid.coords(JobId(0)),
            JobCoords {
                cluster: 0,
                scenario: 0,
                strategy: 0
            }
        );
        // Strategy is the innermost axis.
        assert_eq!(grid.coords(JobId(1)).strategy, 1);
        assert_eq!(grid.coords(JobId(4)).scenario, 1);
    }

    #[test]
    fn shards_partition_the_grid() {
        let grid = JobGrid::new(2, 9, 3);
        for count in 1..=5 {
            let mut seen = vec![0usize; grid.len() as usize];
            let mut total = 0u64;
            for index in 0..count {
                let shard = ShardSpec::new(index, count);
                let jobs: Vec<JobId> = grid.shard_jobs(shard).collect();
                assert_eq!(jobs.len() as u64, grid.shard_len(shard));
                total += jobs.len() as u64;
                for j in jobs {
                    seen[j.0 as usize] += 1;
                }
            }
            assert_eq!(total, grid.len());
            assert!(seen.iter().all(|&n| n == 1), "count {count}: {seen:?}");
        }
    }

    #[test]
    fn shard_validation() {
        assert!(ShardSpec::new(0, 1).validate().is_ok());
        assert!(ShardSpec::new(2, 3).validate().is_ok());
        assert!(ShardSpec::new(0, 0).validate().is_err());
        assert!(ShardSpec::new(3, 3).validate().is_err());
        assert!(ShardSpec::default().is_full());
        assert!(!ShardSpec::new(0, 2).is_full());
        assert_eq!(ShardSpec::new(1, 4).to_string(), "1/4");
    }

    #[test]
    fn shard_spec_round_trips() {
        let s = ShardSpec::new(2, 5);
        let v = s.serialize();
        assert_eq!(ShardSpec::deserialize(&v).unwrap(), s);
    }

    #[test]
    fn more_shards_than_jobs() {
        let grid = JobGrid::new(1, 2, 1);
        let shard = ShardSpec::new(3, 10);
        assert_eq!(grid.shard_len(shard), 0);
        assert_eq!(grid.shard_jobs(shard).count(), 0);
    }
}
