//! The paper's evaluation campaign (section IV), as a library plus one
//! binary per table/figure.
//!
//! * [`campaign`] — run HCPA and both RATS variants over scenario suites on
//!   the three Grid'5000 clusters, with per-scenario allocation sharing
//!   (all mapping strategies consume the *same* HCPA step-one output, as in
//!   the paper) and simulated-makespan evaluation;
//! * [`stats`] — relative makespan/work series (Figures 2/3/6/7), pairwise
//!   better/equal/worse counts (Table V) and degradation-from-best
//!   (Table VI);
//! * [`tuning`] — the `mindelta × maxdelta` grid (Figure 4), the `minrho`
//!   curve (Figure 5) and the per-family/per-cluster tuning (Table IV);
//! * [`figures`] — plain-text renderers that print each artifact in the
//!   paper's layout;
//! * [`runner`] — a deterministic scoped-thread parallel map;
//! * [`grid`] — every campaign as a flat, deterministic job-id space
//!   (`cluster × scenario × strategy`), the unit of sharding;
//! * [`record`] — the serialized per-job artifact ([`record::RunRecord`]);
//! * [`shard`] — the durable executor: run one shard to an append-only
//!   JSONL file (crash-resume included) and merge shard files back into
//!   the bit-identical in-process outcome.
//!
//! Binaries (`cargo run --release -p rats-experiments --bin <name>`):
//! `table2`, `table3`, `fig2_3`, `fig4`, `fig5`, `table4`, `fig6_7`,
//! `table5`, `table6`, `table5_6`, `all`, plus the beyond-paper quality
//! [`ablation`]s. Every binary accepts `--quick` to run on a reduced suite
//! (for smoke tests); full runs reproduce the paper's 557-configuration
//! campaign. `table4` and `ablation` also accept `--thin N`. The `campaign`
//! binary runs spec files — in-process, or sharded via its `run` and
//! `merge` subcommands.

pub mod ablation;
pub mod artifacts;
pub mod campaign;
pub mod figures;
pub mod grid;
pub mod record;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod stats;
pub mod telemetry;
pub mod tuning;

pub use campaign::{
    evaluate_strategies, run_campaign, AlgoResults, PreparedScenario, RunResult, BASE_SEED,
};
pub use grid::{JobCoords, JobGrid, JobId, ShardSpec};
pub use record::RunRecord;
pub use runner::{parallel_map, parallel_map_pooled, ParallelExec};
pub use shard::{
    collect_shard_files, merge_shards, read_shard_file, run_shard, run_shard_hooked,
    run_shard_journaled, run_shard_with_scenarios, shard_file_name, AllocSource, MergeError,
    ShardError, ShardHooks, ShardManifest, ShardRun,
};
pub use spec::{ExperimentSpec, SpecError, SpecOutcome, StrategySpec, SuiteSpec, SUITE_NAMES};
pub use stats::{degradation_from_best, pairwise, summarize, Degradation, PairwiseCount};
pub use tuning::{
    paper_tuned, sweep_specs, sweep_strategies, sweep_tables, tune_family, SweepTables,
    TunedParams, TuningSet,
};
