//! The durable per-job artifact: one completed `(cluster, scenario,
//! strategy)` evaluation as a single JSONL line.
//!
//! A [`RunRecord`] carries everything the merge step needs to re-address
//! the job (its [`JobId`](crate::grid::JobId) value and coordinates as
//! data), everything provenance needs (strategy parameters, workload seed),
//! and the two simulated numbers the paper reports. Floating-point values
//! survive the JSON round trip **bit-exactly** (the vendored writer emits
//! shortest round-trip representations), which is what makes sharded
//! execution provably equivalent to the in-process path.

use rats_daggen::suite::AppFamily;
use serde::{Deserialize, Serialize, Value};

use crate::campaign::RunResult;
use crate::spec::StrategySpec;

/// One completed campaign job, as written to a shard file.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Flat job id within the spec's [`JobGrid`](crate::grid::JobGrid).
    pub job: u64,
    /// Cluster name (redundant with the job coordinates; lets a record be
    /// read without the spec and lets merge cross-check addressing).
    pub cluster: String,
    /// The strategy evaluated, as plain data.
    pub strategy: StrategySpec,
    /// Scenario id within the suite.
    pub scenario_id: usize,
    /// Application family of the scenario.
    pub family: AppFamily,
    /// The campaign's workload seed. Shards generated under different seeds
    /// describe different populations and must never be merged.
    pub seed: u64,
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Total work in processor-seconds.
    pub work: f64,
}

impl RunRecord {
    /// Wraps one evaluation result with its job address and provenance.
    pub fn new(
        job: u64,
        cluster: &str,
        strategy: StrategySpec,
        seed: u64,
        result: &RunResult,
    ) -> Self {
        Self {
            job,
            cluster: cluster.to_string(),
            strategy,
            scenario_id: result.scenario_id,
            family: result.family,
            seed,
            makespan: result.makespan,
            work: result.work,
        }
    }

    /// The in-memory result this record serializes.
    pub fn result(&self) -> RunResult {
        RunResult {
            scenario_id: self.scenario_id,
            family: self.family,
            makespan: self.makespan,
            work: self.work,
        }
    }

    /// Renders the record as one compact JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let line = serde_json::to_string(self).expect("records always serialize");
        debug_assert!(!line.contains('\n'), "compact JSON is single-line");
        line
    }

    /// Parses a record from one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(line)
    }
}

impl Serialize for RunRecord {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("kind", "run")
            .insert("job", &self.job)
            .insert("cluster", &self.cluster)
            .insert("strategy", &self.strategy)
            .insert("scenario", &self.scenario_id)
            .insert("family", self.family.name())
            .insert("seed", &self.seed)
            .insert("makespan", &self.makespan)
            .insert("work", &self.work);
        t
    }
}

impl Deserialize for RunRecord {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind: String = v.field("kind")?;
        if kind != "run" {
            return Err(serde::Error::new(format!(
                "expected a run record, got kind `{kind}`"
            )));
        }
        let family_name: String = v.field("family")?;
        let family = AppFamily::from_name(&family_name).ok_or_else(|| {
            serde::Error::new(format!("unknown application family `{family_name}`"))
        })?;
        Ok(Self {
            job: v.field("job")?,
            cluster: v.field("cluster")?,
            strategy: v.field("strategy")?,
            scenario_id: v.field("scenario")?,
            family,
            seed: v.field("seed")?,
            makespan: v.field("makespan")?,
            work: v.field("work")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(makespan: f64, work: f64) -> RunRecord {
        RunRecord {
            job: 42,
            cluster: "grillon".into(),
            strategy: StrategySpec::Delta {
                mindelta: 0.25,
                maxdelta: 1.0,
            },
            scenario_id: 7,
            family: AppFamily::Irregular,
            seed: 20080929,
            makespan,
            work,
        }
    }

    #[test]
    fn jsonl_round_trip_is_bit_exact() {
        // Awkward floats included: non-terminating binary fractions,
        // subnormal-ish magnitudes, integral values.
        for (m, w) in [
            (1.0 / 3.0, 2.0 / 7.0),
            (1234.5678e-9, 9.999999999999999e301),
            (1.0, 128.0),
            (f64::MIN_POSITIVE, f64::EPSILON),
        ] {
            let rec = sample(m, w);
            let line = rec.to_jsonl();
            assert!(!line.contains('\n'));
            let back = RunRecord::from_jsonl(&line).unwrap();
            assert_eq!(back.makespan.to_bits(), rec.makespan.to_bits());
            assert_eq!(back.work.to_bits(), rec.work.to_bits());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn record_mirrors_run_result() {
        let result = RunResult {
            scenario_id: 3,
            family: AppFamily::Fft,
            makespan: 12.5,
            work: 99.0,
        };
        let rec = RunRecord::new(9, "chti", StrategySpec::Hcpa, 1, &result);
        let back = rec.result();
        assert_eq!(back.scenario_id, result.scenario_id);
        assert_eq!(back.family, result.family);
        assert_eq!(back.makespan.to_bits(), result.makespan.to_bits());
        assert_eq!(back.work.to_bits(), result.work.to_bits());
    }

    #[test]
    fn rejects_foreign_lines() {
        assert!(RunRecord::from_jsonl("{\"kind\":\"manifest\"}").is_err());
        assert!(RunRecord::from_jsonl("not json").is_err());
        let mut rec = sample(1.0, 2.0);
        rec.family = AppFamily::Layered;
        let line = rec.to_jsonl().replace("Layered", "Pyramidal");
        assert!(RunRecord::from_jsonl(&line).is_err());
    }
}
