//! Deterministic scoped-thread parallel map.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item on `threads` worker threads and returns the
/// results **in input order** (work is handed out by an atomic cursor, so
/// scheduling is dynamic but the output is deterministic).
///
/// # Panics
///
/// If `f` panics for some item, the panic payload is captured on the worker
/// and re-raised on the calling thread (for the lowest-indexed failing item,
/// so the surfaced failure is deterministic). Remaining items may or may not
/// have been evaluated by then; their results are discarded.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    type Caught<R> = Result<R, Box<dyn std::any::Any + Send>>;
    let threads = threads.max(1).min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Caught<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                let failed = result.is_err();
                tx.send((i, result)).expect("receiver alive");
                if failed {
                    // This worker stops; the others drain the remaining
                    // items, and the collector re-raises the payload.
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut out: Vec<Option<Caught<R>>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    // Re-raise the lowest-indexed captured panic (a panicked worker stops,
    // so later indices may be unvisited — that is fine, we are unwinding).
    if let Some(slot) = out.iter_mut().find(|r| matches!(r, Some(Err(_)))) {
        let Some(Err(payload)) = slot.take() else {
            unreachable!("just matched Some(Err)")
        };
        resume_unwind(payload);
    }
    out.into_iter()
        .map(|r| {
            r.expect("every index visited exactly once")
                .expect("panics re-raised above")
        })
        .collect()
}

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 8, |_, &x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5];
        assert_eq!(parallel_map(&items, 64, |_, &x| x), vec![5]);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let items: Vec<usize> = (0..16).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |_, &x| {
                if x == 7 {
                    panic!("boom on item {x}");
                }
                x
            })
        }))
        .expect_err("the worker panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(message.contains("boom on item 7"), "got: {message}");
    }

    #[test]
    fn lowest_index_panic_wins() {
        let items: Vec<usize> = (0..32).collect();
        for _ in 0..8 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(&items, 8, |_, &x| {
                    if x % 2 == 1 {
                        panic!("odd {x}");
                    }
                    x
                })
            }))
            .expect_err("panics must propagate");
            let message = caught
                .downcast_ref::<String>()
                .expect("formatted panic message");
            assert!(message.contains("odd 1"), "got: {message}");
        }
    }
}
