//! Deterministic scoped-thread parallel map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item on `threads` worker threads and returns the
/// results **in input order** (work is handed out by an atomic cursor, so
/// scheduling is dynamic but the output is deterministic).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                tx.send((i, f(i, &items[i]))).expect("receiver alive");
            });
        }
        drop(tx);
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 8, |_, &x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5];
        assert_eq!(parallel_map(&items, 64, |_, &x| x), vec![5]);
    }
}
