//! Deterministic scoped-thread parallel map.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item on `threads` worker threads and returns the
/// results **in input order** (work is handed out by an atomic cursor, so
/// scheduling is dynamic but the output is deterministic).
///
/// # Panics
///
/// If `f` panics for some item, the panic payload is captured on the worker
/// and re-raised on the calling thread (for the lowest-indexed failing item,
/// so the surfaced failure is deterministic). Remaining items may or may not
/// have been evaluated by then; their results are discarded.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    type Caught<R> = Result<R, Box<dyn std::any::Any + Send>>;
    let threads = threads.max(1).min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Caught<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                let failed = result.is_err();
                tx.send((i, result)).expect("receiver alive");
                if failed {
                    // This worker stops; the others drain the remaining
                    // items, and the collector re-raises the payload.
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut out: Vec<Option<Caught<R>>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    // Re-raise the lowest-indexed captured panic (a panicked worker stops,
    // so later indices may be unvisited — that is fine, we are unwinding).
    if let Some(slot) = out.iter_mut().find(|r| matches!(r, Some(Err(_)))) {
        let Some(Err(payload)) = slot.take() else {
            unreachable!("just matched Some(Err)")
        };
        resume_unwind(payload);
    }
    out.into_iter()
        .map(|r| {
            r.expect("every index visited exactly once")
                .expect("panics re-raised above")
        })
        .collect()
}

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A resident execution pool that can run `n` index-addressed tasks.
///
/// [`parallel_map`] spins up scoped threads per call — the right trade for
/// a batch CLI, the wrong one for a long-lived server where every request
/// would pay thread spawn/teardown. Implementations of this trait (e.g. the
/// `rats-server` worker fleet) keep threads resident and multiplex batches
/// from many concurrent campaigns over them.
///
/// # Contract
///
/// `run_indexed(n, task)` must call `task(i)` exactly once for every
/// `i in 0..n`, return only after all calls have completed, and propagate a
/// task panic to the caller — re-raising the payload of the lowest-indexed
/// failing call, matching [`parallel_map`]'s deterministic failure surface.
pub trait ParallelExec: Sync {
    /// Runs `task(i)` for every `i in 0..n`; blocks until all complete.
    fn run_indexed(&self, n: usize, task: &(dyn Fn(usize) + Sync));
}

/// [`parallel_map`] that executes on a resident [`ParallelExec`] pool when
/// one is supplied, and falls back to the scoped-thread path otherwise.
///
/// With a pool, `threads` is ignored — the pool's resident width governs
/// parallelism. Output order and panic semantics are identical either way,
/// so results are bit-identical regardless of which path ran (pinned by
/// the `pooled_matches_scoped` test below).
pub fn parallel_map_pooled<T, R, F>(
    pool: Option<&dyn ParallelExec>,
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let Some(pool) = pool else {
        return parallel_map(items, threads, f);
    };
    let slots: Vec<std::sync::Mutex<Option<R>>> = (0..items.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    pool.run_indexed(items.len(), &|i| {
        let result = f(i, &items[i]);
        *slots[i].lock().expect("result slot never poisoned") = Some(result);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot never poisoned")
                .expect("pool ran every index")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 8, |_, &x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5];
        assert_eq!(parallel_map(&items, 64, |_, &x| x), vec![5]);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let items: Vec<usize> = (0..16).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |_, &x| {
                if x == 7 {
                    panic!("boom on item {x}");
                }
                x
            })
        }))
        .expect_err("the worker panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(message.contains("boom on item 7"), "got: {message}");
    }

    /// A deliberately serial pool: the contract only requires every index
    /// to run before `run_indexed` returns.
    struct SerialPool;
    impl ParallelExec for SerialPool {
        fn run_indexed(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
            for i in 0..n {
                task(i);
            }
        }
    }

    #[test]
    fn pooled_matches_scoped() {
        let items: Vec<usize> = (0..64).collect();
        let scoped = parallel_map_pooled(None, &items, 4, |i, &x| i * 1000 + x);
        let pooled = parallel_map_pooled(Some(&SerialPool), &items, 4, |i, &x| i * 1000 + x);
        assert_eq!(scoped, pooled);
    }

    #[test]
    fn pooled_empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map_pooled(Some(&SerialPool), &items, 8, |_, &x| x).is_empty());
    }

    #[test]
    fn lowest_index_panic_wins() {
        let items: Vec<usize> = (0..32).collect();
        for _ in 0..8 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(&items, 8, |_, &x| {
                    if x % 2 == 1 {
                        panic!("odd {x}");
                    }
                    x
                })
            }))
            .expect_err("panics must propagate");
            let message = caught
                .downcast_ref::<String>()
                .expect("formatted panic message");
            assert!(message.contains("odd 1"), "got: {message}");
        }
    }
}
