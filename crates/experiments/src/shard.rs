//! Shard execution and merge: the durable, resumable campaign executor.
//!
//! A worker owns one [`ShardSpec`] of a spec's job grid and appends to a
//! JSONL shard file in an output directory:
//!
//! ```text
//! <dir>/<name>-shard-<index>-of-<count>.jsonl
//!   line 1:  manifest — normalized spec + spec hash, seed, shard
//!            coordinates, worker threads
//!   line 2…: one RunRecord per completed job, in job-id order
//! ```
//!
//! The file is append-only: restarting a worker re-reads it, validates the
//! manifest against the spec, skips every job already on disk and resumes
//! with the rest — crash recovery needs no extra bookkeeping. A partially
//! written trailing line (the signature of a crash mid-append) is dropped
//! and re-executed.
//!
//! [`merge_shards`] reads any set of shard files, refuses mixed seeds or
//! mismatched spec hashes, verifies full grid coverage (no holes, no
//! conflicting duplicates) and reassembles the exact [`SpecOutcome`] the
//! in-process path ([`ExperimentSpec::run`]) produces — bit for bit, which
//! the `sharding` integration tests and the CI smoke step pin.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use rats_daggen::suite::Scenario;
use rats_journal::{Event, Journal};
use rats_platform::Platform;
use rats_sched::{allocate, AllocParams, Allocation, MappingStrategy};
use serde::{Deserialize, Serialize, Value};

use crate::campaign::{AlgoResults, PreparedScenario};
use crate::grid::{JobId, ShardSpec};
use crate::record::RunRecord;
use crate::runner::{default_threads, parallel_map_pooled, ParallelExec};
use crate::spec::{ClusterResults, ExperimentSpec, SpecError, SpecOutcome};

/// Number of jobs evaluated between appends — the upper bound on work a
/// crash can lose per cluster batch.
const WRITE_CHUNK: usize = 256;

/// Current shard-file format version.
const FORMAT: u64 = 1;

/// First line of every shard file: what was run, under which addressing.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// The campaign, normalized (no `shard`, no `threads`).
    pub spec: ExperimentSpec,
    /// [`ExperimentSpec::spec_hash`] of `spec` — merge's compatibility key.
    pub spec_hash: String,
    /// Workload seed (also inside `spec`; kept explicit so mixed-seed
    /// merges are rejected with a precise error).
    pub seed: u64,
    /// Which shard of the grid this file covers.
    pub shard: ShardSpec,
    /// Worker threads used (provenance only — results do not depend on it).
    pub threads: usize,
}

impl Serialize for ShardManifest {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("kind", "manifest")
            .insert("format", &FORMAT)
            .insert("spec", &self.spec)
            .insert("spec_hash", &self.spec_hash)
            .insert("seed", &self.seed)
            .insert("shard", &self.shard)
            .insert("threads", &self.threads);
        t
    }
}

impl Deserialize for ShardManifest {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind: String = v.field("kind")?;
        if kind != "manifest" {
            return Err(serde::Error::new(format!(
                "expected a manifest line, got kind `{kind}`"
            )));
        }
        let format: u64 = v.field("format")?;
        if format != FORMAT {
            return Err(serde::Error::new(format!(
                "unsupported shard file format {format} (this build reads {FORMAT})"
            )));
        }
        Ok(Self {
            spec: v.field("spec")?,
            spec_hash: v.field("spec_hash")?,
            seed: v.field("seed")?,
            shard: v.field("shard")?,
            threads: v.field("threads")?,
        })
    }
}

/// Outcome of one [`run_shard`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// The shard file written or extended.
    pub path: PathBuf,
    /// Jobs evaluated by this call.
    pub executed: usize,
    /// Jobs already on disk and skipped (resume).
    pub skipped: usize,
    /// Total jobs in the shard.
    pub total: usize,
    /// Whether a [`ShardHooks::cancel`] flag stopped the run early. The
    /// records written so far are committed (a later run resumes past
    /// them); `executed` counts only what landed.
    pub aborted: bool,
}

/// A warm source of step-one (HCPA) allocations, keyed by cluster name and
/// scenario id.
///
/// `allocate` is a pure function of `(dag, platform)`, so a cached
/// allocation is bit-identical to a recomputed one — serving it from a
/// resident cache changes wall-clock, never results. A long-lived server
/// implements this over an LRU keyed by population + cluster shape;
/// [`run_shard_hooked`] consults it before step one and publishes whatever
/// it had to compute.
pub trait AllocSource: Sync {
    /// A cached allocation for `scenario` on `cluster`, if present.
    fn lookup(&self, cluster: &str, scenario: usize) -> Option<Allocation>;
    /// Offers a freshly computed allocation to the cache.
    fn publish(&self, cluster: &str, scenario: usize, alloc: &Allocation);
}

/// Optional extension points for [`run_shard_hooked`]. `Default` is the
/// plain batch behaviour ([`run_shard_journaled`] passes it).
#[derive(Default)]
pub struct ShardHooks<'a> {
    /// Called once per record, immediately after its line (and trailing
    /// newline) is appended to the shard file — the streaming hook a
    /// server uses to push results to a client as they land. Records
    /// arrive in job-id order within the run; resumed (skipped) jobs are
    /// not replayed through this hook.
    pub on_record: Option<&'a mut dyn FnMut(&RunRecord)>,
    /// Warm step-one allocations (see [`AllocSource`]).
    pub allocs: Option<&'a dyn AllocSource>,
    /// Resident execution pool; `None` uses per-call scoped threads.
    pub pool: Option<&'a dyn ParallelExec>,
    /// Cooperative cancellation, checked between write chunks: when set,
    /// the run returns early with [`ShardRun::aborted`] instead of an
    /// error, leaving a resumable shard file behind.
    pub cancel: Option<&'a std::sync::atomic::AtomicBool>,
}

/// Errors from executing a shard.
#[derive(Debug)]
pub enum ShardError {
    /// The spec is not executable.
    Spec(SpecError),
    /// Filesystem failure.
    Io(String),
    /// An existing shard file is unreadable (bad manifest or a corrupt
    /// record line that is not the final one).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// Parse failure detail.
        message: String,
    },
    /// An existing shard file belongs to a different campaign, seed or
    /// shard coordinate.
    ManifestMismatch {
        /// Offending file.
        path: PathBuf,
        /// What differed.
        message: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spec(e) => write!(f, "{e}"),
            ShardError::Io(m) => write!(f, "shard io error: {m}"),
            ShardError::Corrupt {
                path,
                line,
                message,
            } => write!(f, "corrupt shard file {path:?} line {line}: {message}"),
            ShardError::ManifestMismatch { path, message } => {
                write!(f, "shard file {path:?} does not match the spec: {message}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<SpecError> for ShardError {
    fn from(e: SpecError) -> Self {
        ShardError::Spec(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e.to_string())
    }
}

/// The file name a spec's shard writes: `<name>-shard-<i>-of-<n>.jsonl`
/// (non-portable characters in the campaign name replaced by `-`).
pub fn shard_file_name(spec: &ExperimentSpec) -> String {
    let shard = spec.shard.unwrap_or_default();
    let name: String = spec
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("{name}-shard-{}-of-{}.jsonl", shard.index, shard.count)
}

/// Executes the spec's shard (default: the full grid as shard `0/1`),
/// appending one JSONL record per job to `dir/`[`shard_file_name`]. Jobs
/// already recorded are skipped, so re-running after a crash resumes where
/// the file ends. `threads` overrides the spec's thread count; the value
/// actually used is recorded in the manifest.
pub fn run_shard(
    spec: &ExperimentSpec,
    dir: &Path,
    threads: Option<usize>,
) -> Result<ShardRun, ShardError> {
    run_shard_with_scenarios(spec, dir, threads, None)
}

/// [`run_shard`] with an externally supplied scenario population.
///
/// `scenarios`, when given, must be exactly what
/// [`ExperimentSpec::scenarios`] would generate for this spec (same suite,
/// same seed — ids dense and in order); dispatch workers pass the
/// population loaded from a shared cache so one generation serves every
/// worker process. `None` regenerates locally.
pub fn run_shard_with_scenarios(
    spec: &ExperimentSpec,
    dir: &Path,
    threads: Option<usize>,
    scenarios: Option<&[Scenario]>,
) -> Result<ShardRun, ShardError> {
    run_shard_journaled(spec, dir, threads, scenarios, None)
}

/// [`run_shard_with_scenarios`] with campaign-journal instrumentation.
///
/// When a [`Journal`] is supplied the run emits `job-started` on entry
/// (after resume bookkeeping, so `skipped` is the resumed count),
/// `chunk-done` after each committed write batch, and `job-finished` with
/// the wall-clock total — the timing events `campaign status` turns into
/// ETA and throughput. `None` runs exactly as before; journaling is
/// provenance, not control flow, and never fails the shard.
pub fn run_shard_journaled(
    spec: &ExperimentSpec,
    dir: &Path,
    threads: Option<usize>,
    scenarios: Option<&[Scenario]>,
    journal: Option<&mut Journal>,
) -> Result<ShardRun, ShardError> {
    run_shard_hooked(
        spec,
        dir,
        threads,
        scenarios,
        journal,
        ShardHooks::default(),
    )
}

/// [`run_shard_journaled`] with server extension points ([`ShardHooks`]):
/// per-record streaming, warm step-one allocations, a resident execution
/// pool and cooperative cancellation.
///
/// Every hook is wall-clock-only: the shard file bytes, the record values
/// and the journal decision stream are bit-identical to the default batch
/// path (warm allocations are pure-function cache hits, the pool preserves
/// [`parallel_map`](crate::runner::parallel_map)'s ordered collection).
/// Cancellation is the one behavioural addition — it commits the chunks
/// written so far and returns [`ShardRun::aborted`].
pub fn run_shard_hooked(
    spec: &ExperimentSpec,
    dir: &Path,
    threads: Option<usize>,
    scenarios: Option<&[Scenario]>,
    mut journal: Option<&mut Journal>,
    mut hooks: ShardHooks<'_>,
) -> Result<ShardRun, ShardError> {
    spec.validate()?;
    if let Some(provided) = scenarios {
        let expected = spec.suite.len();
        if provided.len() != expected {
            return Err(ShardError::Spec(SpecError::Invalid(format!(
                "provided scenario population has {} scenarios, suite `{}` needs {expected}",
                provided.len(),
                spec.suite.name()
            ))));
        }
        if let Some((i, s)) = provided.iter().enumerate().find(|(i, s)| s.id != *i) {
            return Err(ShardError::Spec(SpecError::Invalid(format!(
                "provided scenario population has id {} at position {i} (ids must be dense)",
                s.id
            ))));
        }
    }
    let shard = spec.shard.unwrap_or_default();
    let threads = threads
        .or(spec.threads)
        .unwrap_or_else(default_threads)
        .max(1);
    let manifest = ShardManifest {
        spec: spec.normalized(),
        spec_hash: spec.spec_hash(),
        seed: spec.seed,
        shard,
        threads,
    };

    fs::create_dir_all(dir)?;
    let path = dir.join(shard_file_name(spec));
    let existing = if path.exists() {
        match read_shard_file(&path) {
            Ok(loaded) => Some(loaded),
            // A crash between creating the file and committing the manifest
            // line leaves an empty or single-unterminated-line file. No
            // record can have landed yet, so start the shard over instead
            // of wedging every future resume on the corrupt line 1.
            Err(ShardError::Corrupt { line: 1, .. })
                if fs::read_to_string(&path)
                    .map(|text| text.lines().count() <= 1)
                    .unwrap_or(false) =>
            {
                None
            }
            Err(e) => return Err(e),
        }
    } else {
        None
    };
    let mut done: HashSet<u64> = HashSet::new();
    if let Some(loaded) = existing {
        if loaded.manifest.seed != manifest.seed {
            return Err(ShardError::ManifestMismatch {
                path,
                message: format!(
                    "seed {} on disk vs {} in the spec",
                    loaded.manifest.seed, manifest.seed
                ),
            });
        }
        if loaded.manifest.spec_hash != manifest.spec_hash {
            return Err(ShardError::ManifestMismatch {
                path,
                message: format!(
                    "spec hash {} on disk vs {}",
                    loaded.manifest.spec_hash, manifest.spec_hash
                ),
            });
        }
        if loaded.manifest.shard != shard {
            return Err(ShardError::ManifestMismatch {
                path,
                message: format!("shard {} on disk vs {shard}", loaded.manifest.shard),
            });
        }
        if loaded.truncated_tail {
            // Drop the uncommitted line a crash left behind; its job re-runs.
            rewrite_without_tail(&path, &loaded)?;
        }
        done.extend(loaded.records.iter().map(|r| r.job));
    } else {
        // The manifest line lands via a temp file + rename, so no crash
        // window can leave an empty or torn-line-1 shard file behind: a
        // shard file either does not exist yet or starts with a complete
        // manifest. (The truncated-single-line recovery above remains for
        // files written by older builds.) The rename also truncates any
        // pre-manifest wreck this resume just decided to restart.
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            writeln!(
                file,
                "{}",
                serde_json::to_string(&manifest).expect("manifests always serialize")
            )?;
        }
        fs::rename(&tmp, &path)?;
    }

    let grid = spec.grid();
    let todo: Vec<JobId> = grid
        .shard_jobs(shard)
        .filter(|j| !done.contains(&j.0))
        .collect();
    let total = grid.shard_len(shard) as usize;
    let skipped = total - todo.len();
    let started = std::time::Instant::now();
    if let Some(j) = journal.as_deref_mut() {
        j.emit(Event::JobStarted {
            job: shard.index as u64,
            total: total as u64,
            skipped: skipped as u64,
        });
    }
    if todo.is_empty() {
        if let Some(j) = journal.as_deref_mut() {
            j.emit(Event::JobFinished {
                job: shard.index as u64,
                executed: 0,
                skipped: skipped as u64,
                elapsed_ms: started.elapsed().as_millis() as u64,
            });
        }
        crate::telemetry::JOBS_COMPLETED.inc();
        crate::telemetry::RESUMED.add(skipped as u64);
        if rats_telemetry::enabled() {
            crate::telemetry::JOB_SECONDS.observe(started.elapsed().as_secs_f64());
        }
        return Ok(ShardRun {
            path,
            executed: 0,
            skipped,
            total,
            aborted: false,
        });
    }

    let strategies: Vec<MappingStrategy> = spec
        .strategies
        .iter()
        .map(|s| s.to_strategy().map_err(SpecError::Strategy))
        .collect::<Result<_, _>>()?;
    let generated: Vec<Scenario>;
    let scenarios: &[Scenario] = match scenarios {
        Some(provided) => provided,
        None => {
            generated = spec.scenarios();
            &generated
        }
    };
    assert_eq!(
        scenarios.len(),
        grid.scenarios(),
        "suite size constants out of sync with the generators"
    );

    let cancelled = || {
        hooks
            .cancel
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    };
    let mut file = fs::OpenOptions::new().append(true).open(&path)?;
    let mut executed = 0usize;
    let mut aborted = false;
    'clusters: for (ci, cluster_name) in spec.clusters.iter().enumerate() {
        if cancelled() {
            aborted = true;
            break;
        }
        let cluster_jobs: Vec<JobId> = todo
            .iter()
            .copied()
            .filter(|&j| grid.coords(j).cluster == ci)
            .collect();
        if cluster_jobs.is_empty() {
            continue;
        }
        let platform = Platform::from_spec(&spec.cluster_spec(cluster_name)?);
        // Step one (the shared HCPA allocation) only for the scenarios this
        // shard actually touches on this cluster — served warm when an
        // [`AllocSource`] already holds them (the allocation is a pure
        // function of DAG and platform, so a cache hit is bit-identical to
        // recomputation), computed and published otherwise.
        let needed: Vec<usize> = {
            let set: HashSet<usize> = cluster_jobs
                .iter()
                .map(|&j| grid.coords(j).scenario)
                .collect();
            let mut v: Vec<usize> = set.into_iter().collect();
            v.sort_unstable();
            v
        };
        let mut allocs: Vec<Option<Allocation>> = match hooks.allocs {
            Some(src) => needed
                .iter()
                .map(|&n| src.lookup(cluster_name, n))
                .collect(),
            None => needed.iter().map(|_| None).collect(),
        };
        let misses: Vec<usize> = (0..needed.len()).filter(|&i| allocs[i].is_none()).collect();
        let miss_refs: Vec<&Scenario> = misses.iter().map(|&i| &scenarios[needed[i]]).collect();
        let computed = parallel_map_pooled(hooks.pool, &miss_refs, threads, |_, s| {
            let _span = rats_telemetry::span(&rats_sched::telemetry::ALLOC_SECONDS);
            allocate(&s.dag, &platform, AllocParams::default())
        });
        for (&i, alloc) in misses.iter().zip(computed) {
            if let Some(src) = hooks.allocs {
                src.publish(cluster_name, needed[i], &alloc);
            }
            allocs[i] = Some(alloc);
        }
        let prepared: BTreeMap<usize, PreparedScenario> = needed
            .iter()
            .zip(allocs)
            .map(|(&n, alloc)| {
                (
                    n,
                    PreparedScenario {
                        scenario: scenarios[n].clone(),
                        alloc: alloc.expect("every miss filled above"),
                    },
                )
            })
            .collect();
        for chunk in cluster_jobs.chunks(WRITE_CHUNK) {
            if cancelled() {
                aborted = true;
                break 'clusters;
            }
            let chunk_started = std::time::Instant::now();
            let results = parallel_map_pooled(hooks.pool, chunk, threads, |_, &job| {
                let c = grid.coords(job);
                prepared[&c.scenario].evaluate(&platform, strategies[c.strategy])
            });
            for (&job, result) in chunk.iter().zip(&results) {
                let c = grid.coords(job);
                let record = RunRecord::new(
                    job.0,
                    cluster_name,
                    spec.strategies[c.strategy].clone(),
                    spec.seed,
                    result,
                );
                writeln!(file, "{}", record.to_jsonl())?;
                executed += 1;
                if let Some(cb) = hooks.on_record.as_deref_mut() {
                    cb(&record);
                }
            }
            if let Some(j) = journal.as_deref_mut() {
                j.emit(Event::ChunkDone {
                    job: shard.index as u64,
                    jobs: chunk.len() as u64,
                    elapsed_ms: chunk_started.elapsed().as_millis() as u64,
                });
            }
            crate::telemetry::RECORDS.add(chunk.len() as u64);
            if rats_telemetry::enabled() {
                crate::telemetry::CHUNK_SECONDS.observe(chunk_started.elapsed().as_secs_f64());
            }
        }
    }
    if let Some(j) = journal {
        if !aborted {
            j.emit(Event::JobFinished {
                job: shard.index as u64,
                executed: executed as u64,
                skipped: skipped as u64,
                elapsed_ms: started.elapsed().as_millis() as u64,
            });
        }
    }
    if !aborted {
        crate::telemetry::JOBS_COMPLETED.inc();
        crate::telemetry::RESUMED.add(skipped as u64);
        if rats_telemetry::enabled() {
            crate::telemetry::JOB_SECONDS.observe(started.elapsed().as_secs_f64());
        }
    }
    Ok(ShardRun {
        path,
        executed,
        skipped,
        total,
        aborted,
    })
}

/// A parsed shard file.
#[derive(Debug, Clone)]
pub struct ShardFile {
    /// The manifest on line 1.
    pub manifest: ShardManifest,
    /// Every well-formed record.
    pub records: Vec<RunRecord>,
    /// Whether an unparseable **final** line was dropped (crash mid-append).
    pub truncated_tail: bool,
}

/// Reads and validates one shard file. A corrupt **or unterminated** final
/// line is tolerated (reported via [`ShardFile::truncated_tail`]);
/// corruption anywhere else is an error.
///
/// A record only counts once its trailing newline hit the disk: the record
/// bytes and the `\n` are separate writes, so a crash between them leaves a
/// line that parses but is not yet committed — accepting it would make the
/// next append glue two records onto one line.
pub fn read_shard_file(path: &Path) -> Result<ShardFile, ShardError> {
    let text = fs::read_to_string(path).map_err(|e| ShardError::Io(format!("{path:?}: {e}")))?;
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let corrupt = |line: usize, message: String| ShardError::Corrupt {
        path: path.to_path_buf(),
        line,
        message,
    };
    let first = lines
        .first()
        .ok_or_else(|| corrupt(1, "empty shard file".into()))?;
    if lines.len() == 1 && !terminated {
        return Err(corrupt(1, "unterminated manifest line".into()));
    }
    let manifest: ShardManifest =
        serde_json::from_str(first).map_err(|e| corrupt(1, e.to_string()))?;
    if manifest.spec.spec_hash() != manifest.spec_hash {
        return Err(corrupt(
            1,
            format!(
                "manifest hash {} does not match its own spec ({})",
                manifest.spec_hash,
                manifest.spec.spec_hash()
            ),
        ));
    }
    let mut records = Vec::with_capacity(lines.len().saturating_sub(1));
    let mut truncated_tail = false;
    for (i, line) in lines.iter().enumerate().skip(1) {
        let is_final = i + 1 == lines.len();
        if is_final && !terminated {
            // A crash mid-append leaves exactly one uncommitted final line.
            truncated_tail = true;
            continue;
        }
        match RunRecord::from_jsonl(line) {
            Ok(r) => records.push(r),
            Err(_) if is_final => truncated_tail = true,
            Err(e) => return Err(corrupt(i + 1, e.to_string())),
        }
    }
    Ok(ShardFile {
        manifest,
        records,
        truncated_tail,
    })
}

/// Rewrites a shard file from its parsed good lines, dropping the partial
/// tail. The rewrite goes through a temp file + rename so a second crash
/// cannot corrupt the journal further.
fn rewrite_without_tail(path: &Path, loaded: &ShardFile) -> Result<(), ShardError> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        writeln!(
            file,
            "{}",
            serde_json::to_string(&loaded.manifest).expect("manifests always serialize")
        )?;
        for r in &loaded.records {
            writeln!(file, "{}", r.to_jsonl())?;
        }
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Errors from merging shard files.
#[derive(Debug)]
pub enum MergeError {
    /// No input files.
    NoShards,
    /// A shard file failed to read or parse (see [`ShardError`]).
    Shard(ShardError),
    /// The embedded spec is not executable (e.g. a hand-edited manifest).
    Spec(SpecError),
    /// Two shard files were generated under different workload seeds —
    /// they describe different scenario populations and must never be
    /// combined.
    SeedMismatch {
        /// Seed of the first file read.
        first: u64,
        /// The conflicting seed.
        other: u64,
        /// File carrying the conflicting seed.
        path: PathBuf,
    },
    /// Two shard files hash to different campaigns.
    SpecMismatch {
        /// Hash of the first file read.
        first: String,
        /// The conflicting hash.
        other: String,
        /// File carrying the conflicting hash.
        path: PathBuf,
    },
    /// A record contradicts the grid addressing or an identical job id
    /// already merged with different numbers.
    RecordMismatch {
        /// Offending job id.
        job: u64,
        /// What disagreed.
        message: String,
    },
    /// The merged set does not cover the whole grid.
    MissingJobs {
        /// How many jobs are absent.
        missing: u64,
        /// The first few absent ids (diagnostics).
        first: Vec<u64>,
        /// Grid size, for context.
        total: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard files to merge"),
            MergeError::Shard(e) => write!(f, "{e}"),
            MergeError::Spec(e) => write!(f, "merged spec is invalid: {e}"),
            MergeError::SeedMismatch { first, other, path } => write!(
                f,
                "refusing to merge mixed seeds: {path:?} was generated under seed {other}, \
                 other shards under seed {first} (different seeds are different populations)"
            ),
            MergeError::SpecMismatch { first, other, path } => write!(
                f,
                "refusing to merge different campaigns: {path:?} has spec hash {other}, \
                 other shards have {first}"
            ),
            MergeError::RecordMismatch { job, message } => {
                write!(f, "record for job #{job} is inconsistent: {message}")
            }
            MergeError::MissingJobs {
                missing,
                first,
                total,
            } => write!(
                f,
                "incomplete campaign: {missing} of {total} jobs missing (first absent ids: \
                 {first:?}) — run the remaining shards or resume the crashed ones"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<ShardError> for MergeError {
    fn from(e: ShardError) -> Self {
        MergeError::Shard(e)
    }
}

impl From<SpecError> for MergeError {
    fn from(e: SpecError) -> Self {
        MergeError::Spec(e)
    }
}

/// All `*.jsonl` files of a directory, name-sorted (the natural input to
/// [`merge_shards`] when every worker wrote to one output directory).
pub fn collect_shard_files(dir: &Path) -> Result<Vec<PathBuf>, MergeError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir)
        .map_err(|e| MergeError::Shard(ShardError::Io(format!("{dir:?}: {e}"))))?;
    for entry in entries {
        let entry = entry.map_err(|e| MergeError::Shard(ShardError::Io(e.to_string())))?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Merges shard files back into the exact in-process campaign outcome.
///
/// Validation: all manifests must agree on seed and spec hash (shard
/// *granularity* may differ — a 2-way and a 3-way split of the same
/// campaign address the same job ids and merge fine); every record must sit
/// at its grid address; duplicates must agree bit-for-bit; and the union
/// must cover the grid with no holes. The returned [`SpecOutcome`] is
/// bit-identical to what [`ExperimentSpec::run`] returns for the same
/// (normalized) spec.
pub fn merge_shards(paths: &[PathBuf]) -> Result<SpecOutcome, MergeError> {
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        files.push((path.clone(), read_shard_file(path)?));
    }
    let Some((_, reference)) = files.first() else {
        return Err(MergeError::NoShards);
    };
    let spec = reference.manifest.spec.clone();
    let seed = reference.manifest.seed;
    let hash = reference.manifest.spec_hash.clone();
    for (path, file) in &files {
        if file.manifest.seed != seed {
            return Err(MergeError::SeedMismatch {
                first: seed,
                other: file.manifest.seed,
                path: path.clone(),
            });
        }
        if file.manifest.spec_hash != hash {
            return Err(MergeError::SpecMismatch {
                first: hash,
                other: file.manifest.spec_hash.clone(),
                path: path.clone(),
            });
        }
    }
    spec.validate()?;
    let grid = spec.grid();

    let mut by_job: BTreeMap<u64, RunRecord> = BTreeMap::new();
    for (_, file) in &files {
        for record in &file.records {
            let mismatch = |message: String| MergeError::RecordMismatch {
                job: record.job,
                message,
            };
            if record.job >= grid.len() {
                return Err(mismatch(format!(
                    "job id out of range for the {}-job grid",
                    grid.len()
                )));
            }
            if record.seed != seed {
                return Err(mismatch(format!(
                    "record seed {} differs from the campaign seed {seed}",
                    record.seed
                )));
            }
            let c = grid.coords(JobId(record.job));
            if spec.clusters[c.cluster] != record.cluster {
                return Err(mismatch(format!(
                    "cluster `{}` does not match grid address `{}`",
                    record.cluster, spec.clusters[c.cluster]
                )));
            }
            if spec.strategies[c.strategy] != record.strategy {
                return Err(mismatch(format!(
                    "strategy {:?} does not match grid address {:?}",
                    record.strategy, spec.strategies[c.strategy]
                )));
            }
            if c.scenario != record.scenario_id {
                return Err(mismatch(format!(
                    "scenario id {} does not match grid address {}",
                    record.scenario_id, c.scenario
                )));
            }
            if let Some(existing) = by_job.get(&record.job) {
                let identical = existing.makespan.to_bits() == record.makespan.to_bits()
                    && existing.work.to_bits() == record.work.to_bits()
                    && existing.family == record.family;
                if !identical {
                    return Err(mismatch(
                        "duplicate job with different results (mixed campaign outputs?)".into(),
                    ));
                }
            } else {
                by_job.insert(record.job, record.clone());
            }
        }
    }

    let total = grid.len();
    if (by_job.len() as u64) < total {
        let first: Vec<u64> = (0..total)
            .filter(|j| !by_job.contains_key(j))
            .take(5)
            .collect();
        return Err(MergeError::MissingJobs {
            missing: total - by_job.len() as u64,
            first,
            total,
        });
    }

    let strategies: Vec<MappingStrategy> = spec
        .strategies
        .iter()
        .map(|s| s.to_strategy().map_err(SpecError::Strategy))
        .collect::<Result<_, SpecError>>()?;
    let mut clusters = Vec::with_capacity(spec.clusters.len());
    for (ci, cluster) in spec.clusters.iter().enumerate() {
        let mut results = Vec::with_capacity(strategies.len());
        for (si, strategy) in strategies.iter().enumerate() {
            let runs = (0..grid.scenarios())
                .map(|n| {
                    by_job[&grid
                        .id(crate::grid::JobCoords {
                            cluster: ci,
                            scenario: n,
                            strategy: si,
                        })
                        .0]
                        .result()
                })
                .collect();
            results.push(AlgoResults {
                name: strategy.name().to_string(),
                runs,
            });
        }
        clusters.push(ClusterResults {
            cluster: cluster.clone(),
            results,
        });
    }
    Ok(SpecOutcome { spec, clusters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SuiteSpec;

    #[test]
    fn shard_file_names_are_filesystem_safe() {
        let mut spec = ExperimentSpec::naive("a b/c", "chti", SuiteSpec::Mini, 1);
        spec.shard = Some(ShardSpec::new(1, 2));
        assert_eq!(shard_file_name(&spec), "a-b-c-shard-1-of-2.jsonl");
        spec.shard = None;
        assert_eq!(shard_file_name(&spec), "a-b-c-shard-0-of-1.jsonl");
    }

    #[test]
    fn manifest_round_trips() {
        let spec = ExperimentSpec::naive("m", "grillon", SuiteSpec::Mini, 5);
        let manifest = ShardManifest {
            spec: spec.normalized(),
            spec_hash: spec.spec_hash(),
            seed: spec.seed,
            shard: ShardSpec::new(1, 3),
            threads: 4,
        };
        let line = serde_json::to_string(&manifest).unwrap();
        let back: ShardManifest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn merge_of_nothing_is_an_error() {
        assert!(matches!(merge_shards(&[]), Err(MergeError::NoShards)));
    }
}
