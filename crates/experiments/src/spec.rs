//! Campaigns as data: a serde-backed experiment specification.
//!
//! A campaign used to be re-implemented imperatively inside every
//! `src/bin/` target. [`ExperimentSpec`] turns it into a document — which
//! suite, which clusters, which mapping strategies, which seed — that
//! round-trips through TOML and JSON and executes with [`ExperimentSpec::run`].
//! The `campaign` binary runs a spec file from disk:
//!
//! ```text
//! cargo run --release -p rats-experiments --bin campaign -- spec.toml
//! ```
//!
//! A TOML spec looks like:
//!
//! ```text
//! name = "naive-grillon"
//! seed = 20080929
//! suite = "mini"              # or "paper" (the 557-configuration set)
//! clusters = ["grillon"]
//!
//! [[strategies]]
//! kind = "hcpa"
//!
//! [[strategies]]
//! kind = "delta"
//! mindelta = 0.5
//! maxdelta = 0.5
//!
//! [[strategies]]
//! kind = "time-cost"
//! minrho = 0.5
//! allow_packing = true
//! ```

use std::fmt;

use rats_daggen::suite::{self, Scenario};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};
use rats_sched::{MappingStrategy, StrategyError};
use rats_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize, Value};

use crate::campaign::{run_campaign, AlgoResults, PreparedScenario};
use crate::grid::{JobGrid, ShardSpec};
use crate::runner::default_threads;
use crate::stats;

/// Which scenario population a campaign runs on.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SuiteSpec {
    /// The paper's full 557-configuration population.
    Paper,
    /// The smoke-test population (one scenario per family).
    #[default]
    Mini,
    /// A synthesized population: declarative DAG families and generated
    /// cluster topologies (see the `rats-workloads` crate). Serialized as
    /// `suite = "custom"` plus top-level `[[families]]` / `[[topologies]]`
    /// tables.
    Custom(WorkloadSpec),
}

/// Every suite name a spec document may carry. The parse error for an
/// unknown suite enumerates this list, so it can never go stale against
/// the accepted set.
pub const SUITE_NAMES: [&str; 3] = ["paper", "mini", "custom"];

impl SuiteSpec {
    fn as_str(&self) -> &'static str {
        match self {
            SuiteSpec::Paper => "paper",
            SuiteSpec::Mini => "mini",
            SuiteSpec::Custom(_) => "custom",
        }
    }

    /// Number of scenarios the suite generates — known without generating a
    /// single DAG, so job grids and merge coverage checks stay cheap.
    pub fn len(&self) -> usize {
        match self {
            SuiteSpec::Paper => suite::SUITE_COUNT,
            SuiteSpec::Mini => suite::MINI_COUNT,
            SuiteSpec::Custom(w) => w.len(),
        }
    }

    /// Suites are never empty (validation rejects empty custom specs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The suite's population tag: `paper`/`mini`, or `custom-<8 hex>` —
    /// content-derived, so two different custom workloads never share a
    /// tag. Population cache files record and validate it.
    pub fn name(&self) -> String {
        match self {
            SuiteSpec::Custom(w) => w.tag(),
            other => other.as_str().to_string(),
        }
    }

    /// A plain-text population census (counts per family, generated
    /// clusters) computed from the spec alone — what `campaign describe`
    /// prints.
    pub fn census(&self) -> String {
        match self {
            SuiteSpec::Paper => format!(
                "population: {} scenarios (paper Table III)\n  \
                 Layered    {:>6} scenarios\n  Random     {:>6} scenarios\n  \
                 FFT        {:>6} scenarios\n  Strassen   {:>6} scenarios\n\
                 clusters: none generated (paper presets only)\n",
                suite::SUITE_COUNT,
                suite::LAYERED_COUNT,
                suite::IRREGULAR_COUNT,
                suite::FFT_COUNT,
                suite::STRASSEN_COUNT
            ),
            SuiteSpec::Mini => format!(
                "population: {} scenarios (mini smoke suite, all four paper \
                 families)\nclusters: none generated (paper presets only)\n",
                suite::MINI_COUNT
            ),
            SuiteSpec::Custom(w) => w.census(),
        }
    }
}

/// A mapping strategy as plain data (`kind` tag plus parameters), the
/// serializable mirror of [`MappingStrategy`].
#[derive(Debug, Clone, PartialEq)]
pub enum StrategySpec {
    /// The non-adopting baseline.
    Hcpa,
    /// RATS delta (structural pack/stretch bounds).
    Delta {
        /// Pack bound magnitude.
        mindelta: f64,
        /// Stretch bound.
        maxdelta: f64,
    },
    /// RATS time-cost (work-efficiency driven).
    TimeCost {
        /// Minimal acceptable work ratio for stretching.
        minrho: f64,
        /// Whether packing is allowed.
        allow_packing: bool,
    },
    /// The combined extension (delta bounds + estimate validation).
    Combined {
        /// Pack bound magnitude.
        mindelta: f64,
        /// Stretch bound.
        maxdelta: f64,
        /// Minimal acceptable work ratio for stretching.
        minrho: f64,
    },
}

impl StrategySpec {
    /// Validates and converts to the executable strategy.
    pub fn to_strategy(&self) -> Result<MappingStrategy, StrategyError> {
        match *self {
            StrategySpec::Hcpa => Ok(MappingStrategy::Hcpa),
            StrategySpec::Delta { mindelta, maxdelta } => {
                MappingStrategy::try_rats_delta(mindelta, maxdelta)
            }
            StrategySpec::TimeCost {
                minrho,
                allow_packing,
            } => MappingStrategy::try_rats_time_cost(minrho, allow_packing),
            StrategySpec::Combined {
                mindelta,
                maxdelta,
                minrho,
            } => MappingStrategy::try_rats_combined(mindelta, maxdelta, minrho),
        }
    }

    /// The data form of an executable strategy (inverse of
    /// [`Self::to_strategy`]).
    pub fn from_strategy(s: MappingStrategy) -> Self {
        match s {
            MappingStrategy::Hcpa => StrategySpec::Hcpa,
            MappingStrategy::RatsDelta(p) => StrategySpec::Delta {
                mindelta: p.mindelta,
                maxdelta: p.maxdelta,
            },
            MappingStrategy::RatsTimeCost(p) => StrategySpec::TimeCost {
                minrho: p.minrho,
                allow_packing: p.allow_packing,
            },
            MappingStrategy::RatsCombined(p) => StrategySpec::Combined {
                mindelta: p.delta.mindelta,
                maxdelta: p.delta.maxdelta,
                minrho: p.minrho,
            },
        }
    }
}

impl Serialize for StrategySpec {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        match *self {
            StrategySpec::Hcpa => {
                t.insert("kind", "hcpa");
            }
            StrategySpec::Delta { mindelta, maxdelta } => {
                t.insert("kind", "delta")
                    .insert("mindelta", &mindelta)
                    .insert("maxdelta", &maxdelta);
            }
            StrategySpec::TimeCost {
                minrho,
                allow_packing,
            } => {
                t.insert("kind", "time-cost")
                    .insert("minrho", &minrho)
                    .insert("allow_packing", &allow_packing);
            }
            StrategySpec::Combined {
                mindelta,
                maxdelta,
                minrho,
            } => {
                t.insert("kind", "combined")
                    .insert("mindelta", &mindelta)
                    .insert("maxdelta", &maxdelta)
                    .insert("minrho", &minrho);
            }
        }
        t
    }
}

impl Deserialize for StrategySpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind: String = v.field("kind")?;
        match kind.as_str() {
            "hcpa" => Ok(StrategySpec::Hcpa),
            "delta" => Ok(StrategySpec::Delta {
                mindelta: v.field("mindelta")?,
                maxdelta: v.field("maxdelta")?,
            }),
            "time-cost" => Ok(StrategySpec::TimeCost {
                minrho: v.field("minrho")?,
                allow_packing: v.field_or("allow_packing", true)?,
            }),
            "combined" => Ok(StrategySpec::Combined {
                mindelta: v.field("mindelta")?,
                maxdelta: v.field("maxdelta")?,
                minrho: v.field("minrho")?,
            }),
            other => Err(serde::Error::new(format!(
                "unknown strategy kind `{other}` (expected hcpa/delta/time-cost/combined)"
            ))),
        }
    }
}

/// A declarative campaign: who runs (strategies), on what (suite × cost
/// model × seed), and where (clusters).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Campaign name (recorded in the report header).
    pub name: String,
    /// Workload generation seed.
    pub seed: u64,
    /// Scenario population.
    pub suite: SuiteSpec,
    /// Cluster names; each must be a paper cluster (`chti`, `grillon`,
    /// `grelon`).
    pub clusters: Vec<String>,
    /// The strategies to compare; the first is the baseline of the
    /// relative statistics.
    pub strategies: Vec<StrategySpec>,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Restrict execution to one shard of the job grid (`None` = the full
    /// campaign). Serialized as a `[shard]` table with `index` and `count`;
    /// excluded (like `threads`) from [`Self::spec_hash`], so every shard of
    /// a campaign shares one hash.
    pub shard: Option<ShardSpec>,
}

impl ExperimentSpec {
    /// The paper's naive three-strategy comparison on one cluster.
    pub fn naive(name: &str, cluster: &str, suite: SuiteSpec, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            seed,
            suite,
            clusters: vec![cluster.to_string()],
            strategies: vec![
                StrategySpec::Hcpa,
                StrategySpec::Delta {
                    mindelta: 0.5,
                    maxdelta: 0.5,
                },
                StrategySpec::TimeCost {
                    minrho: 0.5,
                    allow_packing: true,
                },
            ],
            threads: None,
            shard: None,
        }
    }

    /// Parses a spec from TOML text.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        toml::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))
    }

    /// Renders the spec as TOML.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("specs always serialize")
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs always serialize")
    }

    /// Validates the executable parts: strategies, the suite (custom
    /// workloads validate their families and topology generators) and
    /// cluster names — paper presets or clusters the suite generates.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.strategies.is_empty() {
            return Err(SpecError::Invalid(
                "a spec needs at least one strategy".into(),
            ));
        }
        if self.clusters.is_empty() {
            return Err(SpecError::Invalid(
                "a spec needs at least one cluster".into(),
            ));
        }
        for s in &self.strategies {
            s.to_strategy().map_err(SpecError::Strategy)?;
        }
        if let SuiteSpec::Custom(w) = &self.suite {
            w.validate().map_err(SpecError::Invalid)?;
        }
        for c in &self.clusters {
            self.cluster_spec(c)?;
        }
        if let Some(shard) = self.shard {
            shard.validate().map_err(SpecError::Invalid)?;
        }
        Ok(())
    }

    /// Resolves a cluster name: the paper presets (`chti`, `grillon`,
    /// `grelon`) plus — for custom suites — every cluster the workload's
    /// topology generators emit.
    pub fn cluster_spec(&self, name: &str) -> Result<ClusterSpec, SpecError> {
        if let Some(c) = ClusterSpec::paper_clusters()
            .into_iter()
            .find(|c| c.name == name)
        {
            return Ok(c);
        }
        if let SuiteSpec::Custom(w) = &self.suite {
            if let Some(c) = w.clusters().into_iter().find(|c| c.name == name) {
                return Ok(c);
            }
        }
        Err(SpecError::UnknownCluster(name.to_string()))
    }

    /// The job grid this spec enumerates: `clusters × scenarios ×
    /// strategies`, with stable [`JobId`](crate::grid::JobId) addressing.
    pub fn grid(&self) -> JobGrid {
        JobGrid::new(self.clusters.len(), self.suite.len(), self.strategies.len())
    }

    /// The spec with execution-only fields (`shard`, `threads`) cleared —
    /// what shard manifests embed and [`Self::spec_hash`] digests.
    pub fn normalized(&self) -> Self {
        let mut spec = self.clone();
        spec.shard = None;
        spec.threads = None;
        spec
    }

    /// A stable content hash (FNV-1a 64, hex) of the normalized spec.
    /// Shards of the same campaign share it; merge refuses to combine shard
    /// files whose hashes differ.
    pub fn spec_hash(&self) -> String {
        let text = serde_json::to_string(&self.normalized()).expect("specs always serialize");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Generates the spec's scenario population (deterministic in
    /// `(suite, seed)`). Workers that share a population cache (see the
    /// `rats-dispatch` crate) load the serialized form instead of calling
    /// this — the two paths produce bit-identical scenarios.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let cost = CostParams::paper();
        match &self.suite {
            SuiteSpec::Paper => suite::paper_suite(&cost, self.seed),
            SuiteSpec::Mini => suite::mini_suite(&cost, self.seed),
            SuiteSpec::Custom(w) => w.generate(&cost, self.seed),
        }
    }

    /// Executes the campaign **in-process**: generate the suite, share the
    /// HCPA allocation per scenario, evaluate every strategy on every
    /// cluster. A spec that selects a proper shard is rejected — partial
    /// grids go through the shard executor
    /// ([`shard::run_shard`](crate::shard::run_shard)), whose JSONL output
    /// merges back to exactly what this method returns.
    pub fn run(&self) -> Result<SpecOutcome, SpecError> {
        self.validate()?;
        if self.shard.is_some_and(|s| !s.is_full()) {
            return Err(SpecError::Invalid(format!(
                "spec selects shard {} — run it with the shard executor \
                 (`campaign run`), or clear `shard` for in-process execution",
                self.shard.expect("just checked")
            )));
        }
        let threads = self.threads.unwrap_or_else(default_threads);
        let strategies: Vec<MappingStrategy> = self
            .strategies
            .iter()
            .map(|s| s.to_strategy().map_err(SpecError::Strategy))
            .collect::<Result<_, _>>()?;
        // Generate the population once; per-cluster preparation only
        // re-allocates (step one), it never regenerates DAGs.
        let scenarios = self.scenarios();
        let mut clusters = Vec::new();
        for name in &self.clusters {
            let platform = Platform::from_spec(&self.cluster_spec(name)?);
            let prepared = PreparedScenario::prepare(scenarios.clone(), &platform, threads);
            let results = run_campaign(&prepared, &platform, &strategies, threads);
            clusters.push(ClusterResults {
                cluster: name.clone(),
                results,
            });
        }
        Ok(SpecOutcome {
            spec: self.clone(),
            clusters,
        })
    }
}

impl Serialize for ExperimentSpec {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", &self.name)
            .insert("seed", &self.seed)
            .insert("suite", self.suite.as_str())
            .insert("clusters", &self.clusters)
            .insert("strategies", &self.strategies);
        if let SuiteSpec::Custom(w) = &self.suite {
            // The workload's fields flatten into the spec document
            // (`[[families]]`, `[[topologies]]`, `total`), keeping the TOML
            // form within the flat table/array-of-tables subset.
            if let Value::Table(fields) = w.serialize() {
                for (key, value) in fields {
                    t.insert(&key, &value);
                }
            }
        }
        if let Some(threads) = self.threads {
            t.insert("threads", &threads);
        }
        if let Some(shard) = &self.shard {
            t.insert("shard", shard);
        }
        t
    }
}

impl Deserialize for ExperimentSpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let suite_name: String = v.field_or("suite", "mini".to_string())?;
        let suite = match suite_name.as_str() {
            "paper" => SuiteSpec::Paper,
            "mini" => SuiteSpec::Mini,
            "custom" => SuiteSpec::Custom(WorkloadSpec::deserialize(v)?),
            other => {
                return Err(serde::Error::new(format!(
                    "unknown suite `{other}` (expected one of: {})",
                    SUITE_NAMES.join(", ")
                )))
            }
        };
        Ok(Self {
            name: v.field("name")?,
            seed: v.field_or("seed", crate::campaign::BASE_SEED)?,
            suite,
            clusters: v.field("clusters")?,
            strategies: v.field("strategies")?,
            threads: v.field_or("threads", None)?,
            shard: v.field_or("shard", None)?,
        })
    }
}

/// One cluster's scenario-aligned results, one [`AlgoResults`] per
/// strategy (spec order).
#[derive(Debug, Clone)]
pub struct ClusterResults {
    /// Cluster name.
    pub cluster: String,
    /// Per-strategy results, aligned with the spec's strategy order.
    pub results: Vec<AlgoResults>,
}

/// The executed campaign: the spec plus every cluster's results.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// The spec that produced these numbers.
    pub spec: ExperimentSpec,
    /// One entry per requested cluster, in spec order.
    pub clusters: Vec<ClusterResults>,
}

impl SpecOutcome {
    /// A plain-text report: per cluster, each strategy's mean relative
    /// makespan and win rate against the spec's first (baseline) strategy.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "# campaign `{}` — suite {}, seed {}\n",
            self.spec.name,
            self.spec.suite.name(),
            self.spec.seed
        );
        for cr in &self.clusters {
            let _ = writeln!(
                out,
                "\n[{}] {} scenarios, baseline {}",
                cr.cluster,
                cr.results.first().map_or(0, |r| r.runs.len()),
                cr.results.first().map_or("-", |r| r.name.as_str())
            );
            let base = cr.results[0].makespans();
            for algo in &cr.results[1..] {
                let rel = stats::relative(&algo.makespans(), &base);
                let s = stats::summarize(&rel);
                let _ = writeln!(
                    out,
                    "  {:<12} mean rel makespan {:.4} ({:+.1} %), better in {:.1} % of scenarios",
                    algo.name,
                    s.mean_ratio,
                    (s.mean_ratio - 1.0) * 100.0,
                    s.wins * 100.0
                );
            }
        }
        out
    }
}

/// Errors from parsing, validating or running a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document failed to parse or deserialize.
    Parse(String),
    /// The document parsed but is not executable.
    Invalid(String),
    /// A strategy's parameters were rejected.
    Strategy(StrategyError),
    /// A cluster name is not a known preset.
    UnknownCluster(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(m) => write!(f, "spec parse error: {m}"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
            SpecError::Strategy(e) => write!(f, "invalid strategy: {e}"),
            SpecError::UnknownCluster(c) => write!(
                f,
                "unknown cluster `{c}` (not a paper preset — chti, grillon, grelon — \
                 and not generated by the spec's topologies)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentSpec {
        let mut spec = ExperimentSpec::naive("naive", "grillon", SuiteSpec::Mini, 7);
        spec.strategies.push(StrategySpec::Combined {
            mindelta: 0.5,
            maxdelta: 1.0,
            minrho: 0.4,
        });
        spec
    }

    #[test]
    fn toml_round_trip() {
        let spec = sample();
        let text = spec.to_toml();
        assert_eq!(ExperimentSpec::from_toml(&text).unwrap(), spec);
    }

    #[test]
    fn json_round_trip() {
        let spec = sample();
        let text = spec.to_json();
        assert_eq!(ExperimentSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn strategy_specs_mirror_strategies() {
        for s in [
            MappingStrategy::Hcpa,
            MappingStrategy::rats_delta(0.25, 1.0),
            MappingStrategy::rats_time_cost(0.4, false),
            MappingStrategy::rats_combined(0.5, 1.0, 0.6),
        ] {
            let spec = StrategySpec::from_strategy(s);
            assert_eq!(spec.to_strategy().unwrap(), s);
        }
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(
            ExperimentSpec::from_toml("strategies = 4"),
            Err(SpecError::Parse(_))
        ));
        let toml = "name = \"x\"\nclusters = [\"nowhere\"]\n[[strategies]]\nkind = \"hcpa\"\n";
        let spec = ExperimentSpec::from_toml(toml).unwrap();
        assert_eq!(
            spec.validate(),
            Err(SpecError::UnknownCluster("nowhere".into()))
        );
        let toml =
            "name = \"x\"\nclusters = [\"chti\"]\n[[strategies]]\nkind = \"time-cost\"\nminrho = 0.0\n";
        let spec = ExperimentSpec::from_toml(toml).unwrap();
        assert!(matches!(spec.validate(), Err(SpecError::Strategy(_))));
    }

    #[test]
    fn defaults_fill_in() {
        let toml = "name = \"d\"\nclusters = [\"chti\"]\n[[strategies]]\nkind = \"hcpa\"\n";
        let spec = ExperimentSpec::from_toml(toml).unwrap();
        assert_eq!(spec.seed, crate::campaign::BASE_SEED);
        assert_eq!(spec.suite, SuiteSpec::Mini);
        assert_eq!(spec.threads, None);
        assert_eq!(spec.shard, None);
    }

    #[test]
    fn shard_round_trips_toml_and_json() {
        let mut spec = sample();
        spec.shard = Some(ShardSpec::new(2, 5));
        let toml = spec.to_toml();
        assert!(toml.contains("[shard]"), "got:\n{toml}");
        assert_eq!(ExperimentSpec::from_toml(&toml).unwrap(), spec);
        let json = spec.to_json();
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), spec);
        // A hand-written document with an explicit shard table.
        let doc = "name = \"w\"\nclusters = [\"chti\"]\n[shard]\nindex = 1\ncount = 3\n\
                   \n[[strategies]]\nkind = \"hcpa\"\n";
        let parsed = ExperimentSpec::from_toml(doc).unwrap();
        assert_eq!(parsed.shard, Some(ShardSpec::new(1, 3)));
    }

    #[test]
    fn shard_bounds_are_validated_and_gate_in_process_runs() {
        let mut spec = ExperimentSpec::naive("s", "chti", SuiteSpec::Mini, 1);
        spec.shard = Some(ShardSpec::new(3, 3));
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.shard = Some(ShardSpec::new(1, 3));
        assert!(spec.validate().is_ok());
        // A proper shard cannot run in-process...
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));
        // ...but the trivial 0/1 shard is the full campaign.
        spec.shard = Some(ShardSpec::default());
        spec.threads = Some(2);
        assert!(spec.run().is_ok());
    }

    #[test]
    fn spec_hash_ignores_execution_fields_only() {
        let base = sample();
        let mut sharded = base.clone();
        sharded.shard = Some(ShardSpec::new(1, 4));
        sharded.threads = Some(3);
        assert_eq!(base.spec_hash(), sharded.spec_hash());
        assert_eq!(sharded.normalized(), base.normalized());
        let mut reseeded = base.clone();
        reseeded.seed += 1;
        assert_ne!(base.spec_hash(), reseeded.spec_hash());
        let mut restrategized = base.clone();
        restrategized.strategies.pop();
        assert_ne!(base.spec_hash(), restrategized.spec_hash());
    }

    #[test]
    fn grid_matches_spec_shape() {
        let spec = sample();
        let grid = spec.grid();
        assert_eq!(grid.clusters(), 1);
        assert_eq!(grid.scenarios(), SuiteSpec::Mini.len());
        assert_eq!(grid.strategies(), 4);
        assert_eq!(SuiteSpec::Paper.len(), 557);
    }

    /// A small custom campaign: three DAG families, a star cluster and a
    /// heterogeneous-speed sweep, mixed with a paper preset.
    fn custom_toml() -> &'static str {
        "name = \"custom-smoke\"\n\
         seed = 5\n\
         suite = \"custom\"\n\
         total = 6\n\
         clusters = [\"edge\", \"het-p8x2\", \"grillon\"]\n\
         \n\
         [[strategies]]\n\
         kind = \"hcpa\"\n\
         \n\
         [[strategies]]\n\
         kind = \"time-cost\"\n\
         minrho = 0.5\n\
         \n\
         [[families]]\n\
         kind = \"chain\"\n\
         count = 2\n\
         n = [5, 9]\n\
         \n\
         [[families]]\n\
         kind = \"fork-join\"\n\
         stages = 2\n\
         branches = 3\n\
         weight = 1.0\n\
         \n\
         [[families]]\n\
         kind = \"out-tree\"\n\
         depth = 2\n\
         ccr = \"loguniform(0.5, 2.0)\"\n\
         \n\
         [[topologies]]\n\
         name = \"edge\"\n\
         kind = \"star\"\n\
         procs = 9\n\
         backbone_mbps = 250.0\n\
         \n\
         [[topologies]]\n\
         name = \"het\"\n\
         kind = \"flat\"\n\
         procs = [8, 16]\n\
         gflops = [2.0, 6.0]\n"
    }

    #[test]
    fn custom_suite_round_trips_and_validates() {
        let spec = ExperimentSpec::from_toml(custom_toml()).unwrap();
        assert!(matches!(spec.suite, SuiteSpec::Custom(_)));
        assert_eq!(spec.suite.len(), 6);
        spec.validate().unwrap();
        // TOML and JSON round trips preserve the whole workload.
        let toml = spec.to_toml();
        assert_eq!(ExperimentSpec::from_toml(&toml).unwrap(), spec);
        let json = spec.to_json();
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), spec);
        // The suite tag is content-derived and stable across round trips.
        let tag = spec.suite.name();
        assert!(tag.starts_with("custom-"), "{tag}");
        assert_eq!(ExperimentSpec::from_toml(&toml).unwrap().suite.name(), tag);
        // The census is computable without generating any DAG.
        let census = spec.suite.census();
        assert!(census.contains("6 scenarios"), "{census}");
        assert!(census.contains("het-p16x6"), "{census}");
    }

    #[test]
    fn custom_suite_generates_and_executes() {
        let mut spec = ExperimentSpec::from_toml(custom_toml()).unwrap();
        spec.threads = Some(2);
        let scenarios = spec.scenarios();
        assert_eq!(scenarios.len(), 6);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.id, i);
            s.dag.validate().unwrap();
        }
        let outcome = spec.run().unwrap();
        assert_eq!(outcome.clusters.len(), 3);
        assert_eq!(outcome.clusters[0].cluster, "edge");
        for cr in &outcome.clusters {
            for algo in &cr.results {
                assert_eq!(algo.runs.len(), 6);
                assert!(algo.runs.iter().all(|r| r.makespan > 0.0));
            }
        }
        let report = outcome.render();
        assert!(report.contains("suite custom-"), "{report}");
    }

    #[test]
    fn suite_errors_enumerate_accepted_names() {
        let toml = "name = \"x\"\nsuite = \"paperclip\"\nclusters = [\"chti\"]\n\
                    [[strategies]]\nkind = \"hcpa\"\n";
        let err = ExperimentSpec::from_toml(toml).unwrap_err().to_string();
        for name in SUITE_NAMES {
            assert!(err.contains(name), "`{name}` missing from: {err}");
        }
    }

    #[test]
    fn custom_suite_validation_failures_are_spec_errors() {
        // A generated-cluster name referenced without its generator.
        let doc = custom_toml().replace("name = \"edge\"", "name = \"fringe\"");
        let spec = ExperimentSpec::from_toml(&doc).unwrap();
        match spec.validate() {
            Err(SpecError::UnknownCluster(c)) => assert_eq!(c, "edge"),
            other => panic!("expected UnknownCluster, got {other:?}"),
        }
        // An invalid family parameter surfaces as Invalid.
        let doc = custom_toml().replace("branches = 3", "branches = 0");
        let spec = ExperimentSpec::from_toml(&doc).unwrap();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // An unknown family kind fails at parse time, naming the kinds.
        let doc = custom_toml().replace("kind = \"chain\"", "kind = \"butterfly\"");
        let err = ExperimentSpec::from_toml(&doc).unwrap_err().to_string();
        assert!(
            err.contains("butterfly") && err.contains("fork-join"),
            "{err}"
        );
    }

    #[test]
    fn custom_spec_hash_tracks_workload_content() {
        let a = ExperimentSpec::from_toml(custom_toml()).unwrap();
        let mut b = ExperimentSpec::from_toml(custom_toml()).unwrap();
        assert_eq!(a.spec_hash(), b.spec_hash());
        if let SuiteSpec::Custom(w) = &mut b.suite {
            w.families[1].branches = rats_workloads::IntDist::Fixed(4);
        }
        assert_ne!(a.spec_hash(), b.spec_hash());
        assert_ne!(a.suite.name(), b.suite.name());
    }

    #[test]
    fn mini_campaign_executes() {
        let mut spec = ExperimentSpec::naive("smoke", "chti", SuiteSpec::Mini, 3);
        spec.threads = Some(2);
        let outcome = spec.run().unwrap();
        assert_eq!(outcome.clusters.len(), 1);
        let cr = &outcome.clusters[0];
        assert_eq!(cr.results.len(), 3);
        assert_eq!(cr.results[0].name, "HCPA");
        for algo in &cr.results {
            assert!(algo.runs.iter().all(|r| r.makespan > 0.0));
        }
        let report = outcome.render();
        assert!(report.contains("campaign `smoke`"));
        assert!(report.contains("time-cost"));
    }
}
