//! Statistics over campaign results: relative series, pairwise counts,
//! degradation from best.

/// Relative tolerance under which two makespans are considered *equal*
/// (strategies that take no adoption decision produce bit-identical
/// schedules, so the tolerance only needs to absorb floating-point noise).
pub const EQUAL_TOL: f64 = 1e-6;

/// Per-scenario ratios `candidate / baseline` (e.g. RATS makespan relative
/// to HCPA — the y-axis of Figures 2/3/6/7).
///
/// # Panics
///
/// Panics if the slices differ in length or a baseline value is ≤ 0.
pub fn relative(candidate: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(candidate.len(), baseline.len(), "misaligned campaigns");
    candidate
        .iter()
        .zip(baseline)
        .map(|(&c, &b)| {
            assert!(b > 0.0, "baseline values must be positive");
            c / b
        })
        .collect()
}

/// Sorts a series ascending (the paper sorts each data set independently
/// before plotting).
pub fn sorted_ascending(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    v
}

/// Summary of a relative series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeSummary {
    /// Mean of the ratios (1.0 = parity with the baseline).
    pub mean_ratio: f64,
    /// Fraction of scenarios strictly better than the baseline.
    pub wins: f64,
    /// Fraction of scenarios equal to the baseline (within [`EQUAL_TOL`]).
    pub ties: f64,
    /// Number of scenarios.
    pub n: usize,
}

/// Summarizes a relative series (mean, win/tie fractions).
pub fn summarize(ratios: &[f64]) -> RelativeSummary {
    let n = ratios.len();
    assert!(n > 0, "empty series");
    let mean_ratio = ratios.iter().sum::<f64>() / n as f64;
    let wins = ratios.iter().filter(|&&r| r < 1.0 - EQUAL_TOL).count() as f64 / n as f64;
    let ties = ratios
        .iter()
        .filter(|&&r| (r - 1.0).abs() <= EQUAL_TOL)
        .count() as f64
        / n as f64;
    RelativeSummary {
        mean_ratio,
        wins,
        ties,
        n,
    }
}

/// Better/equal/worse counts of algorithm A against algorithm B
/// (one cell group of the paper's Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairwiseCount {
    /// Scenarios where A's makespan is strictly smaller.
    pub better: usize,
    /// Scenarios within tolerance of each other.
    pub equal: usize,
    /// Scenarios where A's makespan is strictly larger.
    pub worse: usize,
}

/// Counts how often `a` beats/ties/loses to `b`, scenario by scenario.
pub fn pairwise(a: &[f64], b: &[f64]) -> PairwiseCount {
    assert_eq!(a.len(), b.len(), "misaligned campaigns");
    let mut out = PairwiseCount::default();
    for (&x, &y) in a.iter().zip(b) {
        let scale = x.max(y).max(f64::MIN_POSITIVE);
        if (x - y).abs() <= EQUAL_TOL * scale {
            out.equal += 1;
        } else if x < y {
            out.better += 1;
        } else {
            out.worse += 1;
        }
    }
    out
}

/// "Combined" comparison of one algorithm against all others at once
/// (the percentage columns of Table V): better = strictly better than the
/// *best* of the others, equal = ties the best of the others, worse
/// otherwise.
pub fn pairwise_combined(own: &[f64], others: &[&[f64]]) -> PairwiseCount {
    let n = own.len();
    for o in others {
        assert_eq!(o.len(), n, "misaligned campaigns");
    }
    let mut out = PairwiseCount::default();
    for i in 0..n {
        let best_other = others.iter().map(|o| o[i]).fold(f64::INFINITY, f64::min);
        let scale = own[i].max(best_other).max(f64::MIN_POSITIVE);
        if (own[i] - best_other).abs() <= EQUAL_TOL * scale {
            out.equal += 1;
        } else if own[i] < best_other {
            out.better += 1;
        } else {
            out.worse += 1;
        }
    }
    out
}

/// Degradation-from-best of one algorithm, computed with the paper's two
/// averaging methods (Table VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Mean over **all** experiments of `(makespan − best)/best`, in
    /// percent (best-scoring experiments contribute 0).
    pub avg_over_all_pct: f64,
    /// Number of experiments in which this algorithm was not the best.
    pub not_best: usize,
    /// Mean restricted to those not-best experiments, in percent.
    pub avg_over_not_best_pct: f64,
}

/// Computes the degradation-from-best of every algorithm; `makespans[k][i]`
/// is algorithm `k`'s makespan on scenario `i`.
pub fn degradation_from_best(makespans: &[Vec<f64>]) -> Vec<Degradation> {
    assert!(!makespans.is_empty(), "no algorithms");
    let n = makespans[0].len();
    for m in makespans {
        assert_eq!(m.len(), n, "misaligned campaigns");
    }
    let best: Vec<f64> = (0..n)
        .map(|i| makespans.iter().map(|m| m[i]).fold(f64::INFINITY, f64::min))
        .collect();
    makespans
        .iter()
        .map(|m| {
            let mut sum = 0.0;
            let mut not_best = 0usize;
            let mut sum_not_best = 0.0;
            for i in 0..n {
                let d = (m[i] - best[i]) / best[i];
                sum += d;
                if d > EQUAL_TOL {
                    not_best += 1;
                    sum_not_best += d;
                }
            }
            Degradation {
                avg_over_all_pct: 100.0 * sum / n as f64,
                not_best,
                avg_over_not_best_pct: if not_best == 0 {
                    0.0
                } else {
                    100.0 * sum_not_best / not_best as f64
                },
            }
        })
        .collect()
}

/// Per-family summary of a relative series (the grouping behind the
/// paper's Table IV columns and our EXPERIMENTS.md family breakdowns).
pub fn summarize_by_family(
    runs: &[crate::campaign::RunResult],
    baseline: &[crate::campaign::RunResult],
) -> Vec<(rats_daggen::suite::AppFamily, RelativeSummary)> {
    assert_eq!(runs.len(), baseline.len(), "misaligned campaigns");
    rats_daggen::suite::AppFamily::ALL
        .into_iter()
        .filter_map(|family| {
            let ratios: Vec<f64> = runs
                .iter()
                .zip(baseline)
                .filter(|(r, _)| r.family == family)
                .map(|(r, b)| {
                    assert!(b.makespan > 0.0, "baseline makespans must be positive");
                    r.makespan / b.makespan
                })
                .collect();
            (!ratios.is_empty()).then(|| (family, summarize(&ratios)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_breakdown_groups_correctly() {
        use crate::campaign::RunResult;
        use rats_daggen::suite::AppFamily;
        let mk = |family, makespan| RunResult {
            scenario_id: 0,
            family,
            makespan,
            work: 1.0,
        };
        let base = vec![
            mk(AppFamily::Fft, 10.0),
            mk(AppFamily::Fft, 10.0),
            mk(AppFamily::Strassen, 10.0),
        ];
        let runs = vec![
            mk(AppFamily::Fft, 5.0),
            mk(AppFamily::Fft, 15.0),
            mk(AppFamily::Strassen, 10.0),
        ];
        let by = summarize_by_family(&runs, &base);
        assert_eq!(by.len(), 2);
        let (fam, s) = by[0];
        assert_eq!(fam, AppFamily::Fft);
        assert_eq!(s.n, 2);
        assert!((s.mean_ratio - 1.0).abs() < 1e-12);
        let (fam, s) = by[1];
        assert_eq!(fam, AppFamily::Strassen);
        assert!((s.ties - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_and_sort() {
        let r = relative(&[2.0, 1.0, 3.0], &[4.0, 1.0, 2.0]);
        assert_eq!(r, vec![0.5, 1.0, 1.5]);
        assert_eq!(sorted_ascending(r), vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn summary_counts_wins_and_ties() {
        let s = summarize(&[0.5, 1.0, 1.5, 0.9]);
        assert_eq!(s.n, 4);
        assert!((s.mean_ratio - 0.975).abs() < 1e-12);
        assert!((s.wins - 0.5).abs() < 1e-12);
        assert!((s.ties - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pairwise_counts() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 2.0, 2.0, 5.0];
        let c = pairwise(&a, &b);
        assert_eq!(
            c,
            PairwiseCount {
                better: 2,
                equal: 1,
                worse: 1
            }
        );
        // Antisymmetry.
        let c2 = pairwise(&b, &a);
        assert_eq!(c2.better, c.worse);
        assert_eq!(c2.worse, c.better);
        assert_eq!(c2.equal, c.equal);
    }

    #[test]
    fn combined_compares_to_best_of_others() {
        let own = [1.0, 3.0, 2.0];
        let o1 = [2.0, 2.0, 2.0];
        let o2 = [3.0, 4.0, 9.0];
        let c = pairwise_combined(&own, &[&o1, &o2]);
        assert_eq!(
            c,
            PairwiseCount {
                better: 1,
                equal: 1,
                worse: 1
            }
        );
    }

    #[test]
    fn degradation_two_algorithms() {
        let a = vec![1.0, 2.0, 4.0]; // best, best, 100% worse
        let b = vec![2.0, 2.0, 2.0]; // 100% worse, tie-best, best
        let d = degradation_from_best(&[a, b]);
        assert!((d[0].avg_over_all_pct - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(d[0].not_best, 1);
        assert!((d[0].avg_over_not_best_pct - 100.0).abs() < 1e-9);
        assert_eq!(d[1].not_best, 1);
        assert!((d[1].avg_over_all_pct - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_of_identical_algorithms_is_zero() {
        let a = vec![1.0, 2.0];
        let d = degradation_from_best(&[a.clone(), a]);
        for x in d {
            assert_eq!(x.avg_over_all_pct, 0.0);
            assert_eq!(x.not_best, 0);
        }
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn rejects_misaligned_series() {
        pairwise(&[1.0], &[1.0, 2.0]);
    }
}
