//! Shard-executor metrics: per-job and per-chunk wall-time histograms and
//! record throughput counters. Observational only — the executor reuses
//! the `Instant`s it already keeps for the journal, and never reads a
//! metric back.

use rats_telemetry::{Counter, Histogram, Metric, TIME_BUCKETS};

/// Whole shard-job wall time ([`run_shard_hooked`](crate::shard)), one
/// observation per invocation.
pub static JOB_SECONDS: Histogram = Histogram::new(
    "rats_shard_job_seconds",
    "Shard job wall time per run_shard invocation.",
    TIME_BUCKETS,
);

/// Per write-chunk wall time (schedule + simulate + append one chunk).
pub static CHUNK_SECONDS: Histogram = Histogram::new(
    "rats_shard_chunk_seconds",
    "Shard write-chunk wall time (evaluate + append).",
    TIME_BUCKETS,
);

/// Shard jobs run to completion (not aborted by cancellation).
pub static JOBS_COMPLETED: Counter = Counter::new(
    "rats_shard_jobs_completed_total",
    "Shard jobs run to completion (resumed-empty jobs included).",
);

/// Grid jobs executed (records appended).
pub static RECORDS: Counter = Counter::new(
    "rats_shard_records_total",
    "Grid-job records executed and appended to shard files.",
);

/// Grid jobs resumed from disk instead of re-executed.
pub static RESUMED: Counter = Counter::new(
    "rats_shard_grid_jobs_resumed_total",
    "Grid jobs found already recorded on disk and skipped (resume).",
);

/// Every metric this crate exports, for registry registration.
pub static METRICS: &[Metric] = &[
    Metric::Histogram(&JOB_SECONDS),
    Metric::Histogram(&CHUNK_SECONDS),
    Metric::Counter(&JOBS_COMPLETED),
    Metric::Counter(&RECORDS),
    Metric::Counter(&RESUMED),
];
