//! Parameter tuning: the paper's section IV-C.

use rats_daggen::suite::AppFamily;
use rats_platform::Platform;
use rats_sched::MappingStrategy;

use crate::campaign::PreparedScenario;
use crate::runner::parallel_map;

/// The `mindelta` grid of Figure 4 (magnitudes of the paper's negative
/// values −0.75 … 0).
pub const MINDELTA_GRID: [f64; 4] = [0.0, 0.25, 0.5, 0.75];
/// The `maxdelta` grid of Figure 4 (1 is tested for stretching only — "
/// allowing to remove all the processors of an allocation … does not make
/// sense").
pub const MAXDELTA_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// The `minrho` grid of Figure 5.
pub const MINRHO_GRID: [f64; 6] = [0.2, 0.4, 0.5, 0.6, 0.8, 1.0];

/// A tuned RATS parameter triple, as listed per (application type, cluster)
/// in the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// Packing bound magnitude (paper writes it negative).
    pub mindelta: f64,
    /// Stretching bound.
    pub maxdelta: f64,
    /// Time-cost efficiency threshold.
    pub minrho: f64,
}

/// Baseline (HCPA) makespans for a prepared set.
pub fn hcpa_baseline(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> Vec<f64> {
    parallel_map(prepared, threads, |_, p| {
        p.evaluate(platform, MappingStrategy::Hcpa).makespan
    })
}

/// A scenario set prepared for tuning sweeps: the step-one allocations
/// (carried by [`PreparedScenario`]) and the HCPA baseline makespans are
/// computed **once** at construction and shared by every grid point the
/// sweeps visit — a 26-cell `tune_family` sweep (or a combined
/// figure-4 + figure-5 regeneration) evaluates the baseline exactly once
/// instead of re-deriving it per entry point.
#[derive(Debug)]
pub struct TuningSet<'a> {
    prepared: &'a [PreparedScenario],
    platform: &'a Platform,
    base: Vec<f64>,
}

impl<'a> TuningSet<'a> {
    /// Computes the shared HCPA baseline for a prepared scenario set.
    pub fn new(prepared: &'a [PreparedScenario], platform: &'a Platform, threads: usize) -> Self {
        Self {
            prepared,
            platform,
            base: hcpa_baseline(prepared, platform, threads),
        }
    }

    /// The shared HCPA baseline makespans, in scenario order.
    pub fn baseline(&self) -> &[f64] {
        &self.base
    }

    /// Average of `rats_makespan / base_makespan` over the scenario set.
    pub fn avg_relative_makespan(&self, strategy: MappingStrategy, threads: usize) -> f64 {
        let runs = parallel_map(self.prepared, threads, |_, p| {
            p.evaluate(self.platform, strategy)
        });
        runs.iter()
            .zip(&self.base)
            .map(|(r, &b)| r.makespan / b)
            .sum::<f64>()
            / self.prepared.len() as f64
    }

    /// Figure 4: the average relative makespan of the delta strategy for
    /// every `(mindelta, maxdelta)` grid point. Returns `grid[i][j]` for
    /// `MINDELTA_GRID[i]` × `MAXDELTA_GRID[j]`.
    pub fn delta_grid(&self, threads: usize) -> Vec<Vec<f64>> {
        MINDELTA_GRID
            .iter()
            .map(|&mind| {
                MAXDELTA_GRID
                    .iter()
                    .map(|&maxd| {
                        self.avg_relative_makespan(MappingStrategy::rats_delta(mind, maxd), threads)
                    })
                    .collect()
            })
            .collect()
    }

    /// Figure 5: the average relative makespan of the time-cost strategy as
    /// `minrho` varies, with and without packing. Returns
    /// `(with_packing, without_packing)`, one value per [`MINRHO_GRID`]
    /// entry.
    pub fn rho_curves(&self, threads: usize) -> (Vec<f64>, Vec<f64>) {
        let curve = |packing: bool| -> Vec<f64> {
            MINRHO_GRID
                .iter()
                .map(|&rho| {
                    self.avg_relative_makespan(
                        MappingStrategy::rats_time_cost(rho, packing),
                        threads,
                    )
                })
                .collect()
        };
        (curve(true), curve(false))
    }

    /// Table IV for one application family on one platform: the
    /// `(mindelta, maxdelta)` pair minimizing the delta strategy's average
    /// relative makespan, and the `minrho` minimizing the time-cost
    /// strategy's (packing enabled, which the paper found always
    /// preferable).
    pub fn tune_family(&self, threads: usize) -> TunedParams {
        let mut best_delta = (f64::INFINITY, 0.0, 0.0);
        for &mind in &MINDELTA_GRID {
            for &maxd in &MAXDELTA_GRID {
                let avg =
                    self.avg_relative_makespan(MappingStrategy::rats_delta(mind, maxd), threads);
                if avg < best_delta.0 {
                    best_delta = (avg, mind, maxd);
                }
            }
        }
        let mut best_rho = (f64::INFINITY, MINRHO_GRID[0]);
        for &rho in &MINRHO_GRID {
            let avg =
                self.avg_relative_makespan(MappingStrategy::rats_time_cost(rho, true), threads);
            if avg < best_rho.0 {
                best_rho = (avg, rho);
            }
        }
        TunedParams {
            mindelta: best_delta.1,
            maxdelta: best_delta.2,
            minrho: best_rho.1,
        }
    }
}

/// Table IV tuning over a prepared set (see [`TuningSet::tune_family`];
/// this convenience constructor derives the shared baseline first).
pub fn tune_family(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> TunedParams {
    TuningSet::new(prepared, platform, threads).tune_family(threads)
}

/// The tuned values the **paper** reports in Table IV, used by the
/// tuned-comparison binaries (`fig6_7`, `table5`, `table6`) so they can run
/// without first re-tuning. (`mindelta` is stored as a magnitude.)
pub fn paper_tuned(family: AppFamily, cluster: &str) -> TunedParams {
    let (mindelta, maxdelta, minrho) = match (cluster, family) {
        ("chti", AppFamily::Fft) => (0.5, 1.0, 0.2),
        ("chti", AppFamily::Strassen) => (0.25, 0.5, 0.5),
        ("chti", AppFamily::Layered) => (0.5, 1.0, 0.2),
        ("chti", AppFamily::Irregular) => (0.75, 1.0, 0.5),
        ("grillon", AppFamily::Fft) => (0.5, 1.0, 0.2),
        ("grillon", AppFamily::Strassen) => (0.0, 1.0, 0.4),
        ("grillon", AppFamily::Layered) => (0.25, 1.0, 0.2),
        ("grillon", AppFamily::Irregular) => (0.75, 1.0, 0.5),
        ("grelon", AppFamily::Fft) => (0.25, 0.75, 0.4),
        ("grelon", AppFamily::Strassen) => (0.25, 1.0, 0.5),
        ("grelon", AppFamily::Layered) => (0.5, 1.0, 0.2),
        ("grelon", AppFamily::Irregular) => (0.75, 1.0, 0.4),
        (c, f) => panic!("no paper-tuned parameters for cluster {c:?}, family {f:?}"),
    };
    TunedParams {
        mindelta,
        maxdelta,
        minrho,
    }
}

/// Evaluates one scenario under family/cluster-specific tuned parameters,
/// returning `(hcpa, delta, time_cost)` makespans and works.
pub fn evaluate_tuned(
    p: &PreparedScenario,
    platform: &Platform,
    params: TunedParams,
) -> [crate::campaign::RunResult; 3] {
    [
        p.evaluate(platform, MappingStrategy::Hcpa),
        p.evaluate(
            platform,
            MappingStrategy::rats_delta(params.mindelta, params.maxdelta),
        ),
        p.evaluate(
            platform,
            MappingStrategy::rats_time_cost(params.minrho, true),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::suite::mini_suite;
    use rats_model::CostParams;
    use rats_platform::ClusterSpec;

    #[test]
    fn grids_match_paper_sizes() {
        assert_eq!(MINDELTA_GRID.len(), 4);
        assert_eq!(MAXDELTA_GRID.len(), 5);
        assert_eq!(MINRHO_GRID.len(), 6);
    }

    #[test]
    fn paper_tuned_covers_all_combinations() {
        for cluster in ["chti", "grillon", "grelon"] {
            for family in AppFamily::ALL {
                let t = paper_tuned(family, cluster);
                assert!(t.maxdelta <= 1.0 && t.minrho > 0.0);
            }
        }
    }

    #[test]
    fn tune_family_returns_grid_values() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 4), &platform, 2)
                .into_iter()
                .take(3)
                .collect();
        let t = tune_family(&prepared, &platform, 2);
        assert!(MINDELTA_GRID.contains(&t.mindelta));
        assert!(MAXDELTA_GRID.contains(&t.maxdelta));
        assert!(MINRHO_GRID.contains(&t.minrho));
    }

    #[test]
    fn delta_grid_has_expected_shape() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 5), &platform, 2)
                .into_iter()
                .take(2)
                .collect();
        let set = TuningSet::new(&prepared, &platform, 2);
        let grid = set.delta_grid(2);
        assert_eq!(grid.len(), MINDELTA_GRID.len());
        for row in &grid {
            assert_eq!(row.len(), MAXDELTA_GRID.len());
            for &v in row {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }

    #[test]
    fn tuning_set_shares_one_baseline_across_sweeps() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 6), &platform, 2)
                .into_iter()
                .take(2)
                .collect();
        let set = TuningSet::new(&prepared, &platform, 2);
        assert_eq!(set.baseline().len(), prepared.len());
        assert_eq!(set.baseline(), hcpa_baseline(&prepared, &platform, 2));
        // Both sweeps run off the same baseline; HCPA-relative HCPA is 1.
        let rel = set.avg_relative_makespan(MappingStrategy::Hcpa, 2);
        assert!((rel - 1.0).abs() < 1e-12, "rel = {rel}");
        let (with_packing, without_packing) = set.rho_curves(2);
        assert_eq!(with_packing.len(), MINRHO_GRID.len());
        assert_eq!(without_packing.len(), MINRHO_GRID.len());
    }
}
