//! Parameter tuning: the paper's section IV-C.

use rats_daggen::suite::AppFamily;
use rats_platform::Platform;
use rats_sched::MappingStrategy;

use crate::campaign::PreparedScenario;
use crate::runner::parallel_map;

/// The `mindelta` grid of Figure 4 (magnitudes of the paper's negative
/// values −0.75 … 0).
pub const MINDELTA_GRID: [f64; 4] = [0.0, 0.25, 0.5, 0.75];
/// The `maxdelta` grid of Figure 4 (1 is tested for stretching only — "
/// allowing to remove all the processors of an allocation … does not make
/// sense").
pub const MAXDELTA_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// The `minrho` grid of Figure 5.
pub const MINRHO_GRID: [f64; 6] = [0.2, 0.4, 0.5, 0.6, 0.8, 1.0];

/// A tuned RATS parameter triple, as listed per (application type, cluster)
/// in the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// Packing bound magnitude (paper writes it negative).
    pub mindelta: f64,
    /// Stretching bound.
    pub maxdelta: f64,
    /// Time-cost efficiency threshold.
    pub minrho: f64,
}

/// Average of `rats_makespan / base_makespan` over a scenario set.
fn avg_relative_makespan(
    prepared: &[PreparedScenario],
    base: &[f64],
    platform: &Platform,
    strategy: MappingStrategy,
    threads: usize,
) -> f64 {
    let runs = parallel_map(prepared, threads, |_, p| p.evaluate(platform, strategy));
    runs.iter()
        .zip(base)
        .map(|(r, &b)| r.makespan / b)
        .sum::<f64>()
        / prepared.len() as f64
}

/// Baseline (HCPA) makespans for a prepared set.
pub fn hcpa_baseline(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> Vec<f64> {
    parallel_map(prepared, threads, |_, p| {
        p.evaluate(platform, MappingStrategy::Hcpa).makespan
    })
}

/// Figure 4: the average relative makespan of the delta strategy for every
/// `(mindelta, maxdelta)` grid point. Returns `grid[i][j]` for
/// `MINDELTA_GRID[i]` × `MAXDELTA_GRID[j]`.
pub fn delta_grid(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> Vec<Vec<f64>> {
    let base = hcpa_baseline(prepared, platform, threads);
    MINDELTA_GRID
        .iter()
        .map(|&mind| {
            MAXDELTA_GRID
                .iter()
                .map(|&maxd| {
                    let strategy = MappingStrategy::rats_delta(mind, maxd);
                    avg_relative_makespan(prepared, &base, platform, strategy, threads)
                })
                .collect()
        })
        .collect()
}

/// Figure 5: the average relative makespan of the time-cost strategy as
/// `minrho` varies, with and without packing. Returns
/// `(with_packing, without_packing)`, one value per [`MINRHO_GRID`] entry.
pub fn rho_curves(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> (Vec<f64>, Vec<f64>) {
    let base = hcpa_baseline(prepared, platform, threads);
    let curve = |packing: bool| -> Vec<f64> {
        MINRHO_GRID
            .iter()
            .map(|&rho| {
                let strategy = MappingStrategy::rats_time_cost(rho, packing);
                avg_relative_makespan(prepared, &base, platform, strategy, threads)
            })
            .collect()
    };
    (curve(true), curve(false))
}

/// Table IV for one application family on one platform: the
/// `(mindelta, maxdelta)` pair minimizing the delta strategy's average
/// relative makespan, and the `minrho` minimizing the time-cost strategy's
/// (packing enabled, which the paper found always preferable).
pub fn tune_family(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> TunedParams {
    let base = hcpa_baseline(prepared, platform, threads);
    let mut best_delta = (f64::INFINITY, 0.0, 0.0);
    for &mind in &MINDELTA_GRID {
        for &maxd in &MAXDELTA_GRID {
            let avg = avg_relative_makespan(
                prepared,
                &base,
                platform,
                MappingStrategy::rats_delta(mind, maxd),
                threads,
            );
            if avg < best_delta.0 {
                best_delta = (avg, mind, maxd);
            }
        }
    }
    let mut best_rho = (f64::INFINITY, MINRHO_GRID[0]);
    for &rho in &MINRHO_GRID {
        let avg = avg_relative_makespan(
            prepared,
            &base,
            platform,
            MappingStrategy::rats_time_cost(rho, true),
            threads,
        );
        if avg < best_rho.0 {
            best_rho = (avg, rho);
        }
    }
    TunedParams {
        mindelta: best_delta.1,
        maxdelta: best_delta.2,
        minrho: best_rho.1,
    }
}

/// The tuned values the **paper** reports in Table IV, used by the
/// tuned-comparison binaries (`fig6_7`, `table5`, `table6`) so they can run
/// without first re-tuning. (`mindelta` is stored as a magnitude.)
pub fn paper_tuned(family: AppFamily, cluster: &str) -> TunedParams {
    let (mindelta, maxdelta, minrho) = match (cluster, family) {
        ("chti", AppFamily::Fft) => (0.5, 1.0, 0.2),
        ("chti", AppFamily::Strassen) => (0.25, 0.5, 0.5),
        ("chti", AppFamily::Layered) => (0.5, 1.0, 0.2),
        ("chti", AppFamily::Irregular) => (0.75, 1.0, 0.5),
        ("grillon", AppFamily::Fft) => (0.5, 1.0, 0.2),
        ("grillon", AppFamily::Strassen) => (0.0, 1.0, 0.4),
        ("grillon", AppFamily::Layered) => (0.25, 1.0, 0.2),
        ("grillon", AppFamily::Irregular) => (0.75, 1.0, 0.5),
        ("grelon", AppFamily::Fft) => (0.25, 0.75, 0.4),
        ("grelon", AppFamily::Strassen) => (0.25, 1.0, 0.5),
        ("grelon", AppFamily::Layered) => (0.5, 1.0, 0.2),
        ("grelon", AppFamily::Irregular) => (0.75, 1.0, 0.4),
        (c, f) => panic!("no paper-tuned parameters for cluster {c:?}, family {f:?}"),
    };
    TunedParams {
        mindelta,
        maxdelta,
        minrho,
    }
}

/// Evaluates one scenario under family/cluster-specific tuned parameters,
/// returning `(hcpa, delta, time_cost)` makespans and works.
pub fn evaluate_tuned(
    p: &PreparedScenario,
    platform: &Platform,
    params: TunedParams,
) -> [crate::campaign::RunResult; 3] {
    [
        p.evaluate(platform, MappingStrategy::Hcpa),
        p.evaluate(
            platform,
            MappingStrategy::rats_delta(params.mindelta, params.maxdelta),
        ),
        p.evaluate(
            platform,
            MappingStrategy::rats_time_cost(params.minrho, true),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::suite::mini_suite;
    use rats_model::CostParams;
    use rats_platform::ClusterSpec;

    #[test]
    fn grids_match_paper_sizes() {
        assert_eq!(MINDELTA_GRID.len(), 4);
        assert_eq!(MAXDELTA_GRID.len(), 5);
        assert_eq!(MINRHO_GRID.len(), 6);
    }

    #[test]
    fn paper_tuned_covers_all_combinations() {
        for cluster in ["chti", "grillon", "grelon"] {
            for family in AppFamily::ALL {
                let t = paper_tuned(family, cluster);
                assert!(t.maxdelta <= 1.0 && t.minrho > 0.0);
            }
        }
    }

    #[test]
    fn tune_family_returns_grid_values() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 4), &platform, 2)
                .into_iter()
                .take(3)
                .collect();
        let t = tune_family(&prepared, &platform, 2);
        assert!(MINDELTA_GRID.contains(&t.mindelta));
        assert!(MAXDELTA_GRID.contains(&t.maxdelta));
        assert!(MINRHO_GRID.contains(&t.minrho));
    }

    #[test]
    fn delta_grid_has_expected_shape() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 5), &platform, 2)
                .into_iter()
                .take(2)
                .collect();
        let grid = delta_grid(&prepared, &platform, 2);
        assert_eq!(grid.len(), MINDELTA_GRID.len());
        for row in &grid {
            assert_eq!(row.len(), MAXDELTA_GRID.len());
            for &v in row {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }
}
