//! Parameter tuning: the paper's section IV-C.
//!
//! Tuning sweeps are ordinary campaigns: each grid point is a
//! [`MappingStrategy`] value, the points are evaluated by the same executor
//! as the headline comparison ([`evaluate_strategies`]) — and therefore by
//! the same sharded job grid — and the figures/tables are pure assemblies
//! over the per-strategy results ([`sweep_tables`]). In-process and
//! merged-from-shards paths share the assembly code, so they agree bit for
//! bit.

use std::cell::RefCell;

use rats_daggen::suite::AppFamily;
use rats_platform::Platform;
use rats_sched::{DeltaParams, MappingStrategy};

use crate::campaign::{AlgoResults, PreparedScenario, RunResult};
use crate::runner::parallel_map;
use crate::spec::StrategySpec;

/// The `mindelta` grid of Figure 4 (magnitudes of the paper's negative
/// values −0.75 … 0).
pub const MINDELTA_GRID: [f64; 4] = [0.0, 0.25, 0.5, 0.75];
/// The `maxdelta` grid of Figure 4 (1 is tested for stretching only — "
/// allowing to remove all the processors of an allocation … does not make
/// sense").
pub const MAXDELTA_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// The `minrho` grid of Figure 5.
pub const MINRHO_GRID: [f64; 6] = [0.2, 0.4, 0.5, 0.6, 0.8, 1.0];

/// A tuned RATS parameter triple, as listed per (application type, cluster)
/// in the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// Packing bound magnitude (paper writes it negative).
    pub mindelta: f64,
    /// Stretching bound.
    pub maxdelta: f64,
    /// Time-cost efficiency threshold.
    pub minrho: f64,
}

/// The delta-strategy grid points of Figure 4, `mindelta`-major
/// (`MINDELTA_GRID[i] × MAXDELTA_GRID[j]` flattens to index
/// `i * MAXDELTA_GRID.len() + j`).
pub fn delta_strategies() -> Vec<MappingStrategy> {
    MINDELTA_GRID
        .iter()
        .flat_map(|&mind| {
            MAXDELTA_GRID
                .iter()
                .map(move |&maxd| MappingStrategy::rats_delta(mind, maxd))
        })
        .collect()
}

/// The time-cost grid points of Figure 5: every [`MINRHO_GRID`] value with
/// packing enabled, then the same values with packing disabled.
pub fn rho_strategies() -> Vec<MappingStrategy> {
    [true, false]
        .iter()
        .flat_map(|&packing| {
            MINRHO_GRID
                .iter()
                .map(move |&rho| MappingStrategy::rats_time_cost(rho, packing))
        })
        .collect()
}

/// The full tuning sweep as one flat strategy list — the HCPA baseline
/// first, then [`delta_strategies`], then [`rho_strategies`] — ready to run
/// through the campaign job grid, in-process or sharded. [`sweep_tables`]
/// reassembles Figure 4/5 and Table IV from results in this order.
pub fn sweep_strategies() -> Vec<MappingStrategy> {
    let mut out = vec![MappingStrategy::Hcpa];
    out.extend(delta_strategies());
    out.extend(rho_strategies());
    out
}

/// [`sweep_strategies`] in data form, ready to drop into an
/// [`ExperimentSpec`](crate::spec::ExperimentSpec)'s strategy list.
pub fn sweep_specs() -> Vec<StrategySpec> {
    sweep_strategies()
        .into_iter()
        .map(StrategySpec::from_strategy)
        .collect()
}

/// Mean of `makespan / baseline` over one strategy's scenario-ordered runs
/// — the single summation both the in-process and the merged paths use, so
/// their averages are bit-identical.
fn mean_relative(runs: &[RunResult], base: &[f64]) -> f64 {
    assert_eq!(runs.len(), base.len(), "misaligned sweep");
    runs.iter()
        .zip(base)
        .map(|(r, &b)| r.makespan / b)
        .sum::<f64>()
        / base.len() as f64
}

/// Baseline (HCPA) makespans for a prepared set.
pub fn hcpa_baseline(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> Vec<f64> {
    parallel_map(prepared, threads, |_, p| {
        p.evaluate(platform, MappingStrategy::Hcpa).makespan
    })
}

/// The distinct step-one allocation sizes occurring anywhere in a prepared
/// scenario set, ascending. [`DeltaPolicy`](rats_sched::DeltaPolicy) only
/// ever indexes its structural bounds at these sizes, so they are the whole
/// domain a delta grid point's behaviour is sampled on.
fn distinct_alloc_sizes(prepared: &[PreparedScenario]) -> Vec<u32> {
    let mut sizes: Vec<u32> = prepared
        .iter()
        .flat_map(|p| p.alloc.as_slice().iter().copied())
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// The decision-relevant restriction of a delta grid point: the integer
/// stretch/pack bounds at every allocation size the scenario set uses. The
/// delta policy's choices are a pure function of these tables, so two grid
/// points with equal fingerprints schedule — and therefore simulate — every
/// scenario bit-identically.
fn delta_fingerprint(params: DeltaParams, sizes: &[u32]) -> DeltaFingerprint {
    sizes
        .iter()
        .map(|&k| (params.delta_max(k), params.delta_min_magnitude(k)))
        .collect()
}

/// `(δmax, |δmin|)` per distinct allocation size — see
/// [`delta_fingerprint`].
type DeltaFingerprint = Vec<(u32, u32)>;

/// A scenario set prepared for tuning sweeps: the step-one allocations
/// (carried by [`PreparedScenario`]) and the HCPA baseline makespans are
/// computed **once** at construction and shared by every grid point the
/// sweeps visit — a 26-cell `tune_family` sweep (or a combined
/// figure-4 + figure-5 regeneration) evaluates the baseline exactly once
/// instead of re-deriving it per entry point.
///
/// Delta grid points additionally share whole result vectors: the delta
/// strategy only sees its parameters through `⌊maxdelta·k⌋` /
/// `⌊mindelta·k⌋` at the allocation sizes `k` the set actually contains,
/// so grid points whose integer bounds coincide are evaluated once and the
/// full per-scenario [`RunResult`]s (mapping *and* simulation) are reused.
#[derive(Debug)]
pub struct TuningSet<'a> {
    prepared: &'a [PreparedScenario],
    platform: &'a Platform,
    base: Vec<f64>,
    /// Ascending distinct allocation sizes — the delta fingerprint domain.
    alloc_sizes: Vec<u32>,
    /// Evaluated delta grid points: fingerprint → scenario-ordered results.
    delta_cache: RefCell<Vec<(DeltaFingerprint, Vec<RunResult>)>>,
    /// Delta evaluations answered from the cache (for tests/diagnostics).
    shared_hits: std::cell::Cell<usize>,
}

impl<'a> TuningSet<'a> {
    /// Computes the shared HCPA baseline for a prepared scenario set.
    pub fn new(prepared: &'a [PreparedScenario], platform: &'a Platform, threads: usize) -> Self {
        Self {
            prepared,
            platform,
            base: hcpa_baseline(prepared, platform, threads),
            alloc_sizes: distinct_alloc_sizes(prepared),
            delta_cache: RefCell::new(Vec::new()),
            shared_hits: std::cell::Cell::new(0),
        }
    }

    /// The shared HCPA baseline makespans, in scenario order.
    pub fn baseline(&self) -> &[f64] {
        &self.base
    }

    /// How many delta grid-point evaluations were answered by reusing a
    /// previously computed schedule (equal integer-bound fingerprints)
    /// instead of re-mapping and re-simulating.
    pub fn shared_delta_evaluations(&self) -> usize {
        self.shared_hits.get()
    }

    /// Evaluates one strategy over the set, scenario-ordered. Delta grid
    /// points route through the fingerprint cache; everything else (HCPA,
    /// time-cost — whose `minrho` guard compares continuous work ratios and
    /// admits no finite fingerprint) is evaluated directly.
    fn strategy_runs(&self, strategy: MappingStrategy, threads: usize) -> Vec<RunResult> {
        if let MappingStrategy::RatsDelta(params) = strategy {
            let fp = delta_fingerprint(params, &self.alloc_sizes);
            if let Some((_, runs)) = self
                .delta_cache
                .borrow()
                .iter()
                .find(|(cached, _)| *cached == fp)
            {
                self.shared_hits.set(self.shared_hits.get() + 1);
                return runs.clone();
            }
            let runs = parallel_map(self.prepared, threads, |_, p| {
                p.evaluate(self.platform, strategy)
            });
            self.delta_cache.borrow_mut().push((fp, runs.clone()));
            runs
        } else {
            parallel_map(self.prepared, threads, |_, p| {
                p.evaluate(self.platform, strategy)
            })
        }
    }

    /// Average of `rats_makespan / base_makespan` over the scenario set.
    pub fn avg_relative_makespan(&self, strategy: MappingStrategy, threads: usize) -> f64 {
        mean_relative(&self.strategy_runs(strategy, threads), &self.base)
    }

    /// Runs a grid of strategies through the shared campaign executor and
    /// returns one average per strategy, in order.
    fn sweep_means(&self, strategies: &[MappingStrategy], threads: usize) -> Vec<f64> {
        strategies
            .iter()
            .map(|&s| mean_relative(&self.strategy_runs(s, threads), &self.base))
            .collect()
    }

    /// Figure 4: the average relative makespan of the delta strategy for
    /// every `(mindelta, maxdelta)` grid point. Returns `grid[i][j]` for
    /// `MINDELTA_GRID[i]` × `MAXDELTA_GRID[j]`.
    pub fn delta_grid(&self, threads: usize) -> Vec<Vec<f64>> {
        delta_grid_rows(&self.sweep_means(&delta_strategies(), threads))
    }

    /// Figure 5: the average relative makespan of the time-cost strategy as
    /// `minrho` varies, with and without packing. Returns
    /// `(with_packing, without_packing)`, one value per [`MINRHO_GRID`]
    /// entry.
    pub fn rho_curves(&self, threads: usize) -> (Vec<f64>, Vec<f64>) {
        let means = self.sweep_means(&rho_strategies(), threads);
        let (with_packing, without_packing) = means.split_at(MINRHO_GRID.len());
        (with_packing.to_vec(), without_packing.to_vec())
    }

    /// Table IV for one application family on one platform: the
    /// `(mindelta, maxdelta)` pair minimizing the delta strategy's average
    /// relative makespan, and the `minrho` minimizing the time-cost
    /// strategy's (packing enabled, which the paper found always
    /// preferable).
    pub fn tune_family(&self, threads: usize) -> TunedParams {
        let delta_means = self.sweep_means(&delta_strategies(), threads);
        let packing_strategies: Vec<MappingStrategy> = MINRHO_GRID
            .iter()
            .map(|&rho| MappingStrategy::rats_time_cost(rho, true))
            .collect();
        let rho_means = self.sweep_means(&packing_strategies, threads);
        tuned_from_means(&delta_means, &rho_means)
    }
}

/// Folds flat `mindelta`-major delta averages into Figure 4's
/// `grid[mindelta][maxdelta]` rows.
fn delta_grid_rows(means: &[f64]) -> Vec<Vec<f64>> {
    assert_eq!(means.len(), MINDELTA_GRID.len() * MAXDELTA_GRID.len());
    means
        .chunks(MAXDELTA_GRID.len())
        .map(<[f64]>::to_vec)
        .collect()
}

/// Argmin selection of Table IV from the grid averages (strict `<`, grid
/// order — identical on every path that feeds it).
fn tuned_from_means(delta_means: &[f64], rho_with_packing_means: &[f64]) -> TunedParams {
    assert_eq!(delta_means.len(), MINDELTA_GRID.len() * MAXDELTA_GRID.len());
    assert_eq!(rho_with_packing_means.len(), MINRHO_GRID.len());
    let mut best_delta = (f64::INFINITY, 0.0, 0.0);
    for (i, &mind) in MINDELTA_GRID.iter().enumerate() {
        for (j, &maxd) in MAXDELTA_GRID.iter().enumerate() {
            let avg = delta_means[i * MAXDELTA_GRID.len() + j];
            if avg < best_delta.0 {
                best_delta = (avg, mind, maxd);
            }
        }
    }
    let mut best_rho = (f64::INFINITY, MINRHO_GRID[0]);
    for (&rho, &avg) in MINRHO_GRID.iter().zip(rho_with_packing_means) {
        if avg < best_rho.0 {
            best_rho = (avg, rho);
        }
    }
    TunedParams {
        mindelta: best_delta.1,
        maxdelta: best_delta.2,
        minrho: best_rho.1,
    }
}

/// Figure 4, Figure 5 and Table IV, reassembled from per-strategy sweep
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTables {
    /// Figure 4's `grid[mindelta][maxdelta]` of average relative makespans.
    pub delta_grid: Vec<Vec<f64>>,
    /// Figure 5's curve with packing enabled, one value per [`MINRHO_GRID`]
    /// entry.
    pub rho_with_packing: Vec<f64>,
    /// Figure 5's curve with packing disabled.
    pub rho_without_packing: Vec<f64>,
    /// Table IV's tuned parameter triple.
    pub tuned: TunedParams,
}

/// Assembles [`SweepTables`] from scenario-aligned results in
/// [`sweep_strategies`] order (`results[0]` is the HCPA baseline) — e.g.
/// the merged output of a sharded tuning campaign. Bit-identical to the
/// in-process [`TuningSet`] sweeps over the same scenarios.
///
/// # Panics
/// Panics if the result list does not have the sweep's shape.
pub fn sweep_tables(results: &[AlgoResults]) -> SweepTables {
    let n_delta = MINDELTA_GRID.len() * MAXDELTA_GRID.len();
    let n_rho = MINRHO_GRID.len();
    assert_eq!(
        results.len(),
        1 + n_delta + 2 * n_rho,
        "results are not in sweep_strategies() order"
    );
    let base: Vec<f64> = results[0].makespans();
    let means: Vec<f64> = results[1..]
        .iter()
        .map(|algo| mean_relative(&algo.runs, &base))
        .collect();
    let (delta_means, rho_means) = means.split_at(n_delta);
    let (rho_with, rho_without) = rho_means.split_at(n_rho);
    SweepTables {
        delta_grid: delta_grid_rows(delta_means),
        rho_with_packing: rho_with.to_vec(),
        rho_without_packing: rho_without.to_vec(),
        tuned: tuned_from_means(delta_means, rho_with),
    }
}

/// Table IV tuning over a prepared set (see [`TuningSet::tune_family`];
/// this convenience constructor derives the shared baseline first).
pub fn tune_family(
    prepared: &[PreparedScenario],
    platform: &Platform,
    threads: usize,
) -> TunedParams {
    TuningSet::new(prepared, platform, threads).tune_family(threads)
}

/// The tuned values the **paper** reports in Table IV, used by the
/// tuned-comparison binaries (`fig6_7`, `table5`, `table6`) so they can run
/// without first re-tuning. (`mindelta` is stored as a magnitude.)
pub fn paper_tuned(family: AppFamily, cluster: &str) -> TunedParams {
    let (mindelta, maxdelta, minrho) = match (cluster, family) {
        ("chti", AppFamily::Fft) => (0.5, 1.0, 0.2),
        ("chti", AppFamily::Strassen) => (0.25, 0.5, 0.5),
        ("chti", AppFamily::Layered) => (0.5, 1.0, 0.2),
        ("chti", AppFamily::Irregular) => (0.75, 1.0, 0.5),
        ("grillon", AppFamily::Fft) => (0.5, 1.0, 0.2),
        ("grillon", AppFamily::Strassen) => (0.0, 1.0, 0.4),
        ("grillon", AppFamily::Layered) => (0.25, 1.0, 0.2),
        ("grillon", AppFamily::Irregular) => (0.75, 1.0, 0.5),
        ("grelon", AppFamily::Fft) => (0.25, 0.75, 0.4),
        ("grelon", AppFamily::Strassen) => (0.25, 1.0, 0.5),
        ("grelon", AppFamily::Layered) => (0.5, 1.0, 0.2),
        ("grelon", AppFamily::Irregular) => (0.75, 1.0, 0.4),
        (c, f) => panic!("no paper-tuned parameters for cluster {c:?}, family {f:?}"),
    };
    TunedParams {
        mindelta,
        maxdelta,
        minrho,
    }
}

/// Evaluates one scenario under family/cluster-specific tuned parameters,
/// returning `(hcpa, delta, time_cost)` makespans and works.
pub fn evaluate_tuned(
    p: &PreparedScenario,
    platform: &Platform,
    params: TunedParams,
) -> [crate::campaign::RunResult; 3] {
    [
        p.evaluate(platform, MappingStrategy::Hcpa),
        p.evaluate(
            platform,
            MappingStrategy::rats_delta(params.mindelta, params.maxdelta),
        ),
        p.evaluate(
            platform,
            MappingStrategy::rats_time_cost(params.minrho, true),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::evaluate_strategies;
    use rats_daggen::suite::mini_suite;
    use rats_model::CostParams;
    use rats_platform::ClusterSpec;

    #[test]
    fn grids_match_paper_sizes() {
        assert_eq!(MINDELTA_GRID.len(), 4);
        assert_eq!(MAXDELTA_GRID.len(), 5);
        assert_eq!(MINRHO_GRID.len(), 6);
    }

    #[test]
    fn sweep_strategy_list_has_the_documented_shape() {
        let sweep = sweep_strategies();
        assert_eq!(sweep.len(), 1 + 4 * 5 + 2 * 6);
        assert_eq!(sweep[0], MappingStrategy::Hcpa);
        // mindelta-major delta block: the second entry moves maxdelta.
        assert_eq!(sweep[1], MappingStrategy::rats_delta(0.0, 0.0));
        assert_eq!(sweep[2], MappingStrategy::rats_delta(0.0, 0.25));
        // rho block: packing-enabled first.
        assert_eq!(sweep[21], MappingStrategy::rats_time_cost(0.2, true));
        assert_eq!(sweep[27], MappingStrategy::rats_time_cost(0.2, false));
        // The data form mirrors the strategies one-to-one.
        let specs = sweep_specs();
        for (spec, strategy) in specs.iter().zip(&sweep) {
            assert_eq!(spec.to_strategy().unwrap(), *strategy);
        }
    }

    #[test]
    fn sweep_tables_match_in_process_sweeps_bit_for_bit() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 8), &platform, 2)
                .into_iter()
                .take(3)
                .collect();
        let strategies = sweep_strategies();
        let results: Vec<AlgoResults> = strategies
            .iter()
            .zip(evaluate_strategies(&prepared, &platform, &strategies, 2))
            .map(|(s, runs)| AlgoResults {
                name: s.name().to_string(),
                runs,
            })
            .collect();
        let tables = sweep_tables(&results);

        let set = TuningSet::new(&prepared, &platform, 2);
        let grid = set.delta_grid(2);
        for (row_a, row_b) in tables.delta_grid.iter().zip(&grid) {
            for (a, b) in row_a.iter().zip(row_b) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let (with_packing, without_packing) = set.rho_curves(2);
        for (a, b) in tables.rho_with_packing.iter().zip(&with_packing) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in tables.rho_without_packing.iter().zip(&without_packing) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(tables.tuned, set.tune_family(2));
        // `tune_family` revisits the same 20 delta grid points that
        // `delta_grid` already evaluated, so every one of its delta
        // evaluations must have been served from the fingerprint cache —
        // and the assertions above proved the reuse is bit-exact.
        assert!(
            set.shared_delta_evaluations() >= delta_strategies().len(),
            "expected the second delta sweep to reuse cached schedules, \
             got {} shared evaluations",
            set.shared_delta_evaluations()
        );
    }

    #[test]
    fn delta_grid_points_share_schedules_when_integer_bounds_collide() {
        // On a 2-processor platform every allocation is 1 or 2, so
        // `⌊maxdelta·k⌋` cannot tell 0.0 from 0.25 (nor 0.5 from 0.75)
        // apart and Figure 4's 20 grid points collapse onto a handful of
        // distinct integer-bound fingerprints.
        let platform = Platform::from_spec(&ClusterSpec::flat("duo", 2, 1.0));
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 8), &platform, 2)
                .into_iter()
                .take(4)
                .collect();
        let sizes = distinct_alloc_sizes(&prepared);
        assert!(
            sizes.iter().all(|&k| (1..=2).contains(&k)),
            "sizes {sizes:?}"
        );
        let strategies = delta_strategies();
        // Oracle: every grid point mapped and simulated independently.
        let naive = evaluate_strategies(&prepared, &platform, &strategies, 2);

        let set = TuningSet::new(&prepared, &platform, 2);
        let grid = set.delta_grid(2);

        // Exactly the colliding points were answered from the cache.
        let distinct: std::collections::BTreeSet<Vec<(u32, u32)>> = strategies
            .iter()
            .map(|s| match s {
                MappingStrategy::RatsDelta(p) => delta_fingerprint(*p, &sizes),
                _ => unreachable!("delta_strategies yields only delta points"),
            })
            .collect();
        assert!(distinct.len() < strategies.len(), "no collisions to share");
        assert_eq!(
            set.shared_delta_evaluations(),
            strategies.len() - distinct.len()
        );

        // And the shared results are bit-identical to the oracle's.
        for (i, runs) in naive.iter().enumerate() {
            let mean = mean_relative(runs, set.baseline());
            let cached = grid[i / MAXDELTA_GRID.len()][i % MAXDELTA_GRID.len()];
            assert_eq!(cached.to_bits(), mean.to_bits(), "grid point {i}");
        }
    }

    #[test]
    fn paper_tuned_covers_all_combinations() {
        for cluster in ["chti", "grillon", "grelon"] {
            for family in AppFamily::PAPER {
                let t = paper_tuned(family, cluster);
                assert!(t.maxdelta <= 1.0 && t.minrho > 0.0);
            }
        }
    }

    #[test]
    fn tune_family_returns_grid_values() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 4), &platform, 2)
                .into_iter()
                .take(3)
                .collect();
        let t = tune_family(&prepared, &platform, 2);
        assert!(MINDELTA_GRID.contains(&t.mindelta));
        assert!(MAXDELTA_GRID.contains(&t.maxdelta));
        assert!(MINRHO_GRID.contains(&t.minrho));
    }

    #[test]
    fn delta_grid_has_expected_shape() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 5), &platform, 2)
                .into_iter()
                .take(2)
                .collect();
        let set = TuningSet::new(&prepared, &platform, 2);
        let grid = set.delta_grid(2);
        assert_eq!(grid.len(), MINDELTA_GRID.len());
        for row in &grid {
            assert_eq!(row.len(), MAXDELTA_GRID.len());
            for &v in row {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }

    #[test]
    fn tuning_set_shares_one_baseline_across_sweeps() {
        let platform = Platform::from_spec(&ClusterSpec::chti());
        let prepared: Vec<PreparedScenario> =
            PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 6), &platform, 2)
                .into_iter()
                .take(2)
                .collect();
        let set = TuningSet::new(&prepared, &platform, 2);
        assert_eq!(set.baseline().len(), prepared.len());
        assert_eq!(set.baseline(), hcpa_baseline(&prepared, &platform, 2));
        // Both sweeps run off the same baseline; HCPA-relative HCPA is 1.
        let rel = set.avg_relative_makespan(MappingStrategy::Hcpa, 2);
        assert!((rel - 1.0).abs() < 1e-12, "rel = {rel}");
        let (with_packing, without_packing) = set.rho_curves(2);
        assert_eq!(with_packing.len(), MINRHO_GRID.len());
        assert_eq!(without_packing.len(), MINRHO_GRID.len());
    }
}
