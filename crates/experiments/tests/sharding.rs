//! Sharded execution is provably equivalent to the in-process path:
//! `merge(shards 0..n)` reproduces the single-process `AlgoResults` (and
//! tuning tables) bit for bit, for n ∈ {1, 2, 3}, including after a
//! crash-resume; mixed seeds are rejected.

use std::fs;
use std::path::{Path, PathBuf};

use rats_experiments::grid::ShardSpec;
use rats_experiments::shard::{merge_shards, read_shard_file, run_shard, MergeError};
use rats_experiments::spec::{ExperimentSpec, SpecOutcome, SuiteSpec};
use rats_experiments::tuning;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rats-sharding-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn mini_spec(name: &str, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::naive(name, "grillon", SuiteSpec::Mini, seed);
    spec.threads = Some(2);
    spec
}

/// Runs every shard of an n-way split into `dir` and returns the files.
fn run_all_shards(spec: &ExperimentSpec, n: usize, dir: &Path) -> Vec<PathBuf> {
    (0..n)
        .map(|i| {
            let mut shard_spec = spec.clone();
            shard_spec.shard = Some(ShardSpec::new(i, n));
            let run = run_shard(&shard_spec, dir, None).unwrap();
            assert_eq!(run.executed + run.skipped, run.total);
            run.path
        })
        .collect()
}

fn assert_outcomes_bit_identical(merged: &SpecOutcome, reference: &SpecOutcome) {
    assert_eq!(merged.clusters.len(), reference.clusters.len());
    for (mc, rc) in merged.clusters.iter().zip(&reference.clusters) {
        assert_eq!(mc.cluster, rc.cluster);
        assert_eq!(mc.results.len(), rc.results.len());
        for (ma, ra) in mc.results.iter().zip(&rc.results) {
            assert_eq!(ma.name, ra.name);
            assert_eq!(ma.runs.len(), ra.runs.len());
            for (mr, rr) in ma.runs.iter().zip(&ra.runs) {
                assert_eq!(mr.scenario_id, rr.scenario_id);
                assert_eq!(mr.family, rr.family);
                assert_eq!(
                    mr.makespan.to_bits(),
                    rr.makespan.to_bits(),
                    "makespan differs for {} scenario {}",
                    ma.name,
                    mr.scenario_id
                );
                assert_eq!(mr.work.to_bits(), rr.work.to_bits());
            }
        }
    }
    // The rendered reports are therefore identical too (what the CI smoke
    // step diffs).
    assert_eq!(merged.render(), reference.render());
}

/// A custom workload campaign: three synthesized DAG families on a star
/// platform, a slow bus and one cell of a heterogeneous-speed sweep.
fn custom_spec(name: &str, seed: u64) -> ExperimentSpec {
    let toml = format!(
        "name = \"{name}\"\n\
         seed = {seed}\n\
         suite = \"custom\"\n\
         total = 5\n\
         threads = 2\n\
         clusters = [\"edge\", \"ether\", \"het-p8x4\"]\n\
         \n\
         [[strategies]]\n\
         kind = \"hcpa\"\n\
         \n\
         [[strategies]]\n\
         kind = \"delta\"\n\
         mindelta = 0.5\n\
         maxdelta = 0.5\n\
         \n\
         [[families]]\n\
         kind = \"fork-join\"\n\
         count = 2\n\
         stages = \"range(2, 3)\"\n\
         branches = 4\n\
         \n\
         [[families]]\n\
         kind = \"irregular\"\n\
         n = [20, 30]\n\
         width = \"uniform(0.3, 0.7)\"\n\
         \n\
         [[families]]\n\
         kind = \"in-tree\"\n\
         depth = 3\n\
         ccr = \"loguniform(0.5, 2.0)\"\n\
         \n\
         [[topologies]]\n\
         name = \"edge\"\n\
         kind = \"star\"\n\
         procs = 9\n\
         backbone_mbps = 250.0\n\
         \n\
         [[topologies]]\n\
         name = \"ether\"\n\
         kind = \"bus\"\n\
         procs = 6\n\
         backbone_mbps = 12.5\n\
         \n\
         [[topologies]]\n\
         name = \"het\"\n\
         kind = \"flat\"\n\
         procs = [8, 16]\n\
         gflops = [2.0, 4.0]\n"
    );
    ExperimentSpec::from_toml(&toml).unwrap()
}

#[test]
fn custom_suite_shard_count_invariance() {
    // The acceptance invariant for SuiteSpec::Custom: spec → shard → merge
    // reproduces spec.run() bit for bit, at every shard granularity, on
    // generated star/bus/heterogeneous clusters.
    let spec = custom_spec("custom-invariance", 2026);
    let reference = spec.run().unwrap();
    for n in 1..=3usize {
        let dir = temp_dir(&format!("custom{n}"));
        let files = run_all_shards(&spec, n, &dir);
        let merged = merge_shards(&files).unwrap();
        assert_outcomes_bit_identical(&merged, &reference);
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn custom_campaigns_with_different_workloads_do_not_merge() {
    // Same name, seed and counts — but different family parameters, so the
    // spec hashes (and suite tags) differ and merge must refuse.
    let dir_a = temp_dir("custom-a");
    let dir_b = temp_dir("custom-b");
    let a = custom_spec("mixed", 7);
    let mut b = custom_spec("mixed", 7);
    if let rats_experiments::spec::SuiteSpec::Custom(w) = &mut b.suite {
        w.families[0].branches = rats_workloads::IntDist::Fixed(5);
    }
    assert_ne!(a.spec_hash(), b.spec_hash());
    let fa = run_all_shards(&a, 2, &dir_a);
    let fb = run_all_shards(&b, 2, &dir_b);
    match merge_shards(&[fa[0].clone(), fb[1].clone()]) {
        Err(MergeError::SpecMismatch { .. }) => {}
        other => panic!("expected SpecMismatch, got {other:?}"),
    }
    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn shard_count_invariance() {
    let spec = mini_spec("invariance", 77);
    let reference = spec.run().unwrap();
    for n in 1..=3usize {
        let dir = temp_dir(&format!("inv{n}"));
        let files = run_all_shards(&spec, n, &dir);
        assert_eq!(files.len(), n);
        let merged = merge_shards(&files).unwrap();
        assert_outcomes_bit_identical(&merged, &reference);
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn mixed_granularity_shards_merge() {
    // A 2-way and a 3-way split of the same campaign address the same job
    // ids; any covering union merges.
    let spec = mini_spec("granularity", 78);
    let reference = spec.run().unwrap();
    let dir2 = temp_dir("gran2");
    let dir3 = temp_dir("gran3");
    let mut files = run_all_shards(&spec, 2, &dir2);
    files.extend(run_all_shards(&spec, 3, &dir3));
    let merged = merge_shards(&files).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);
    fs::remove_dir_all(&dir2).unwrap();
    fs::remove_dir_all(&dir3).unwrap();
}

#[test]
fn resume_after_partial_shard_and_truncated_tail() {
    let spec = mini_spec("resume", 79);
    let reference = spec.run().unwrap();
    let dir = temp_dir("resume");
    let files = run_all_shards(&spec, 2, &dir);

    // Simulate a crash: keep the manifest + 3 records of shard 0 and half
    // of a fourth record line.
    let text = fs::read_to_string(&files[0]).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 5, "mini shard should have several records");
    let mut crashed = lines[..4].join("\n");
    crashed.push('\n');
    crashed.push_str(&lines[4][..lines[4].len() / 2]);
    fs::write(&files[0], &crashed).unwrap();

    // Resume: the partial line is dropped, done jobs are skipped, the rest
    // re-executes.
    let mut shard0 = spec.clone();
    shard0.shard = Some(ShardSpec::new(0, 2));
    let resumed = run_shard(&shard0, &dir, None).unwrap();
    assert_eq!(resumed.skipped, 3);
    assert_eq!(resumed.executed, resumed.total - 3);

    let loaded = read_shard_file(&files[0]).unwrap();
    assert!(!loaded.truncated_tail);

    let merged = merge_shards(&files).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unterminated_final_record_is_not_glued_onto_by_resume() {
    // A crash can land *between* a record's bytes and its trailing newline:
    // the line parses, but accepting it would make the next append glue two
    // records onto one line. The uncommitted record must re-run instead.
    let spec = mini_spec("unterminated", 82);
    let reference = spec.run().unwrap();
    let dir = temp_dir("unterminated");
    let files = run_all_shards(&spec, 2, &dir);

    let text = fs::read_to_string(&files[0]).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Manifest + 3 complete records + a 4th record missing its newline.
    let crashed = lines[..5].join("\n");
    fs::write(&files[0], &crashed).unwrap();
    let loaded = read_shard_file(&files[0]).unwrap();
    assert!(loaded.truncated_tail);
    assert_eq!(loaded.records.len(), 3);

    let mut shard0 = spec.clone();
    shard0.shard = Some(ShardSpec::new(0, 2));
    let resumed = run_shard(&shard0, &dir, None).unwrap();
    assert_eq!(resumed.skipped, 3);

    // Every line of the repaired file parses — nothing got glued.
    let repaired = fs::read_to_string(&files[0]).unwrap();
    assert!(repaired.ends_with('\n'));
    for line in repaired.lines().skip(1) {
        rats_experiments::record::RunRecord::from_jsonl(line).unwrap();
    }
    let merged = merge_shards(&files).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_before_manifest_commit_recovers() {
    // A worker that dies between File::create and the manifest write leaves
    // an empty (or partial single-line) file; the next run must start the
    // shard over instead of failing forever on the corrupt line 1.
    let spec = mini_spec("premanifest", 83);
    let reference = spec.run().unwrap();
    let dir = temp_dir("premanifest");
    let mut shard0 = spec.clone();
    shard0.shard = Some(ShardSpec::new(0, 2));

    for wreck in ["", "{\"kind\":\"mani"] {
        let path = dir.join("premanifest-shard-0-of-2.jsonl");
        fs::write(&path, wreck).unwrap();
        let run = run_shard(&shard0, &dir, None).unwrap();
        assert_eq!(run.skipped, 0);
        assert_eq!(run.executed, run.total);
        assert!(read_shard_file(&path).is_ok());
    }

    let mut shard1 = spec.clone();
    shard1.shard = Some(ShardSpec::new(1, 2));
    let s1 = run_shard(&shard1, &dir, None).unwrap();
    let s0 = dir.join("premanifest-shard-0-of-2.jsonl");
    let merged = merge_shards(&[s0, s1.path]).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rerunning_a_complete_shard_is_a_no_op() {
    let spec = mini_spec("noop", 80);
    let dir = temp_dir("noop");
    let files = run_all_shards(&spec, 2, &dir);
    let before = fs::read_to_string(&files[1]).unwrap();
    let mut shard1 = spec.clone();
    shard1.shard = Some(ShardSpec::new(1, 2));
    let rerun = run_shard(&shard1, &dir, None).unwrap();
    assert_eq!(rerun.executed, 0);
    assert_eq!(rerun.skipped, rerun.total);
    assert_eq!(fs::read_to_string(&files[1]).unwrap(), before);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_seed_shards_are_rejected() {
    // BASE_SEED interplay: the seed generates the scenario population, so
    // every shard file embeds it and merge refuses to mix populations.
    let dir = temp_dir("seeds");
    let a = run_all_shards(&mini_spec("seeds", 101), 2, &dir);
    // Same name, different seed: same file-name scheme would collide, so
    // run the second campaign into its own directory.
    let dir_b = temp_dir("seeds-b");
    let b = run_all_shards(&mini_spec("seeds", 202), 2, &dir_b);
    let mixed = vec![a[0].clone(), b[1].clone()];
    match merge_shards(&mixed) {
        Err(MergeError::SeedMismatch { first, other, .. }) => {
            assert_eq!(first, 101);
            assert_eq!(other, 202);
        }
        other => panic!("expected SeedMismatch, got {other:?}"),
    }
    // The executor equally refuses to resume a shard file under a
    // different seed.
    let mut reseeded = mini_spec("seeds", 303);
    reseeded.shard = Some(ShardSpec::new(0, 2));
    assert!(run_shard(&reseeded, &dir, None).is_err());
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn merge_reports_holes() {
    let spec = mini_spec("holes", 104);
    let dir = temp_dir("holes");
    let mut with_shard = spec.clone();
    with_shard.shard = Some(ShardSpec::new(0, 3));
    let run = run_shard(&with_shard, &dir, None).unwrap();
    match merge_shards(&[run.path]) {
        Err(MergeError::MissingJobs { missing, total, .. }) => {
            assert_eq!(total, spec.grid().len());
            assert_eq!(missing, total - run.total as u64);
        }
        other => panic!("expected MissingJobs, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_tuning_sweep_matches_in_process_tables_bit_for_bit() {
    // The tuning grids flow through the same job grid: a sweep campaign
    // executed in shards merges into tables identical to TuningSet's.
    let mut spec = mini_spec("sweep", 91);
    spec.strategies = tuning::sweep_specs();
    let reference = spec.run().unwrap();
    let dir = temp_dir("sweep");
    let files = run_all_shards(&spec, 3, &dir);
    let merged = merge_shards(&files).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);

    let merged_tables = tuning::sweep_tables(&merged.clusters[0].results);
    let reference_tables = tuning::sweep_tables(&reference.clusters[0].results);
    assert_eq!(merged_tables, reference_tables);

    // And against the in-process TuningSet sweeps over the same scenarios.
    use rats_experiments::campaign::PreparedScenario;
    use rats_model::CostParams;
    use rats_platform::{ClusterSpec, Platform};
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let prepared = PreparedScenario::prepare(
        rats_daggen::suite::mini_suite(&CostParams::paper(), spec.seed),
        &platform,
        2,
    );
    let set = tuning::TuningSet::new(&prepared, &platform, 2);
    let grid = set.delta_grid(2);
    for (row_a, row_b) in merged_tables.delta_grid.iter().zip(&grid) {
        for (a, b) in row_a.iter().zip(row_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(merged_tables.tuned, set.tune_family(2));
    fs::remove_dir_all(&dir).unwrap();
}

/// Cooperative cancellation through [`ShardHooks::cancel`]: a set flag
/// aborts before any work, a flag set mid-run leaves a resumable file, and
/// the resumed campaign merges bit-identical to the uncancelled one.
#[test]
fn cancelled_shard_aborts_resumably() {
    use rats_experiments::shard::{run_shard_hooked, ShardHooks};
    use std::sync::atomic::{AtomicBool, Ordering};

    // Two clusters: the cancel flag is observed between write chunks and
    // between clusters, and a whole mini cluster fits one chunk — so the
    // mid-run cancel below stops at the cluster boundary.
    let mut spec = mini_spec("cancel", 904);
    spec.clusters.push("chti".to_string());
    let reference = spec.run().unwrap();
    let dir = temp_dir("cancel");

    // Pre-set flag: nothing executes, the run reports aborted.
    let cancel = AtomicBool::new(true);
    let run = run_shard_hooked(
        &spec,
        &dir,
        Some(2),
        None,
        None,
        ShardHooks {
            cancel: Some(&cancel),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(run.aborted);
    assert_eq!(run.executed, 0, "a pre-set cancel stops before any chunk");

    // Cancel from the on_record hook: some records commit, then the run
    // stops between chunks — still aborted, still resumable.
    cancel.store(false, Ordering::SeqCst);
    let mut seen = 0usize;
    let mut on_record = |_: &rats_experiments::record::RunRecord| {
        seen += 1;
        cancel.store(true, Ordering::SeqCst);
    };
    let run = run_shard_hooked(
        &spec,
        &dir,
        Some(2),
        None,
        None,
        ShardHooks {
            on_record: Some(&mut on_record),
            cancel: Some(&cancel),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(run.aborted);
    assert!(run.executed > 0 && run.executed < run.total);
    assert_eq!(run.executed, seen, "every committed record was streamed");

    // Resume with the flag cleared: the rest executes, nothing re-runs.
    cancel.store(false, Ordering::SeqCst);
    let resumed = run_shard_hooked(
        &spec,
        &dir,
        Some(2),
        None,
        None,
        ShardHooks {
            cancel: Some(&cancel),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!resumed.aborted);
    assert_eq!(resumed.skipped, run.executed);
    assert_eq!(resumed.executed + resumed.skipped, resumed.total);
    let merged = merge_shards(std::slice::from_ref(&resumed.path)).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);
    fs::remove_dir_all(&dir).unwrap();
}
