//! Cross-run journal diff: did two campaigns make the same decisions?
//!
//! Wall-clock fields can never match between runs, so the comparison is
//! over *normalized* streams: writers in lexicographic order, each
//! writer's records in sequence order, every event reduced to its
//! deterministic projection (durations stripped — see
//! [`Event::normalized`](crate::event::Event::normalized)). Two
//! identically-seeded campaigns dispatched the same way produce identical
//! normalized streams; the first index where the aligned streams differ is
//! the first divergent scheduling decision.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::Event;
use crate::reader::Segment;

/// Flattens verified segments into the normalized stream: one line per
/// event, `"<writer>: <normalized event>"`, writers sorted by name.
pub fn normalize(segments: &[Segment]) -> Vec<String> {
    let mut sorted: Vec<&Segment> = segments.iter().collect();
    sorted.sort_by(|a, b| a.writer.cmp(&b.writer));
    sorted
        .iter()
        .flat_map(|seg| {
            seg.records
                .iter()
                .map(|rec| format!("{}: {}", seg.writer, rec.event.normalized()))
        })
        .collect()
}

/// The first point where two normalized streams disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the aligned streams.
    pub index: usize,
    /// Run A's event at that index (`None` if A's stream ended).
    pub a: Option<String>,
    /// Run B's event at that index (`None` if B's stream ended).
    pub b: Option<String>,
}

/// Per-job scheduling delta between two runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobDelta {
    /// The queue job index.
    pub job: u64,
    /// Claim events for the job in run A / run B.
    pub a_claims: u64,
    /// Claim events for the job in run B.
    pub b_claims: u64,
    /// Lease reclaims for the job in run A.
    pub a_reclaims: u64,
    /// Lease reclaims for the job in run B.
    pub b_reclaims: u64,
    /// Workers that ever claimed the job in run A (sorted).
    pub a_workers: Vec<String>,
    /// Workers that ever claimed the job in run B (sorted).
    pub b_workers: Vec<String>,
}

/// The full comparison of two campaign journals.
#[derive(Debug, Clone)]
pub struct JournalDiff {
    /// Normalized event count of run A.
    pub a_len: usize,
    /// Normalized event count of run B.
    pub b_len: usize,
    /// First divergent index, if the streams differ anywhere.
    pub divergence: Option<Divergence>,
    /// Jobs whose claim/reclaim history differs, in job order.
    pub job_deltas: Vec<JobDelta>,
}

impl JournalDiff {
    /// Whether the two runs made identical decisions.
    pub fn is_empty(&self) -> bool {
        self.divergence.is_none()
    }
}

#[derive(Default, Clone)]
struct JobTally {
    claims: u64,
    reclaims: u64,
    workers: std::collections::BTreeSet<String>,
}

fn tally(segments: &[Segment]) -> BTreeMap<u64, JobTally> {
    let mut jobs: BTreeMap<u64, JobTally> = BTreeMap::new();
    for seg in segments {
        for rec in &seg.records {
            match &rec.event {
                Event::JobClaimed { job, worker } => {
                    let t = jobs.entry(*job).or_default();
                    t.claims += 1;
                    t.workers.insert(worker.clone());
                }
                Event::LeaseReclaimed { job, .. } => {
                    jobs.entry(*job).or_default().reclaims += 1;
                }
                _ => {}
            }
        }
    }
    jobs
}

/// Compares two campaigns' verified segments.
pub fn diff(a: &[Segment], b: &[Segment]) -> JournalDiff {
    let na = normalize(a);
    let nb = normalize(b);
    let mut divergence = None;
    for i in 0..na.len().max(nb.len()) {
        let ea = na.get(i);
        let eb = nb.get(i);
        if ea != eb {
            divergence = Some(Divergence {
                index: i,
                a: ea.cloned(),
                b: eb.cloned(),
            });
            break;
        }
    }

    let ta = tally(a);
    let tb = tally(b);
    let mut job_deltas = Vec::new();
    let jobs: std::collections::BTreeSet<u64> = ta.keys().chain(tb.keys()).copied().collect();
    for job in jobs {
        let da = ta.get(&job).cloned().unwrap_or_default();
        let db = tb.get(&job).cloned().unwrap_or_default();
        let delta = JobDelta {
            job,
            a_claims: da.claims,
            b_claims: db.claims,
            a_reclaims: da.reclaims,
            b_reclaims: db.reclaims,
            a_workers: da.workers.into_iter().collect(),
            b_workers: db.workers.into_iter().collect(),
        };
        let same = delta.a_claims == delta.b_claims
            && delta.a_reclaims == delta.b_reclaims
            && delta.a_workers == delta.b_workers;
        if !same {
            job_deltas.push(delta);
        }
    }

    JournalDiff {
        a_len: na.len(),
        b_len: nb.len(),
        divergence,
        job_deltas,
    }
}

impl fmt::Display for JournalDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(
                f,
                "journals identical: {} events, zero divergence",
                self.a_len
            );
        }
        let d = self.divergence.as_ref().expect("non-empty diff diverges");
        writeln!(
            f,
            "journals diverge at event {} ({} vs {} events):",
            d.index, self.a_len, self.b_len
        )?;
        writeln!(f, "  A: {}", d.a.as_deref().unwrap_or("<end of stream>"))?;
        write!(f, "  B: {}", d.b.as_deref().unwrap_or("<end of stream>"))?;
        for delta in &self.job_deltas {
            write!(
                f,
                "\n  job {}: claims {} vs {}, reclaims {} vs {}, workers [{}] vs [{}]",
                delta.job,
                delta.a_claims,
                delta.b_claims,
                delta.a_reclaims,
                delta.b_reclaims,
                delta.a_workers.join(", "),
                delta.b_workers.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_journal;
    use crate::writer::Journal;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rats-diff-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn campaign(root: &Path, reclaim_job: Option<u64>) {
        let mut d = Journal::open(root, "dispatcher", "h");
        d.emit(Event::QueueInit { jobs: 2 });
        let mut w = Journal::open(root, "w0", "h");
        w.emit(Event::JobClaimed {
            job: 0,
            worker: "w0".into(),
        });
        if let Some(job) = reclaim_job {
            d.emit(Event::LeaseReclaimed {
                job,
                worker: "w0".into(),
            });
            w.emit(Event::JobClaimed {
                job,
                worker: "w0".into(),
            });
        }
        w.emit(Event::JobFinished {
            job: 0,
            executed: 5,
            skipped: 0,
            elapsed_ms: 1234, // differs per run; normalization hides it
        });
        w.emit(Event::JobDone {
            job: 0,
            worker: "w0".into(),
        });
    }

    #[test]
    fn identical_runs_diff_empty_despite_timing() {
        let (ra, rb) = (temp_root("id-a"), temp_root("id-b"));
        campaign(&ra, None);
        std::thread::sleep(std::time::Duration::from_millis(5));
        campaign(&rb, None);
        let d = diff(&read_journal(&ra).unwrap(), &read_journal(&rb).unwrap());
        assert!(d.is_empty(), "{d}");
        assert!(d.job_deltas.is_empty());
        assert!(d.to_string().contains("zero divergence"));
        std::fs::remove_dir_all(&ra).unwrap();
        std::fs::remove_dir_all(&rb).unwrap();
    }

    #[test]
    fn divergent_runs_pinpoint_the_first_difference() {
        let (ra, rb) = (temp_root("div-a"), temp_root("div-b"));
        campaign(&ra, None);
        campaign(&rb, Some(0));
        let d = diff(&read_journal(&ra).unwrap(), &read_journal(&rb).unwrap());
        assert!(!d.is_empty());
        let div = d.divergence.unwrap();
        // Streams agree on [dispatcher queue-init]; B's dispatcher then
        // reclaims where A's stream moves on to the worker segment.
        assert_eq!(div.index, 1);
        assert!(div.b.unwrap().contains("lease-reclaimed"));
        assert_eq!(d.job_deltas.len(), 1);
        assert_eq!(d.job_deltas[0].job, 0);
        assert_eq!(d.job_deltas[0].a_claims, 1);
        assert_eq!(d.job_deltas[0].b_claims, 2);
        assert_eq!(d.job_deltas[0].b_reclaims, 1);
        std::fs::remove_dir_all(&ra).unwrap();
        std::fs::remove_dir_all(&rb).unwrap();
    }
}
