//! The event vocabulary: every state transition the dispatch stack can
//! take, as plain data with a canonical byte-stable encoding.
//!
//! An [`Event`] is what a subsystem *emits*; an [`EventRecord`] is what the
//! journal *stores* — the event plus its chain header (sequence number,
//! wall-clock stamp, predecessor hash, own hash). The encoding is a JSON
//! object whose keys are sorted (the vendored `serde` [`Value::Table`] is a
//! `BTreeMap`), so the same record always serializes to the same bytes —
//! the property the hash chain and the cross-run diff both stand on.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// One campaign state transition.
///
/// Shard-job granularity: `job` is always the *queue* job index (= shard
/// index), the unit the work queue leases out. Wall-clock durations
/// (`elapsed_ms`) are measured by the emitting process and therefore free
/// of cross-host clock skew; absolute stamps live in the record envelope,
/// not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The dispatcher initialized (or idempotently re-opened) the work
    /// queue with this many shard jobs.
    QueueInit {
        /// Shard-job count of the campaign.
        jobs: u64,
    },
    /// The dispatcher ensured the shared scenario cache: `written` is
    /// `false` when a valid cache already existed and was reused.
    CacheReady {
        /// Whether this dispatch generated and wrote the cache.
        written: bool,
    },
    /// A worker loaded its scenario population (from the shared cache, or
    /// by regenerating after a miss).
    PopulationLoaded {
        /// Whether the population came from the cache file.
        from_cache: bool,
    },
    /// The dispatcher spawned a worker process.
    WorkerSpawned {
        /// The worker's id.
        worker: String,
        /// Process generation of the slot (1 = original, 2 = first
        /// respawn, …).
        generation: u64,
    },
    /// A worker process exited while work remained.
    WorkerDied {
        /// The worker's id.
        worker: String,
        /// The exit status, as reported by the OS.
        exit: String,
    },
    /// The dispatcher replaced a dead worker with a fresh process.
    WorkerRespawned {
        /// The dead worker's id.
        worker: String,
        /// The replacement's id.
        replacement: String,
    },
    /// A worker won the atomic rename and holds the job's lease.
    JobClaimed {
        /// Queue job index.
        job: u64,
        /// The claiming worker.
        worker: String,
    },
    /// A worker seeded its shard file from a dead predecessor's partial
    /// output instead of recomputing from scratch.
    AdoptedPartial {
        /// Queue job index.
        job: u64,
        /// The adopting worker.
        worker: String,
        /// The worker directory the partial file came from.
        donor: String,
        /// Committed records the adopted file already held.
        records: u64,
    },
    /// The shard executor began a job (emitted by `rats-experiments`).
    JobStarted {
        /// Queue job index (= shard index).
        job: u64,
        /// Grid jobs in the shard.
        total: u64,
        /// Grid jobs already on disk and skipped (resume).
        skipped: u64,
    },
    /// The shard executor committed a batch of grid-job records.
    ChunkDone {
        /// Queue job index.
        job: u64,
        /// Grid jobs in the batch.
        jobs: u64,
        /// Wall-clock time the batch took, by the emitter's clock.
        elapsed_ms: u64,
    },
    /// The shard executor finished a job (emitted by `rats-experiments`).
    JobFinished {
        /// Queue job index.
        job: u64,
        /// Grid jobs executed by this run.
        executed: u64,
        /// Grid jobs skipped (already on disk).
        skipped: u64,
        /// Wall-clock time for the whole shard, by the emitter's clock.
        elapsed_ms: u64,
    },
    /// A worker renamed its lease to `.done` — the job is complete.
    JobDone {
        /// Queue job index.
        job: u64,
        /// The completing worker.
        worker: String,
    },
    /// A worker finished a shard but its lease had been reclaimed — the
    /// job will be (or was) re-executed elsewhere.
    LeaseLost {
        /// Queue job index.
        job: u64,
        /// The worker that lost the lease.
        worker: String,
    },
    /// The dispatcher returned a silent worker's job to the todo state.
    LeaseReclaimed {
        /// Queue job index.
        job: u64,
        /// The lease holder that went silent.
        worker: String,
    },
    /// The dispatcher re-seeded a job that had lost every queue file.
    JobReseeded {
        /// Queue job index.
        job: u64,
    },
    /// The dispatcher swept contradictory queue files (done beats all).
    ConflictsSwept {
        /// Files removed.
        removed: u64,
    },
    /// The final merge validated coverage and reassembled the outcome.
    MergeCompleted {
        /// Shard files merged.
        shard_files: u64,
        /// Grid jobs covered by the merge.
        records: u64,
    },
    /// A long-lived server accepted a campaign submission over the wire
    /// (`campaign serve`): the request materialized this campaign root.
    CampaignSubmitted {
        /// The submitting client's self-reported name.
        client: String,
        /// Grid jobs in the submitted campaign.
        jobs: u64,
    },
    /// The server streamed the campaign's records back to the submitting
    /// client — live as they landed, plus disk backfill for resumed jobs.
    ResultsStreamed {
        /// Queue job index the stream covered.
        job: u64,
        /// Records delivered to the client.
        records: u64,
    },
    /// The server finished a submission end to end: executed (or resumed),
    /// streamed, merged and reported.
    CampaignCompleted {
        /// Grid jobs covered by the final merge.
        records: u64,
    },
}

impl Event {
    /// The event's kind tag (the `event` field of the encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueueInit { .. } => "queue-init",
            Event::CacheReady { .. } => "cache-ready",
            Event::PopulationLoaded { .. } => "population-loaded",
            Event::WorkerSpawned { .. } => "worker-spawned",
            Event::WorkerDied { .. } => "worker-died",
            Event::WorkerRespawned { .. } => "worker-respawned",
            Event::JobClaimed { .. } => "job-claimed",
            Event::AdoptedPartial { .. } => "adopted-partial",
            Event::JobStarted { .. } => "job-started",
            Event::ChunkDone { .. } => "chunk-done",
            Event::JobFinished { .. } => "job-finished",
            Event::JobDone { .. } => "job-done",
            Event::LeaseLost { .. } => "lease-lost",
            Event::LeaseReclaimed { .. } => "lease-reclaimed",
            Event::JobReseeded { .. } => "job-reseeded",
            Event::ConflictsSwept { .. } => "conflicts-swept",
            Event::MergeCompleted { .. } => "merge-completed",
            Event::CampaignSubmitted { .. } => "campaign-submitted",
            Event::ResultsStreamed { .. } => "results-streamed",
            Event::CampaignCompleted { .. } => "campaign-completed",
        }
    }

    /// The queue job this event concerns, if any.
    pub fn job(&self) -> Option<u64> {
        match self {
            Event::JobClaimed { job, .. }
            | Event::AdoptedPartial { job, .. }
            | Event::JobStarted { job, .. }
            | Event::ChunkDone { job, .. }
            | Event::JobFinished { job, .. }
            | Event::JobDone { job, .. }
            | Event::LeaseLost { job, .. }
            | Event::LeaseReclaimed { job, .. }
            | Event::JobReseeded { job }
            | Event::ResultsStreamed { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// The deterministic projection of the event: everything except
    /// wall-clock durations, which legitimately differ between two
    /// otherwise identical runs. Two campaigns whose normalized streams
    /// match made the same decisions; the cross-run diff compares these.
    pub fn normalized(&self) -> String {
        match self {
            Event::ChunkDone { job, jobs, .. } => {
                format!("chunk-done job={job} jobs={jobs}")
            }
            Event::JobFinished {
                job,
                executed,
                skipped,
                ..
            } => format!("job-finished job={job} executed={executed} skipped={skipped}"),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::QueueInit { jobs } => write!(f, "queue-init jobs={jobs}"),
            Event::CacheReady { written } => write!(f, "cache-ready written={written}"),
            Event::PopulationLoaded { from_cache } => {
                write!(f, "population-loaded from_cache={from_cache}")
            }
            Event::WorkerSpawned { worker, generation } => {
                write!(f, "worker-spawned worker={worker} generation={generation}")
            }
            Event::WorkerDied { worker, exit } => {
                write!(f, "worker-died worker={worker} exit=[{exit}]")
            }
            Event::WorkerRespawned {
                worker,
                replacement,
            } => write!(
                f,
                "worker-respawned worker={worker} replacement={replacement}"
            ),
            Event::JobClaimed { job, worker } => {
                write!(f, "job-claimed job={job} worker={worker}")
            }
            Event::AdoptedPartial {
                job,
                worker,
                donor,
                records,
            } => write!(
                f,
                "adopted-partial job={job} worker={worker} donor={donor} records={records}"
            ),
            Event::JobStarted {
                job,
                total,
                skipped,
            } => write!(f, "job-started job={job} total={total} skipped={skipped}"),
            Event::ChunkDone {
                job,
                jobs,
                elapsed_ms,
            } => write!(
                f,
                "chunk-done job={job} jobs={jobs} elapsed_ms={elapsed_ms}"
            ),
            Event::JobFinished {
                job,
                executed,
                skipped,
                elapsed_ms,
            } => write!(
                f,
                "job-finished job={job} executed={executed} skipped={skipped} \
                 elapsed_ms={elapsed_ms}"
            ),
            Event::JobDone { job, worker } => write!(f, "job-done job={job} worker={worker}"),
            Event::LeaseLost { job, worker } => {
                write!(f, "lease-lost job={job} worker={worker}")
            }
            Event::LeaseReclaimed { job, worker } => {
                write!(f, "lease-reclaimed job={job} worker={worker}")
            }
            Event::JobReseeded { job } => write!(f, "job-reseeded job={job}"),
            Event::ConflictsSwept { removed } => write!(f, "conflicts-swept removed={removed}"),
            Event::MergeCompleted {
                shard_files,
                records,
            } => write!(
                f,
                "merge-completed shard_files={shard_files} records={records}"
            ),
            Event::CampaignSubmitted { client, jobs } => {
                write!(f, "campaign-submitted client={client} jobs={jobs}")
            }
            Event::ResultsStreamed { job, records } => {
                write!(f, "results-streamed job={job} records={records}")
            }
            Event::CampaignCompleted { records } => {
                write!(f, "campaign-completed records={records}")
            }
        }
    }
}

impl Serialize for Event {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("event", self.kind());
        match self {
            Event::QueueInit { jobs } => {
                t.insert("jobs", jobs);
            }
            Event::CacheReady { written } => {
                t.insert("written", written);
            }
            Event::PopulationLoaded { from_cache } => {
                t.insert("from_cache", from_cache);
            }
            Event::WorkerSpawned { worker, generation } => {
                t.insert("worker", worker).insert("generation", generation);
            }
            Event::WorkerDied { worker, exit } => {
                t.insert("worker", worker).insert("exit", exit);
            }
            Event::WorkerRespawned {
                worker,
                replacement,
            } => {
                t.insert("worker", worker)
                    .insert("replacement", replacement);
            }
            Event::JobClaimed { job, worker }
            | Event::JobDone { job, worker }
            | Event::LeaseLost { job, worker }
            | Event::LeaseReclaimed { job, worker } => {
                t.insert("job", job).insert("worker", worker);
            }
            Event::AdoptedPartial {
                job,
                worker,
                donor,
                records,
            } => {
                t.insert("job", job)
                    .insert("worker", worker)
                    .insert("donor", donor)
                    .insert("records", records);
            }
            Event::JobStarted {
                job,
                total,
                skipped,
            } => {
                t.insert("job", job)
                    .insert("total", total)
                    .insert("skipped", skipped);
            }
            Event::ChunkDone {
                job,
                jobs,
                elapsed_ms,
            } => {
                t.insert("job", job)
                    .insert("jobs", jobs)
                    .insert("elapsed_ms", elapsed_ms);
            }
            Event::JobFinished {
                job,
                executed,
                skipped,
                elapsed_ms,
            } => {
                t.insert("job", job)
                    .insert("executed", executed)
                    .insert("skipped", skipped)
                    .insert("elapsed_ms", elapsed_ms);
            }
            Event::JobReseeded { job } => {
                t.insert("job", job);
            }
            Event::ConflictsSwept { removed } => {
                t.insert("removed", removed);
            }
            Event::MergeCompleted {
                shard_files,
                records,
            } => {
                t.insert("shard_files", shard_files)
                    .insert("records", records);
            }
            Event::CampaignSubmitted { client, jobs } => {
                t.insert("client", client).insert("jobs", jobs);
            }
            Event::ResultsStreamed { job, records } => {
                t.insert("job", job).insert("records", records);
            }
            Event::CampaignCompleted { records } => {
                t.insert("records", records);
            }
        }
        t
    }
}

impl Deserialize for Event {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind: String = v.field("event")?;
        Ok(match kind.as_str() {
            "queue-init" => Event::QueueInit {
                jobs: v.field("jobs")?,
            },
            "cache-ready" => Event::CacheReady {
                written: v.field("written")?,
            },
            "population-loaded" => Event::PopulationLoaded {
                from_cache: v.field("from_cache")?,
            },
            "worker-spawned" => Event::WorkerSpawned {
                worker: v.field("worker")?,
                generation: v.field("generation")?,
            },
            "worker-died" => Event::WorkerDied {
                worker: v.field("worker")?,
                exit: v.field("exit")?,
            },
            "worker-respawned" => Event::WorkerRespawned {
                worker: v.field("worker")?,
                replacement: v.field("replacement")?,
            },
            "job-claimed" => Event::JobClaimed {
                job: v.field("job")?,
                worker: v.field("worker")?,
            },
            "adopted-partial" => Event::AdoptedPartial {
                job: v.field("job")?,
                worker: v.field("worker")?,
                donor: v.field("donor")?,
                records: v.field("records")?,
            },
            "job-started" => Event::JobStarted {
                job: v.field("job")?,
                total: v.field("total")?,
                skipped: v.field("skipped")?,
            },
            "chunk-done" => Event::ChunkDone {
                job: v.field("job")?,
                jobs: v.field("jobs")?,
                elapsed_ms: v.field("elapsed_ms")?,
            },
            "job-finished" => Event::JobFinished {
                job: v.field("job")?,
                executed: v.field("executed")?,
                skipped: v.field("skipped")?,
                elapsed_ms: v.field("elapsed_ms")?,
            },
            "job-done" => Event::JobDone {
                job: v.field("job")?,
                worker: v.field("worker")?,
            },
            "lease-lost" => Event::LeaseLost {
                job: v.field("job")?,
                worker: v.field("worker")?,
            },
            "lease-reclaimed" => Event::LeaseReclaimed {
                job: v.field("job")?,
                worker: v.field("worker")?,
            },
            "job-reseeded" => Event::JobReseeded {
                job: v.field("job")?,
            },
            "conflicts-swept" => Event::ConflictsSwept {
                removed: v.field("removed")?,
            },
            "merge-completed" => Event::MergeCompleted {
                shard_files: v.field("shard_files")?,
                records: v.field("records")?,
            },
            "campaign-submitted" => Event::CampaignSubmitted {
                client: v.field("client")?,
                jobs: v.field("jobs")?,
            },
            "results-streamed" => Event::ResultsStreamed {
                job: v.field("job")?,
                records: v.field("records")?,
            },
            "campaign-completed" => Event::CampaignCompleted {
                records: v.field("records")?,
            },
            other => {
                return Err(serde::Error::new(format!("unknown event kind `{other}`")));
            }
        })
    }
}

/// A stored journal entry: the event plus its chain envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Position in the writer's segment, dense from 0.
    pub seq: u64,
    /// Milliseconds since the Unix epoch, by the writer's clock
    /// (display and advisory staleness only — never trusted across hosts).
    pub ms: u64,
    /// Chain hash of the predecessor record (the segment header's hash for
    /// `seq` 0).
    pub prev: String,
    /// This record's own chain hash: FNV-1a 64 over the canonical encoding
    /// of every field except `hash` itself.
    pub hash: String,
    /// The event.
    pub event: Event,
}

impl EventRecord {
    /// The canonical encoding *without* the `hash` field — the byte string
    /// the chain hash covers.
    pub fn preimage(&self) -> String {
        let mut t = self.event.serialize();
        t.insert("seq", &self.seq)
            .insert("ms", &self.ms)
            .insert("prev", &self.prev);
        serde_json::to_string(&t).expect("event records always serialize")
    }

    /// The full canonical line as stored in the segment file.
    pub fn to_line(&self) -> String {
        let mut t = self.event.serialize();
        t.insert("seq", &self.seq)
            .insert("ms", &self.ms)
            .insert("prev", &self.prev)
            .insert("hash", &self.hash);
        serde_json::to_string(&t).expect("event records always serialize")
    }

    /// Parses a stored line (no chain verification — see
    /// [`read_segment`](crate::reader::read_segment) for the verifying
    /// reader).
    pub fn from_line(line: &str) -> Result<Self, serde::Error> {
        let v: Value = serde_json::from_str(line)?;
        Ok(Self {
            seq: v.field("seq")?,
            ms: v.field("ms")?,
            prev: v.field("prev")?,
            hash: v.field("hash")?,
            event: Event::deserialize(&v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::QueueInit { jobs: 6 },
            Event::CacheReady { written: true },
            Event::PopulationLoaded { from_cache: false },
            Event::WorkerSpawned {
                worker: "localhost-w0".into(),
                generation: 1,
            },
            Event::WorkerDied {
                worker: "localhost-w0".into(),
                exit: "signal: 6".into(),
            },
            Event::WorkerRespawned {
                worker: "localhost-w0".into(),
                replacement: "localhost-w0-r1".into(),
            },
            Event::JobClaimed {
                job: 3,
                worker: "w".into(),
            },
            Event::AdoptedPartial {
                job: 3,
                worker: "w".into(),
                donor: "dead".into(),
                records: 17,
            },
            Event::JobStarted {
                job: 3,
                total: 40,
                skipped: 17,
            },
            Event::ChunkDone {
                job: 3,
                jobs: 23,
                elapsed_ms: 112,
            },
            Event::JobFinished {
                job: 3,
                executed: 23,
                skipped: 17,
                elapsed_ms: 130,
            },
            Event::JobDone {
                job: 3,
                worker: "w".into(),
            },
            Event::LeaseLost {
                job: 2,
                worker: "w".into(),
            },
            Event::LeaseReclaimed {
                job: 2,
                worker: "w".into(),
            },
            Event::JobReseeded { job: 1 },
            Event::ConflictsSwept { removed: 2 },
            Event::MergeCompleted {
                shard_files: 4,
                records: 40,
            },
            Event::CampaignSubmitted {
                client: "bench-rig".into(),
                jobs: 36,
            },
            Event::ResultsStreamed {
                job: 0,
                records: 36,
            },
            Event::CampaignCompleted { records: 36 },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for event in samples() {
            let text = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&text).unwrap();
            assert_eq!(back, event, "{text}");
        }
    }

    #[test]
    fn encoding_is_byte_stable() {
        // Key-sorted tables: the same event always renders the same bytes.
        for event in samples() {
            let a = serde_json::to_string(&event).unwrap();
            let b = serde_json::to_string(&event.clone()).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn normalization_strips_durations_only() {
        let timed = Event::ChunkDone {
            job: 1,
            jobs: 8,
            elapsed_ms: 999,
        };
        assert_eq!(timed.normalized(), "chunk-done job=1 jobs=8");
        let plain = Event::JobClaimed {
            job: 0,
            worker: "w0".into(),
        };
        assert_eq!(plain.normalized(), plain.to_string());
    }

    #[test]
    fn record_lines_round_trip() {
        let record = EventRecord {
            seq: 4,
            ms: 1_700_000_000_123,
            prev: "00aa".into(),
            hash: "11bb".into(),
            event: Event::JobReseeded { job: 9 },
        };
        let line = record.to_line();
        let back = EventRecord::from_line(&line).unwrap();
        assert_eq!(back, record);
        assert!(!record.preimage().contains("hash"), "{}", record.preimage());
    }
}
