//! Append-only, hash-chained campaign event journal.
//!
//! Run records capture *outcomes*; this crate captures *history*: who
//! claimed which job when, which leases went stale and were reclaimed,
//! which workers died mid-shard, what the merge decided. Every process in
//! the dispatch stack appends typed [`Event`]s to its own segment file
//! under `<campaign root>/journal/` — one writer per process, so no
//! cross-process locking is ever needed — and readers stitch the segments
//! back together by writer name and sequence number.
//!
//! # File layout
//!
//! ```text
//! <root>/journal/events-<writer>.jsonl
//!   {"format":1,"kind":"journal-segment","spec_hash":"…","writer":"…"}
//!   {"event":"queue-init","hash":"…","jobs":6,"ms":…,"prev":"…","seq":0}
//!   {"event":"job-claimed","hash":"…","job":0,…,"prev":"…","seq":1}
//!   …
//! ```
//!
//! # Chain format
//!
//! Each record carries a dense sequence number (`seq`, 0-based), the chain
//! hash of its predecessor (`prev`; the FNV-1a 64 hash of the header line
//! for the first record), and its own hash (`hash`): FNV-1a 64 over the
//! canonical encoding of the record *without* the `hash` key. The encoding
//! is byte-stable — JSON objects with sorted keys — so any byte flip,
//! dropped line, or reordered pair of lines breaks the chain at a precise
//! sequence number, which [`reader::read_segment`] reports as
//! [`JournalError::ChainBroken`]. The only tolerated irregularity is a
//! torn final line without a trailing newline (a writer killed
//! mid-append), mirroring the shard-file convention.
//!
//! # Replay and diff
//!
//! [`replay::Replay`] is a cursor (`next_step` / `reset`) that folds the
//! stitched timeline into a [`replay::ReplayState`] — a reconstructed view
//! of the work queue that `campaign replay --check` compares against the
//! live queue directory. [`diff::diff`] aligns the *normalized* event
//! streams of two campaigns (wall-clock durations stripped, writers in
//! lexicographic order) and pinpoints the first divergent event plus
//! per-job claim/reclaim deltas.
//!
//! Journaling is strictly best-effort on the write side: an emit failure
//! degrades the journal (with a one-line warning) but never fails the
//! campaign. The journal is provenance, not a dependency.

pub mod diff;
pub mod event;
pub mod reader;
pub mod replay;
pub mod writer;

pub use diff::{diff, Divergence, JobDelta, JournalDiff};
pub use event::{Event, EventRecord};
pub use reader::{read_journal, read_segment, JournalTail, Segment};
pub use replay::{JobView, Replay, ReplayState};
pub use writer::{segment_path, Journal};

use std::fmt;
use std::path::PathBuf;

/// Subdirectory of a campaign root holding the journal segments.
pub const JOURNAL_DIR: &str = "journal";

/// FNV-1a 64 as a 16-digit hex string — the workspace's content-hash idiom
/// (spec hashes, population digests) and the journal's chain hash.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Everything that can go wrong reading or writing a journal.
#[derive(Debug)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A segment file is structurally unusable (missing or unparseable
    /// header, bad name) — distinct from a broken chain *inside* a
    /// well-formed segment.
    Malformed {
        /// The segment file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// The hash chain of a segment does not verify: the first offending
    /// record's sequence number is reported.
    ChainBroken {
        /// The segment's writer id.
        writer: String,
        /// Sequence number of the first record that fails verification.
        seq: u64,
        /// What broke (sequence gap, prev-hash mismatch, content hash
        /// mismatch, unparseable line).
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal i/o error at {}: {source}", path.display())
            }
            JournalError::Malformed { path, message } => {
                write!(f, "malformed journal segment {}: {message}", path.display())
            }
            JournalError::ChainBroken {
                writer,
                seq,
                message,
            } => write!(
                f,
                "journal chain broken in segment `{writer}` at seq {seq}: {message}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }
}
