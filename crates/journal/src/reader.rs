//! The verifying read side: segment parsing with full chain verification,
//! whole-journal stitching, and an incremental tail for live monitoring.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Value;

use crate::event::{Event, EventRecord};
use crate::{fnv1a_hex, JournalError, JOURNAL_DIR};

/// One writer's fully verified segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Writer id, from the segment header.
    pub writer: String,
    /// Spec hash the segment was opened under.
    pub spec_hash: String,
    /// The raw header line (no newline) — its hash is the genesis `prev`.
    pub header: String,
    /// The verified records, in sequence order.
    pub records: Vec<EventRecord>,
    /// Whether an unterminated final line (writer killed mid-append) was
    /// dropped. Complete-but-corrupt lines are *never* tolerated — they
    /// are tampering and fail with [`JournalError::ChainBroken`].
    pub torn_tail: bool,
}

/// Reads one segment file and verifies its entire hash chain.
///
/// Verification per record, in order: the line must parse, `seq` must
/// equal the record's position, `prev` must equal the predecessor's hash
/// (the header's hash for seq 0), and `hash` must equal the FNV-1a 64 of
/// the record's canonical preimage. The first violation is reported as
/// [`JournalError::ChainBroken`] with the offending sequence number —
/// whether the cause was a flipped byte, a dropped line, or a reordered
/// pair. The sole exception is a final line with no trailing newline,
/// which is dropped and flagged as a torn tail.
pub fn read_segment(path: &Path) -> Result<Segment, JournalError> {
    let text = fs::read_to_string(path).map_err(|source| JournalError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let malformed = |message: String| JournalError::Malformed {
        path: path.to_path_buf(),
        message,
    };
    let terminated = text.ends_with('\n');
    let mut lines: Vec<&str> = text.lines().collect();
    let torn_line = if !terminated { lines.pop() } else { None };
    let mut lines = lines.into_iter();

    let header = lines
        .next()
        .ok_or_else(|| malformed("empty segment (no header line)".into()))?;
    let hv: Value =
        serde_json::from_str(header).map_err(|e| malformed(format!("bad header: {e}")))?;
    if hv
        .field_or::<String>("kind", String::new())
        .map_err(|e| malformed(e.to_string()))?
        != "journal-segment"
    {
        return Err(malformed("header is not a journal-segment record".into()));
    }
    let writer: String = hv
        .field("writer")
        .map_err(|e| malformed(format!("header: {e}")))?;
    let spec_hash: String = hv
        .field("spec_hash")
        .map_err(|e| malformed(format!("header: {e}")))?;

    let mut prev = fnv1a_hex(header.as_bytes());
    let mut records = Vec::new();
    let verify = |line: &str, seq: u64, prev: &mut String| -> Result<EventRecord, String> {
        let rec = EventRecord::from_line(line).map_err(|e| format!("unparseable record: {e}"))?;
        if rec.seq != seq {
            return Err(format!(
                "sequence mismatch: recorded {}, expected {seq} (dropped or reordered event)",
                rec.seq
            ));
        }
        if rec.prev != *prev {
            return Err(format!(
                "prev-hash mismatch: recorded {}, chain head {prev}",
                rec.prev
            ));
        }
        let computed = fnv1a_hex(rec.preimage().as_bytes());
        if computed != rec.hash {
            return Err(format!(
                "content hash mismatch: recorded {}, computed {computed}",
                rec.hash
            ));
        }
        *prev = rec.hash.clone();
        Ok(rec)
    };

    for (i, line) in lines.enumerate() {
        let seq = i as u64;
        match verify(line, seq, &mut prev) {
            Ok(rec) => records.push(rec),
            Err(message) => {
                return Err(JournalError::ChainBroken {
                    writer,
                    seq,
                    message,
                })
            }
        }
    }
    // An unterminated final line: keep it if it happens to verify (the
    // newline itself was lost), otherwise drop it as a torn append.
    let mut torn_tail = false;
    if let Some(line) = torn_line {
        let seq = records.len() as u64;
        match verify(line, seq, &mut prev) {
            Ok(rec) => records.push(rec),
            Err(_) => torn_tail = true,
        }
    }
    Ok(Segment {
        writer,
        spec_hash,
        header: header.to_string(),
        records,
        torn_tail,
    })
}

/// Lists a campaign root's segment files, sorted by file name.
pub fn segment_files(root: &Path) -> Result<Vec<PathBuf>, JournalError> {
    let dir = root.join(JOURNAL_DIR);
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let entries = fs::read_dir(&dir).map_err(|source| JournalError::Io {
        path: dir.clone(),
        source,
    })?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| JournalError::Io {
            path: dir.clone(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_file() && name.starts_with("events-") && name.ends_with(".jsonl") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Reads and verifies every segment of a campaign's journal, sorted by
/// writer name. An absent `journal/` directory yields an empty vector
/// (pre-journal campaign roots stay readable).
pub fn read_journal(root: &Path) -> Result<Vec<Segment>, JournalError> {
    let mut segments = Vec::new();
    for path in segment_files(root)? {
        segments.push(read_segment(&path)?);
    }
    segments.sort_by(|a, b| a.writer.cmp(&b.writer));
    Ok(segments)
}

/// An incremental, non-verifying reader for live monitoring: polls the
/// journal directory for new complete lines since the last poll, so the
/// dispatcher can surface worker events (e.g. partial-output adoption) as
/// they happen without re-reading whole segments every tick.
pub struct JournalTail {
    root: PathBuf,
    /// Byte offset of the first unread byte, per segment file.
    offsets: std::collections::BTreeMap<PathBuf, u64>,
}

impl JournalTail {
    /// A tail over the given campaign root, starting from the present end
    /// of every existing segment (only *new* events are reported).
    pub fn new(root: &Path) -> Self {
        let mut tail = JournalTail {
            root: root.to_path_buf(),
            offsets: Default::default(),
        };
        if let Ok(files) = segment_files(root) {
            for f in files {
                let len = fs::metadata(&f).map(|m| m.len()).unwrap_or(0);
                tail.offsets.insert(f, len);
            }
        }
        tail
    }

    /// Returns events appended since the last poll, as `(writer, event)`
    /// pairs. Best-effort: torn or unparseable lines are skipped, i/o
    /// errors yield an empty batch.
    pub fn poll(&mut self) -> Vec<(String, Event)> {
        let mut out = Vec::new();
        let Ok(files) = segment_files(&self.root) else {
            return out;
        };
        for path in files {
            let from = *self.offsets.get(&path).unwrap_or(&0);
            let Ok(bytes) = fs::read(&path) else { continue };
            if (bytes.len() as u64) <= from {
                continue;
            }
            let tail = &bytes[from as usize..];
            // Only consume up to the last newline: a torn tail stays
            // unread and is retried (complete) next poll.
            let Some(last_nl) = tail.iter().rposition(|&b| b == b'\n') else {
                continue;
            };
            let chunk = &tail[..=last_nl];
            self.offsets.insert(path.clone(), from + chunk.len() as u64);
            let writer = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let writer = writer
                .strip_prefix("events-")
                .and_then(|n| n.strip_suffix(".jsonl"))
                .unwrap_or(&writer)
                .to_string();
            for line in String::from_utf8_lossy(chunk).lines() {
                if from == 0 && line.contains("\"kind\":\"journal-segment\"") {
                    continue;
                }
                if let Ok(rec) = EventRecord::from_line(line) {
                    out.push((writer.clone(), rec.event));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{segment_path, Journal};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rats-reader-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_root(tag: &str, events: usize) -> (PathBuf, PathBuf) {
        let root = temp_root(tag);
        let mut j = Journal::open(&root, "w0", "h");
        j.emit(Event::QueueInit {
            jobs: events as u64,
        });
        for i in 0..events.saturating_sub(1) {
            j.emit(Event::JobClaimed {
                job: i as u64,
                worker: "w0".into(),
            });
        }
        (root.clone(), segment_path(&root, "w0"))
    }

    fn broken_seq(err: JournalError) -> u64 {
        match err {
            JournalError::ChainBroken { seq, .. } => seq,
            other => panic!("expected ChainBroken, got {other}"),
        }
    }

    #[test]
    fn flipped_byte_reports_the_exact_sequence() {
        let (root, path) = seeded_root("flip", 5);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // Flip one payload byte of the record at seq 2 (line 3).
        lines[3] = lines[3].replace("\"job\":1", "\"job\":7");
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert_eq!(broken_seq(read_segment(&path).unwrap_err()), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dropped_event_reports_the_gap() {
        let (root, path) = seeded_root("drop", 5);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines.remove(2); // drop the record at seq 1
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert_eq!(broken_seq(read_segment(&path).unwrap_err()), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reordered_events_report_the_first_out_of_place() {
        let (root, path) = seeded_root("swap", 5);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines.swap(2, 3); // swap records seq 1 and seq 2
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert_eq!(broken_seq(read_segment(&path).unwrap_err()), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tampered_final_line_is_not_mistaken_for_a_torn_tail() {
        let (root, path) = seeded_root("last", 3);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let last = lines.len() - 1;
        lines[last] = lines[last].replace("\"job\":1", "\"job\":9");
        // Newline-terminated: a complete, corrupt line — tampering.
        fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert_eq!(broken_seq(read_segment(&path).unwrap_err()), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn journal_of_absent_directory_is_empty() {
        let root = temp_root("absent");
        assert!(read_journal(&root).unwrap().is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tail_reports_only_new_complete_lines() {
        let root = temp_root("tail");
        let mut j = Journal::open(&root, "w0", "h");
        j.emit(Event::QueueInit { jobs: 2 });
        let mut tail = JournalTail::new(&root);
        assert!(tail.poll().is_empty(), "existing history is not replayed");
        j.emit(Event::AdoptedPartial {
            job: 1,
            worker: "w0".into(),
            donor: "dead".into(),
            records: 4,
        });
        let batch = tail.poll();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0, "w0");
        assert!(matches!(
            batch[0].1,
            Event::AdoptedPartial {
                job: 1,
                records: 4,
                ..
            }
        ));
        assert!(tail.poll().is_empty());
        fs::remove_dir_all(&root).unwrap();
    }
}
