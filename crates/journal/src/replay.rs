//! Deterministic replay: fold the stitched event timeline back into a
//! reconstructed queue state.
//!
//! The cursor (`next_step` / `reset`) follows the replay-engine pattern:
//! the timeline is fixed up front, a cursor walks it one event at a time,
//! and the folded [`ReplayState`] can be inspected at any point. The fold
//! is *done-wins*: once a job's completion is seen, outstanding claims and
//! todo markers for it are superseded — exactly the rule the live queue's
//! conflict sweep enforces on disk — which makes the final reconstructed
//! state insensitive to how concurrent writers' segments interleave.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::event::{Event, EventRecord};
use crate::reader::Segment;

/// The reconstructed lifecycle state of one queue job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobView {
    /// No queue file should exist for the job.
    Missing,
    /// Waiting in the todo state.
    Todo,
    /// Leased by these workers (sorted; more than one only mid-conflict).
    Claimed(Vec<String>),
    /// Completed.
    Done,
}

impl fmt::Display for JobView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobView::Missing => write!(f, "missing"),
            JobView::Todo => write!(f, "todo"),
            JobView::Claimed(ws) => write!(f, "claimed by {}", ws.join("+")),
            JobView::Done => write!(f, "done"),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct JobState {
    todo: bool,
    claims: BTreeSet<String>,
    done_by: Option<String>,
}

/// One timeline entry: which writer's segment the record came from.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// The emitting writer.
    pub writer: String,
    /// The record itself.
    pub record: EventRecord,
}

/// The folded view of a campaign at the cursor's current position.
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    /// Queue size, once a `queue-init` event has been seen.
    pub jobs: Option<u64>,
    /// Leases returned to todo by the dispatcher.
    pub reclaimed: u64,
    /// Jobs re-seeded after losing every queue file.
    pub reseeded: u64,
    /// Partial shard files adopted from dead predecessors.
    pub adopted: u64,
    /// Worker processes spawned (including respawns).
    pub workers_spawned: u64,
    /// Worker processes that died with work remaining.
    pub workers_died: u64,
    /// `(shard_files, records)` once the merge has completed.
    pub merge: Option<(u64, u64)>,
    /// Campaign submissions accepted by a long-lived server (`campaign
    /// serve`) — batch dispatches journal zero.
    pub submissions: u64,
    states: BTreeMap<u64, JobState>,
}

impl ReplayState {
    /// Applies one event to the fold.
    pub fn apply(&mut self, event: &Event) {
        match event {
            Event::QueueInit { jobs } => {
                self.jobs = Some(*jobs);
                for job in 0..*jobs {
                    // Idempotent re-init (queue resume) must not resurrect
                    // already-progressed jobs.
                    self.states.entry(job).or_insert(JobState {
                        todo: true,
                        ..Default::default()
                    });
                }
            }
            Event::JobClaimed { job, worker } => {
                let st = self.states.entry(*job).or_default();
                st.claims.insert(worker.clone());
                st.todo = false;
            }
            Event::JobDone { job, worker } => {
                let st = self.states.entry(*job).or_default();
                st.done_by = Some(worker.clone());
                st.claims.remove(worker);
                st.todo = false;
            }
            Event::LeaseReclaimed { job, worker } => {
                let st = self.states.entry(*job).or_default();
                st.claims.remove(worker);
                if st.done_by.is_none() {
                    st.todo = true;
                }
                self.reclaimed += 1;
            }
            Event::LeaseLost { job, worker } => {
                self.states.entry(*job).or_default().claims.remove(worker);
            }
            Event::JobReseeded { job } => {
                let st = self.states.entry(*job).or_default();
                if st.done_by.is_none() {
                    st.todo = true;
                }
                self.reseeded += 1;
            }
            Event::AdoptedPartial { .. } => self.adopted += 1,
            Event::WorkerSpawned { .. } => self.workers_spawned += 1,
            Event::WorkerDied { .. } => self.workers_died += 1,
            Event::WorkerRespawned { .. } => {}
            Event::MergeCompleted {
                shard_files,
                records,
            } => self.merge = Some((*shard_files, *records)),
            Event::CampaignSubmitted { .. } => self.submissions += 1,
            Event::CacheReady { .. }
            | Event::PopulationLoaded { .. }
            | Event::JobStarted { .. }
            | Event::ChunkDone { .. }
            | Event::JobFinished { .. }
            | Event::ConflictsSwept { .. }
            | Event::ResultsStreamed { .. }
            | Event::CampaignCompleted { .. } => {}
        }
    }

    /// The done-wins view of one job.
    pub fn view(&self, job: u64) -> JobView {
        match self.states.get(&job) {
            None => JobView::Missing,
            Some(st) => {
                if st.done_by.is_some() {
                    JobView::Done
                } else if !st.claims.is_empty() {
                    JobView::Claimed(st.claims.iter().cloned().collect())
                } else if st.todo {
                    JobView::Todo
                } else {
                    JobView::Missing
                }
            }
        }
    }

    /// All job views, over `0..jobs` (or the observed jobs when no
    /// `queue-init` was seen).
    pub fn views(&self) -> BTreeMap<u64, JobView> {
        let upper = self
            .jobs
            .unwrap_or_else(|| self.states.keys().last().map_or(0, |j| j + 1));
        (0..upper).map(|j| (j, self.view(j))).collect()
    }

    /// Whether every job is done.
    pub fn all_done(&self) -> bool {
        self.views().values().all(|v| *v == JobView::Done)
    }
}

/// A replayable cursor over a campaign's stitched timeline.
///
/// Entries are ordered by `(ms, writer, seq)` — a stable, reproducible
/// interleave that is chronological up to clock skew. Mid-flight views are
/// therefore advisory across writers; the *final* state is exact thanks to
/// the done-wins fold.
pub struct Replay {
    timeline: Vec<TimelineEntry>,
    cursor: usize,
    state: ReplayState,
}

impl Replay {
    /// Builds a replay over verified segments (see
    /// [`read_journal`](crate::reader::read_journal)).
    pub fn new(segments: &[Segment]) -> Self {
        let mut timeline: Vec<TimelineEntry> = segments
            .iter()
            .flat_map(|seg| {
                seg.records.iter().map(|record| TimelineEntry {
                    writer: seg.writer.clone(),
                    record: record.clone(),
                })
            })
            .collect();
        timeline.sort_by(|a, b| {
            (a.record.ms, &a.writer, a.record.seq).cmp(&(b.record.ms, &b.writer, b.record.seq))
        });
        Replay {
            timeline,
            cursor: 0,
            state: ReplayState::default(),
        }
    }

    /// Applies the next event and returns the entry just applied, or
    /// `None` at the end of the timeline.
    pub fn next_step(&mut self) -> Option<&TimelineEntry> {
        let entry = self.timeline.get(self.cursor)?;
        self.state.apply(&entry.record.event);
        self.cursor += 1;
        Some(entry)
    }

    /// Rewinds to the beginning (the timeline is unchanged).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.state = ReplayState::default();
    }

    /// Applies every remaining event and returns the final state.
    pub fn run_to_end(&mut self) -> &ReplayState {
        while self.next_step().is_some() {}
        &self.state
    }

    /// The folded state at the cursor's current position.
    pub fn state(&self) -> &ReplayState {
        &self.state
    }

    /// Total number of events in the timeline.
    pub fn len(&self) -> usize {
        self.timeline.len()
    }

    /// Whether the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
    }

    /// Position of the cursor (events applied so far).
    pub fn position(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_journal;
    use crate::writer::Journal;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rats-replay-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fold_reconstructs_the_queue_lifecycle() {
        let mut st = ReplayState::default();
        st.apply(&Event::QueueInit { jobs: 3 });
        assert_eq!(st.view(0), JobView::Todo);
        st.apply(&Event::JobClaimed {
            job: 0,
            worker: "a".into(),
        });
        assert_eq!(st.view(0), JobView::Claimed(vec!["a".into()]));
        st.apply(&Event::LeaseReclaimed {
            job: 0,
            worker: "a".into(),
        });
        assert_eq!(st.view(0), JobView::Todo);
        assert_eq!(st.reclaimed, 1);
        st.apply(&Event::JobClaimed {
            job: 0,
            worker: "b".into(),
        });
        st.apply(&Event::JobDone {
            job: 0,
            worker: "b".into(),
        });
        assert_eq!(st.view(0), JobView::Done);
        assert!(!st.all_done());
        assert_eq!(st.view(2), JobView::Todo);
    }

    #[test]
    fn done_wins_over_interleaved_claims() {
        // A conflicting claim observed after the done event (cross-writer
        // stitch order) must not resurrect the job.
        let mut st = ReplayState::default();
        st.apply(&Event::QueueInit { jobs: 1 });
        st.apply(&Event::JobDone {
            job: 0,
            worker: "a".into(),
        });
        st.apply(&Event::JobClaimed {
            job: 0,
            worker: "b".into(),
        });
        assert_eq!(st.view(0), JobView::Done);
    }

    #[test]
    fn reinit_does_not_resurrect_progress() {
        let mut st = ReplayState::default();
        st.apply(&Event::QueueInit { jobs: 2 });
        st.apply(&Event::JobClaimed {
            job: 0,
            worker: "a".into(),
        });
        st.apply(&Event::JobDone {
            job: 0,
            worker: "a".into(),
        });
        st.apply(&Event::QueueInit { jobs: 2 }); // resume re-opens the queue
        assert_eq!(st.view(0), JobView::Done);
        assert_eq!(st.view(1), JobView::Todo);
    }

    #[test]
    fn cursor_steps_and_resets() {
        let root = temp_root("cursor");
        let mut j = Journal::open(&root, "d", "h");
        j.emit(Event::QueueInit { jobs: 2 });
        j.emit(Event::JobClaimed {
            job: 0,
            worker: "w".into(),
        });
        j.emit(Event::JobDone {
            job: 0,
            worker: "w".into(),
        });
        let segments = read_journal(&root).unwrap();
        let mut replay = Replay::new(&segments);
        assert_eq!(replay.len(), 3);
        let first = replay.next_step().unwrap();
        assert!(matches!(first.record.event, Event::QueueInit { jobs: 2 }));
        assert_eq!(replay.state().view(0), JobView::Todo);
        replay.next_step().unwrap();
        assert_eq!(replay.state().view(0), JobView::Claimed(vec!["w".into()]));
        replay.reset();
        assert_eq!(replay.position(), 0);
        let end = replay.run_to_end();
        assert_eq!(end.view(0), JobView::Done);
        assert_eq!(end.view(1), JobView::Todo);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
