//! The single-writer, append-only side of the journal.
//!
//! Each process owns exactly one segment file named after its writer id,
//! so concurrent workers never contend for a file. [`Journal::open`] is
//! infallible by design: any failure to create or resume the segment
//! degrades the journal to a no-op (with one warning line on stderr) —
//! history is provenance, and must never take a campaign down with it.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::Value;

use crate::event::{Event, EventRecord};
use crate::reader::read_segment;
use crate::{fnv1a_hex, JournalError, JOURNAL_DIR};

/// The segment file a given writer appends to.
pub fn segment_path(root: &Path, writer: &str) -> PathBuf {
    root.join(JOURNAL_DIR)
        .join(format!("events-{}.jsonl", sanitize(writer)))
}

/// Restricts a writer id to filename-safe characters, the same alphabet
/// the dispatch layer already enforces for worker ids.
fn sanitize(writer: &str) -> String {
    writer
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The canonical header line of a segment (no trailing newline). Its
/// FNV-1a 64 hash is the genesis `prev` of the chain.
pub(crate) fn header_line(writer: &str, spec_hash: &str) -> String {
    let mut t = Value::table();
    t.insert("format", &1u64)
        .insert("kind", "journal-segment")
        .insert("spec_hash", spec_hash)
        .insert("writer", writer);
    serde_json::to_string(&t).expect("tables always serialize")
}

/// An open, appendable journal segment for one writer.
pub struct Journal {
    path: PathBuf,
    writer: String,
    /// Sequence number the next record gets.
    seq: u64,
    /// Chain hash of the predecessor (header hash at genesis).
    head: String,
    /// Set once an i/o failure turns the journal into a no-op.
    degraded: bool,
}

impl Journal {
    /// Opens (creating or resuming) the segment for `writer` under `root`.
    ///
    /// Never fails: if the segment cannot be created, or an existing one
    /// fails chain verification, the returned journal is *degraded* — all
    /// [`emit`](Self::emit) calls become no-ops — and a single warning is
    /// printed. A resumable segment with a torn final line is rewritten
    /// without the tail first, the same way shard files recover.
    pub fn open(root: &Path, writer: &str, spec_hash: &str) -> Self {
        match Self::try_open(root, writer, spec_hash) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("[journal] disabled for `{writer}`: {e}");
                Journal {
                    path: segment_path(root, writer),
                    writer: writer.to_string(),
                    seq: 0,
                    head: String::new(),
                    degraded: true,
                }
            }
        }
    }

    fn try_open(root: &Path, writer: &str, spec_hash: &str) -> Result<Self, JournalError> {
        let path = segment_path(root, writer);
        let dir = root.join(JOURNAL_DIR);
        fs::create_dir_all(&dir).map_err(|source| JournalError::Io {
            path: dir.clone(),
            source,
        })?;
        if path.is_file() {
            return Self::resume(path, writer);
        }
        let header = header_line(writer, spec_hash);
        let head = fnv1a_hex(header.as_bytes());
        fs::write(&path, format!("{header}\n")).map_err(|source| JournalError::Io {
            path: path.clone(),
            source,
        })?;
        Ok(Journal {
            path,
            writer: writer.to_string(),
            seq: 0,
            head,
            degraded: false,
        })
    }

    /// Re-opens an existing segment, verifying its whole chain and
    /// dropping a torn tail (rewrite via temp file + atomic rename) so the
    /// next append lands on a clean, newline-terminated file.
    fn resume(path: PathBuf, writer: &str) -> Result<Self, JournalError> {
        let segment = read_segment(&path)?;
        if segment.torn_tail {
            let mut text = String::with_capacity(1024);
            text.push_str(&segment.header);
            text.push('\n');
            for rec in &segment.records {
                text.push_str(&rec.to_line());
                text.push('\n');
            }
            let tmp = path.with_extension("jsonl.tmp");
            fs::write(&tmp, &text).map_err(|source| JournalError::Io {
                path: tmp.clone(),
                source,
            })?;
            fs::rename(&tmp, &path).map_err(|source| JournalError::Io {
                path: path.clone(),
                source,
            })?;
        }
        let head = match segment.records.last() {
            Some(last) => last.hash.clone(),
            None => fnv1a_hex(segment.header.as_bytes()),
        };
        Ok(Journal {
            path,
            writer: writer.to_string(),
            seq: segment.records.len() as u64,
            head,
            degraded: false,
        })
    }

    /// Appends one event to the chain. Best-effort: an i/o failure prints
    /// one warning, degrades the journal, and is otherwise swallowed.
    pub fn emit(&mut self, event: Event) {
        if self.degraded {
            return;
        }
        let mut record = EventRecord {
            seq: self.seq,
            ms: now_ms(),
            prev: self.head.clone(),
            hash: String::new(),
            event,
        };
        record.hash = fnv1a_hex(record.preimage().as_bytes());
        let line = record.to_line();
        let appended = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .and_then(|mut f| {
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
                f.flush()
            });
        match appended {
            Ok(()) => {
                self.seq += 1;
                self.head = record.hash;
            }
            Err(e) => {
                eprintln!(
                    "[journal] append failed for `{}` ({}): journaling disabled",
                    self.writer, e
                );
                self.degraded = true;
            }
        }
    }

    /// Whether the journal has been disabled by a failure.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The writer id this journal appends under.
    pub fn writer_id(&self) -> &str {
        &self.writer
    }

    /// Records appended so far (= next sequence number).
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// Whether no records have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }
}

/// Milliseconds since the Unix epoch by this process's clock — display
/// and advisory staleness only, never trusted across hosts.
pub(crate) fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rats-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn emits_verify_and_resume() {
        let root = temp_root("emit");
        let mut j = Journal::open(&root, "w0", "hash16");
        j.emit(Event::QueueInit { jobs: 3 });
        j.emit(Event::JobClaimed {
            job: 0,
            worker: "w0".into(),
        });
        assert!(!j.is_degraded());
        assert_eq!(j.len(), 2);
        drop(j);

        let seg = read_segment(&segment_path(&root, "w0")).unwrap();
        assert_eq!(seg.writer, "w0");
        assert_eq!(seg.spec_hash, "hash16");
        assert_eq!(seg.records.len(), 2);
        assert!(!seg.torn_tail);

        // Re-open resumes the chain where it left off.
        let mut j = Journal::open(&root, "w0", "hash16");
        assert_eq!(j.len(), 2);
        j.emit(Event::JobDone {
            job: 0,
            worker: "w0".into(),
        });
        let seg = read_segment(&segment_path(&root, "w0")).unwrap();
        assert_eq!(seg.records.len(), 3);
        assert_eq!(seg.records[2].seq, 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_on_resume() {
        let root = temp_root("torn");
        let mut j = Journal::open(&root, "w0", "h");
        j.emit(Event::QueueInit { jobs: 1 });
        drop(j);
        let path = segment_path(&root, "w0");
        // Simulate a writer killed mid-append: a half line, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"job-cl").unwrap();
        drop(f);

        let mut j = Journal::open(&root, "w0", "h");
        assert!(!j.is_degraded());
        assert_eq!(j.len(), 1, "torn tail dropped, chain resumes after it");
        j.emit(Event::JobReseeded { job: 0 });
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.records.len(), 2);
        assert!(!seg.torn_tail);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn writer_ids_are_sanitized_in_filenames() {
        let root = temp_root("sanitize");
        let j = Journal::open(&root, "host/0:a", "h");
        assert!(!j.is_degraded());
        assert!(segment_path(&root, "host/0:a").ends_with("events-host-0-a.jsonl"));
        fs::remove_dir_all(&root).unwrap();
    }
}
