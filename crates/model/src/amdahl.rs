//! Amdahl's-law speedup model for moldable tasks.

/// Amdahl's-law performance model with a non-parallelizable fraction `α`.
///
/// The model specifies that a fraction `α` of a task's sequential execution
/// time cannot be parallelized, so running on `p` processors takes
///
/// ```text
/// T(p) = T(1) · (α + (1 − α) / p)
/// ```
///
/// This model is *monotonically decreasing*: more processors never slow a
/// task down (for `0 ≤ α ≤ 1`). It is the speedup model used by the paper
/// ("used extensively in the literature, thus allowing our results to be
/// compared with previously published results consistently").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmdahlLaw {
    alpha: f64,
}

impl AmdahlLaw {
    /// Creates a model with non-parallelizable fraction `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `[0, 1]` or is not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be a finite value in [0, 1], got {alpha}"
        );
        Self { alpha }
    }

    /// The non-parallelizable fraction `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Parallel fraction `1 − α`.
    #[inline]
    pub fn parallel_fraction(&self) -> f64 {
        1.0 - self.alpha
    }

    /// Speedup achieved on `p` processors: `S(p) = 1 / (α + (1 − α)/p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[inline]
    pub fn speedup(&self, p: u32) -> f64 {
        assert!(p > 0, "a task must run on at least one processor");
        1.0 / self.time_fraction(p)
    }

    /// The fraction of the sequential time that remains when running on `p`
    /// processors: `α + (1 − α)/p`.
    #[inline]
    pub fn time_fraction(&self, p: u32) -> f64 {
        assert!(p > 0, "a task must run on at least one processor");
        self.alpha + (1.0 - self.alpha) / f64::from(p)
    }

    /// Parallel efficiency `S(p)/p ∈ (0, 1]`.
    #[inline]
    pub fn efficiency(&self, p: u32) -> f64 {
        self.speedup(p) / f64::from(p)
    }

    /// Asymptotic speedup `lim_{p→∞} S(p) = 1/α` (infinite for `α = 0`).
    #[inline]
    pub fn max_speedup(&self) -> f64 {
        if self.alpha == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.alpha
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_parallel_scales_linearly() {
        let m = AmdahlLaw::new(0.0);
        for p in 1..=128 {
            let s = m.speedup(p);
            assert!((s - f64::from(p)).abs() < 1e-9, "p={p}: speedup {s}");
        }
    }

    #[test]
    fn fully_sequential_never_speeds_up() {
        let m = AmdahlLaw::new(1.0);
        for p in [1u32, 2, 16, 1024] {
            assert!((m.speedup(p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_processor_is_identity() {
        for alpha in [0.0, 0.1, 0.25, 0.5, 1.0] {
            assert!((AmdahlLaw::new(alpha).speedup(1) - 1.0).abs() < 1e-12);
            assert!((AmdahlLaw::new(alpha).time_fraction(1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn max_speedup_limits() {
        assert_eq!(AmdahlLaw::new(0.0).max_speedup(), f64::INFINITY);
        assert!((AmdahlLaw::new(0.25).max_speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_value() {
        // α = 0.05, p = 20 → S = 1/(0.05 + 0.95/20) = 1/0.0975 ≈ 10.256
        let s = AmdahlLaw::new(0.05).speedup(20);
        assert!((s - 10.256410).abs() < 1e-5, "got {s}");
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn rejects_negative_alpha() {
        AmdahlLaw::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn rejects_zero_processors() {
        AmdahlLaw::new(0.1).speedup(0);
    }

    proptest! {
        /// The model is monotonically decreasing in time (increasing speedup).
        #[test]
        fn monotonically_decreasing(alpha in 0.0f64..=1.0, p in 1u32..512) {
            let m = AmdahlLaw::new(alpha);
            prop_assert!(m.time_fraction(p + 1) <= m.time_fraction(p) + 1e-15);
        }

        /// Speedup is bounded by both p and 1/α.
        #[test]
        fn speedup_bounds(alpha in 1e-6f64..=1.0, p in 1u32..512) {
            let m = AmdahlLaw::new(alpha);
            let s = m.speedup(p);
            prop_assert!(s <= f64::from(p) + 1e-9);
            prop_assert!(s <= m.max_speedup() + 1e-9);
            prop_assert!(s >= 1.0 - 1e-12);
        }

        /// Efficiency never exceeds 1 and decreases with p.
        #[test]
        fn efficiency_decreasing(alpha in 0.0f64..=1.0, p in 1u32..256) {
            let m = AmdahlLaw::new(alpha);
            prop_assert!(m.efficiency(p) <= 1.0 + 1e-12);
            prop_assert!(m.efficiency(p + 1) <= m.efficiency(p) + 1e-12);
        }

        /// Work (p · time_fraction) is monotonically increasing in p.
        #[test]
        fn work_increasing(alpha in 0.0f64..=1.0, p in 1u32..256) {
            let m = AmdahlLaw::new(alpha);
            let w = |p: u32| f64::from(p) * m.time_fraction(p);
            prop_assert!(w(p + 1) >= w(p) - 1e-12);
        }
    }
}
