//! Per-task cost description: dataset size, flop density, Amdahl fraction.

use crate::amdahl::AmdahlLaw;
use crate::params::BYTES_PER_ELEMENT;

/// The computational cost of a single moldable data-parallel task.
///
/// A task operates on a dataset of `m` double-precision elements and performs
/// `a · m` floating point operations sequentially (`a` captures "multiple
/// iterations" over the dataset, e.g. sweeps of a stencil computation on a
/// `√m × √m` domain). Parallel execution follows [`AmdahlLaw`] with
/// non-parallelizable fraction `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Dataset size in double-precision elements (`m`).
    m_elements: u64,
    /// Operations per element (`a`).
    ops_per_element: f64,
    /// Amdahl model with the task's non-parallelizable fraction.
    law: AmdahlLaw,
}

impl TaskCost {
    /// Creates a task cost from dataset size `m` (elements), flop density `a`
    /// (operations per element) and non-parallelizable fraction `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_element` is negative/non-finite or `alpha ∉ [0,1]`.
    pub fn new(m_elements: u64, ops_per_element: f64, alpha: f64) -> Self {
        assert!(
            ops_per_element.is_finite() && ops_per_element >= 0.0,
            "ops_per_element must be finite and non-negative, got {ops_per_element}"
        );
        Self {
            m_elements,
            ops_per_element,
            law: AmdahlLaw::new(alpha),
        }
    }

    /// A zero-cost task (used for virtual entry/exit nodes).
    pub fn zero() -> Self {
        Self::new(0, 0.0, 0.0)
    }

    /// Whether this task performs no computation at all.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.m_elements == 0 || self.ops_per_element == 0.0
    }

    /// Dataset size in elements (`m`).
    #[inline]
    pub fn m_elements(&self) -> u64 {
        self.m_elements
    }

    /// Flop density `a` (operations per element).
    #[inline]
    pub fn ops_per_element(&self) -> f64 {
        self.ops_per_element
    }

    /// Non-parallelizable fraction `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.law.alpha()
    }

    /// The Amdahl model of this task.
    #[inline]
    pub fn law(&self) -> AmdahlLaw {
        self.law
    }

    /// Total sequential cost in floating point operations: `a · m`.
    #[inline]
    pub fn seq_flops(&self) -> f64 {
        self.ops_per_element * self.m_elements as f64
    }

    /// Size of the task's dataset in bytes (`8 · m`): the volume of data the
    /// task communicates to each of its successors.
    #[inline]
    pub fn data_bytes(&self) -> f64 {
        (self.m_elements * BYTES_PER_ELEMENT) as f64
    }

    /// Sequential execution time in seconds on a processor delivering
    /// `gflops` GFlop/s: `T(t, 1) = a·m / (gflops · 10⁹)`.
    ///
    /// # Panics
    ///
    /// Panics if `gflops` is not strictly positive.
    #[inline]
    pub fn seq_time(&self, gflops: f64) -> f64 {
        assert!(
            gflops.is_finite() && gflops > 0.0,
            "processor speed must be positive, got {gflops} GFlop/s"
        );
        self.seq_flops() / (gflops * 1e9)
    }

    /// Execution time `T(t, p)` in seconds on `p` processors of `gflops`
    /// GFlop/s each, following Amdahl's law.
    #[inline]
    pub fn time(&self, p: u32, gflops: f64) -> f64 {
        self.seq_time(gflops) * self.law.time_fraction(p)
    }

    /// The *work* `ω = T(t, p) · p` in processor-seconds: the paper's measure
    /// of resource consumption.
    #[inline]
    pub fn work(&self, p: u32, gflops: f64) -> f64 {
        self.time(p, gflops) * f64::from(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const GFLOPS: f64 = 3.379; // grillon processors

    #[test]
    fn zero_cost_task() {
        let z = TaskCost::zero();
        assert!(z.is_zero());
        assert_eq!(z.seq_flops(), 0.0);
        assert_eq!(z.time(7, GFLOPS), 0.0);
        assert_eq!(z.work(7, GFLOPS), 0.0);
        assert_eq!(z.data_bytes(), 0.0);
    }

    #[test]
    fn sequential_time_matches_hand_computation() {
        // 10M elements × 100 ops = 1e9 flop on a 2 GFlop/s node → 0.5 s.
        let c = TaskCost::new(10_000_000, 100.0, 0.0);
        assert!((c.seq_time(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn data_volume_is_eight_bytes_per_element() {
        let c = TaskCost::new(4_000_000, 64.0, 0.1);
        assert_eq!(c.data_bytes(), 32_000_000.0);
    }

    #[test]
    fn time_on_p_uses_amdahl() {
        let c = TaskCost::new(1_000_000, 1000.0, 0.2);
        let t1 = c.time(1, 1.0);
        let t10 = c.time(10, 1.0);
        // fraction at p=10: 0.2 + 0.8/10 = 0.28
        assert!((t10 / t1 - 0.28).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_zero_speed() {
        TaskCost::new(1, 1.0, 0.0).seq_time(0.0);
    }

    proptest! {
        /// Execution time decreases and work increases with p, for any task.
        #[test]
        fn moldable_monotonicity(
            m in 1u64..200_000_000,
            a in 1.0f64..1024.0,
            alpha in 0.0f64..=0.25,
            p in 1u32..256,
        ) {
            let c = TaskCost::new(m, a, alpha);
            prop_assert!(c.time(p + 1, GFLOPS) <= c.time(p, GFLOPS) * (1.0 + 1e-12));
            prop_assert!(c.work(p + 1, GFLOPS) >= c.work(p, GFLOPS) * (1.0 - 1e-12));
        }

        /// Work on one processor equals sequential time.
        #[test]
        fn work_base_case(m in 1u64..200_000_000, a in 1.0f64..1024.0, alpha in 0.0f64..=0.25) {
            let c = TaskCost::new(m, a, alpha);
            prop_assert!((c.work(1, GFLOPS) - c.seq_time(GFLOPS)).abs() < 1e-12);
        }
    }
}
