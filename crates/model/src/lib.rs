//! Computation cost model for moldable data-parallel tasks.
//!
//! This crate implements the application model of Hunold, Rauber and Suter,
//! *"Redistribution Aware Two-Step Scheduling for Mixed-Parallel
//! Applications"* (CLUSTER 2008), section II-A:
//!
//! * a task operates on a dataset of `m` double-precision elements, with
//!   `4·10⁶ ≤ m ≤ 121·10⁶` (at most ~1 GB of memory per node);
//! * its sequential computational cost is `a · m` floating point operations,
//!   with `a ∈ [2⁶, 2⁹]` (the task performs "multiple iterations", e.g. a
//!   stencil sweep over a `√m × √m` domain);
//! * parallel execution time follows **Amdahl's law**: a fraction
//!   `α ∈ [0, 0.25]` of the sequential time is non-parallelizable, so
//!   `T(t, p) = T(t, 1) · (α + (1 − α)/p)` — monotonically decreasing in `p`;
//! * the *work* of a task is `ω = T(t, p) · p`, monotonically increasing
//!   in `p`;
//! * the volume of data communicated to each successor equals the dataset
//!   size (`8·m` bytes).
//!
//! All times are in **seconds**, data in **bytes**, and computation in
//! **flop**; processing speed is expressed in **GFlop/s** as in the paper's
//! Table II.

mod amdahl;
mod cost;
mod params;

pub use amdahl::AmdahlLaw;
pub use cost::TaskCost;
pub use params::{CostParams, BYTES_PER_ELEMENT};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let c = TaskCost::new(10_000_000, 128.0, 0.1);
        let t1 = c.time(1, 3.0);
        let t4 = c.time(4, 3.0);
        assert!(t4 < t1);
        assert!(c.work(4, 3.0) > c.work(1, 3.0));
    }
}
