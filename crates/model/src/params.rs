//! Random cost-parameter generation following the paper's section II-A.

use rand::Rng;

use crate::cost::TaskCost;

/// Bytes per dataset element (double precision).
pub const BYTES_PER_ELEMENT: u64 = 8;

/// Sampling ranges for random task costs.
///
/// The paper (section II-A) fixes:
///
/// * `m ∈ [4·10⁶, 121·10⁶]` double-precision elements — below 4M a
///   data-parallel task "should most likely be aggregated with its
///   predecessor or successor"; above 121M it would not fit in the assumed
///   1 GB of node memory;
/// * `a ∈ [2⁶, 2⁹] = [64, 512]` operations per element;
/// * `α ∈ [0, 0.25]` non-parallelizable fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Minimum dataset size in elements.
    pub m_min: u64,
    /// Maximum dataset size in elements (inclusive).
    pub m_max: u64,
    /// Minimum flop density `a`.
    pub a_min: f64,
    /// Maximum flop density `a`.
    pub a_max: f64,
    /// Minimum non-parallelizable fraction.
    pub alpha_min: f64,
    /// Maximum non-parallelizable fraction.
    pub alpha_max: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl CostParams {
    /// The exact ranges used by the paper.
    pub const fn paper() -> Self {
        Self {
            m_min: 4_000_000,
            m_max: 121_000_000,
            a_min: 64.0,  // 2^6
            a_max: 512.0, // 2^9
            alpha_min: 0.0,
            alpha_max: 0.25,
        }
    }

    /// A scaled-down variant (≈1000× smaller datasets) for fast unit tests
    /// and Criterion benches; preserves all ratios of the paper's ranges.
    pub const fn tiny() -> Self {
        Self {
            m_min: 4_000,
            m_max: 121_000,
            a_min: 64.0,
            a_max: 512.0,
            alpha_min: 0.0,
            alpha_max: 0.25,
        }
    }

    /// Draws one random task cost (uniform `m`, `a`, `α`).
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or inverted.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskCost {
        self.validate();
        let m = rng.random_range(self.m_min..=self.m_max);
        let a = rng.random_range(self.a_min..=self.a_max);
        let alpha = rng.random_range(self.alpha_min..=self.alpha_max);
        TaskCost::new(m, a, alpha)
    }

    fn validate(&self) {
        assert!(self.m_min <= self.m_max, "empty m range");
        assert!(
            self.a_min <= self.a_max && self.a_min >= 0.0,
            "invalid a range"
        );
        assert!(
            (0.0..=1.0).contains(&self.alpha_min)
                && (0.0..=1.0).contains(&self.alpha_max)
                && self.alpha_min <= self.alpha_max,
            "invalid alpha range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_ranges() {
        let p = CostParams::paper();
        assert_eq!(p.m_min, 4_000_000);
        assert_eq!(p.m_max, 121_000_000);
        assert_eq!(p.a_min, 64.0);
        assert_eq!(p.a_max, 512.0);
        assert_eq!(p.alpha_max, 0.25);
    }

    #[test]
    fn samples_respect_ranges() {
        let p = CostParams::paper();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let c = p.sample(&mut rng);
            assert!((p.m_min..=p.m_max).contains(&c.m_elements()));
            assert!(c.ops_per_element() >= p.a_min && c.ops_per_element() <= p.a_max);
            assert!(c.alpha() >= p.alpha_min && c.alpha() <= p.alpha_max);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = CostParams::paper();
        let a: Vec<TaskCost> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..16).map(|_| p.sample(&mut rng)).collect()
        };
        let b: Vec<TaskCost> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..16).map(|_| p.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn max_dataset_fits_in_1gb() {
        let p = CostParams::paper();
        assert!(p.m_max * BYTES_PER_ELEMENT <= 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "empty m range")]
    fn rejects_inverted_range() {
        let mut p = CostParams::paper();
        p.m_min = p.m_max + 1;
        p.sample(&mut StdRng::seed_from_u64(0));
    }
}
