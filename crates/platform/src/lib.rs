//! Homogeneous cluster platform model (CLUSTER 2008 paper, section II-B).
//!
//! A cluster comprises `P` identical compute nodes, each delivering a fixed
//! processing speed in GFlop/s and owning a *private network link*
//! (latency `λ`, bandwidth `β`) to the interconnect. Communications follow
//! the **bounded multi-port** model: a node may exchange data with several
//! peers at once, but all its flows share the private link's bandwidth.
//!
//! Four interconnect layouts are modelled — the paper's two plus the star
//! and bus platforms of the redistribution-strategy literature
//! (arXiv:cs/0610131), which the workload-synthesis subsystem emits:
//!
//! * **flat** — every node hangs off one big switch (small clusters, ≤64
//!   nodes); a flow crosses the sender's and the receiver's private links;
//! * **hierarchical** — nodes are grouped in cabinets, each cabinet has its
//!   own switch connected to a top-level switch (the paper's `grelon`,
//!   5 cabinets × 24 nodes); inter-cabinet flows additionally cross the two
//!   cabinet uplinks;
//! * **star** — hub-and-spoke: every remote flow crosses the sender's
//!   spoke, the shared central hub and the receiver's spoke, so the hub's
//!   capacity bounds the cluster's aggregate redistribution rate;
//! * **bus** — one shared medium crossed by every remote flow and nothing
//!   else: all transfers in flight contend for the same capacity.
//!
//! To mimic gigabit TCP behaviour, the per-flow rate is capped by the
//! *empirical bandwidth* `β' = min(β, Wmax / RTT)` where `Wmax` is the
//! maximal TCP window and `RTT` twice the path latency — exactly the SimGrid
//! v3.3 rule the paper describes.
//!
//! The crate also defines [`ProcSet`], an *ordered* list of processors: the
//! rank order is what a 1-D block distribution maps data blocks onto, so it
//! is semantically meaningful and preserved by all operations.

mod memo;
mod procset;
mod route;
mod spec;

pub use memo::SetMemo;
pub use procset::ProcSet;
pub use route::{LinkId, Route};
pub use spec::{ClusterSpec, LinkSpec, TopologySpec};

use route::MAX_ROUTE_LINKS;

/// One network resource (a node's private link or a cabinet uplink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Capacity in bytes per second, shared by all flows crossing the link.
    pub bandwidth_bps: f64,
}

/// A concrete platform instantiated from a [`ClusterSpec`]: processors,
/// links and routing.
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    num_procs: u32,
    gflops: f64,
    wmax_bytes: f64,
    links: Vec<Link>,
    /// Cabinet index per processor (`None` for flat topologies).
    cabinet_of: Option<Vec<u32>>,
    /// Link id of each cabinet's uplink (empty for flat topologies).
    uplink_of_cabinet: Vec<LinkId>,
    /// The central hub link of a star topology.
    hub: Option<LinkId>,
    /// The shared medium of a bus topology (remote routes cross only it).
    bus: Option<LinkId>,
}

impl Platform {
    /// Builds the platform for a cluster description.
    ///
    /// Link ids `0..P` are the nodes' private links; any cabinet uplinks
    /// follow.
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        spec.validate();
        let p = spec.num_procs;
        let mut links: Vec<Link> = (0..p)
            .map(|_| Link {
                latency_s: spec.node_link.latency_s,
                bandwidth_bps: spec.node_link.bandwidth_bps,
            })
            .collect();
        let mut cabinet_of = None;
        let mut uplink_of_cabinet = Vec::new();
        let mut hub = None;
        let mut bus = None;
        let push_link = |links: &mut Vec<Link>, l: &crate::spec::LinkSpec| {
            let id = LinkId::from_index(links.len());
            links.push(Link {
                latency_s: l.latency_s,
                bandwidth_bps: l.bandwidth_bps,
            });
            id
        };
        match &spec.topology {
            TopologySpec::Flat => {}
            TopologySpec::Hierarchical {
                cabinets,
                nodes_per_cabinet,
                uplink,
            } => {
                cabinet_of = Some(
                    (0..p)
                        .map(|i| (i / nodes_per_cabinet).min(cabinets - 1))
                        .collect::<Vec<u32>>(),
                );
                uplink_of_cabinet = (0..*cabinets)
                    .map(|_| push_link(&mut links, uplink))
                    .collect();
            }
            TopologySpec::Star { hub: h } => hub = Some(push_link(&mut links, h)),
            TopologySpec::Bus { bus: b } => bus = Some(push_link(&mut links, b)),
        }
        Self {
            name: spec.name.clone(),
            num_procs: p,
            gflops: spec.gflops,
            wmax_bytes: spec.wmax_bytes,
            links,
            cabinet_of,
            uplink_of_cabinet,
            hub,
            bus,
        }
    }

    /// Cluster name (e.g. `"grillon"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors `P`.
    #[inline]
    pub fn num_procs(&self) -> u32 {
        self.num_procs
    }

    /// Per-processor speed in GFlop/s.
    #[inline]
    pub fn gflops(&self) -> f64 {
        self.gflops
    }

    /// Maximal TCP window size (bytes) used for the empirical bandwidth.
    #[inline]
    pub fn wmax_bytes(&self) -> f64 {
        self.wmax_bytes
    }

    /// Number of network links (node links + cabinet uplinks).
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// The private link of processor `p`.
    #[inline]
    pub fn node_link(&self, p: u32) -> LinkId {
        debug_assert!(p < self.num_procs);
        LinkId::from_index(p as usize)
    }

    /// The cabinet index of processor `p` (0 for flat topologies).
    #[inline]
    pub fn cabinet_of(&self, p: u32) -> u32 {
        match &self.cabinet_of {
            Some(c) => c[p as usize],
            None => 0,
        }
    }

    /// `true` if the interconnect has cabinet uplinks.
    #[inline]
    pub fn is_hierarchical(&self) -> bool {
        self.cabinet_of.is_some()
    }

    /// The central hub link of a star topology, if any.
    #[inline]
    pub fn hub_link(&self) -> Option<LinkId> {
        self.hub
    }

    /// The shared medium of a bus topology, if any.
    #[inline]
    pub fn bus_link(&self) -> Option<LinkId> {
        self.bus
    }

    /// The route from `src` to `dst`: the ordered links a flow crosses plus
    /// the accumulated one-way latency. Self-routes (`src == dst`) cross no
    /// link and have zero latency (intra-node copies are free, matching the
    /// paper's "redistribution cost … is zero when … executed on the same
    /// set of processors").
    pub fn route(&self, src: u32, dst: u32) -> Route {
        debug_assert!(src < self.num_procs && dst < self.num_procs);
        let mut links = [LinkId::from_index(0); MAX_ROUTE_LINKS];
        let mut len = 0usize;
        let mut latency = 0.0;
        if src == dst {
            return Route::new(links, 0, 0.0);
        }
        let mut push = |id: LinkId, links: &mut [LinkId; MAX_ROUTE_LINKS], latency: &mut f64| {
            links[len] = id;
            *latency += self.links[id.index()].latency_s;
            len += 1;
        };
        // Bus topologies route every remote flow over the one shared
        // medium — node spokes do not exist as separate resources.
        if let Some(bus) = self.bus {
            push(bus, &mut links, &mut latency);
            return Route::new(links, len, latency);
        }
        push(self.node_link(src), &mut links, &mut latency);
        if let Some(hub) = self.hub {
            push(hub, &mut links, &mut latency);
        }
        if let Some(cab) = &self.cabinet_of {
            let (cs, cd) = (cab[src as usize], cab[dst as usize]);
            if cs != cd {
                push(
                    self.uplink_of_cabinet[cs as usize],
                    &mut links,
                    &mut latency,
                );
                push(
                    self.uplink_of_cabinet[cd as usize],
                    &mut links,
                    &mut latency,
                );
            }
        }
        push(self.node_link(dst), &mut links, &mut latency);
        Route::new(links, len, latency)
    }

    /// Round-trip time between two processors: twice the one-way latency
    /// (the SimGrid rule for multi-hop connections).
    #[inline]
    pub fn rtt(&self, src: u32, dst: u32) -> f64 {
        2.0 * self.route(src, dst).latency_s
    }

    /// Per-flow rate cap from the empirical bandwidth rule
    /// `β' = min(β, Wmax/RTT)`: returns `Wmax/RTT` (infinite for
    /// self-routes), to be combined with link capacities by the caller.
    #[inline]
    pub fn flow_rate_cap(&self, src: u32, dst: u32) -> f64 {
        let rtt = self.rtt(src, dst);
        if rtt == 0.0 {
            f64::INFINITY
        } else {
            self.wmax_bytes / rtt
        }
    }

    /// Steady-state rate of a single, uncontended flow from `src` to `dst`:
    /// `min(min link bandwidth on path, Wmax/RTT)`. Used by the schedulers'
    /// contention-free redistribution estimator.
    pub fn effective_bandwidth(&self, src: u32, dst: u32) -> f64 {
        if src == dst {
            return f64::INFINITY;
        }
        let route = self.route(src, dst);
        let min_bw = route
            .links()
            .iter()
            .map(|&l| self.links[l.index()].bandwidth_bps)
            .fold(f64::INFINITY, f64::min);
        min_bw.min(self.flow_rate_cap(src, dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table2() {
        let chti = Platform::from_spec(&ClusterSpec::chti());
        assert_eq!(chti.num_procs(), 20);
        assert!((chti.gflops() - 4.311).abs() < 1e-12);
        assert!(!chti.is_hierarchical());

        let grillon = Platform::from_spec(&ClusterSpec::grillon());
        assert_eq!(grillon.num_procs(), 47);
        assert!((grillon.gflops() - 3.379).abs() < 1e-12);

        let grelon = Platform::from_spec(&ClusterSpec::grelon());
        assert_eq!(grelon.num_procs(), 120);
        assert!((grelon.gflops() - 3.185).abs() < 1e-12);
        assert!(grelon.is_hierarchical());
        assert_eq!(grelon.num_links(), 120 + 5);
    }

    #[test]
    fn flat_route_crosses_two_links() {
        let p = Platform::from_spec(&ClusterSpec::grillon());
        let r = p.route(0, 5);
        assert_eq!(r.links().len(), 2);
        assert!((r.latency_s - 2e-4).abs() < 1e-15);
        assert!((p.rtt(0, 5) - 4e-4).abs() < 1e-15);
    }

    #[test]
    fn self_route_is_free() {
        let p = Platform::from_spec(&ClusterSpec::chti());
        let r = p.route(3, 3);
        assert!(r.links().is_empty());
        assert_eq!(r.latency_s, 0.0);
        assert_eq!(p.effective_bandwidth(3, 3), f64::INFINITY);
    }

    #[test]
    fn hierarchical_routes() {
        let p = Platform::from_spec(&ClusterSpec::grelon());
        // 0 and 1 are in cabinet 0; 24 is in cabinet 1.
        assert_eq!(p.cabinet_of(0), 0);
        assert_eq!(p.cabinet_of(23), 0);
        assert_eq!(p.cabinet_of(24), 1);
        assert_eq!(p.cabinet_of(119), 4);
        assert_eq!(p.route(0, 1).links().len(), 2);
        assert_eq!(p.route(0, 24).links().len(), 4);
        assert!(p.route(0, 24).latency_s > p.route(0, 1).latency_s);
    }

    #[test]
    fn empirical_bandwidth_throttles_inter_cabinet_flows() {
        let p = Platform::from_spec(&ClusterSpec::grelon());
        let intra = p.effective_bandwidth(0, 1);
        let inter = p.effective_bandwidth(0, 24);
        // Intra-cabinet: RTT = 0.4 ms → Wmax/RTT = 163.84 MB/s > 125 MB/s.
        assert!((intra - 125e6).abs() < 1.0, "intra = {intra}");
        // Inter-cabinet: RTT = 0.8 ms → Wmax/RTT = 81.92 MB/s < 125 MB/s.
        assert!((inter - 81.92e6).abs() < 1.0, "inter = {inter}");
        assert!(inter < intra);
    }

    #[test]
    fn route_is_symmetric_in_length() {
        let p = Platform::from_spec(&ClusterSpec::grelon());
        for (a, b) in [(0u32, 1u32), (0, 24), (5, 119), (30, 31)] {
            assert_eq!(p.route(a, b).links().len(), p.route(b, a).links().len());
            assert!((p.route(a, b).latency_s - p.route(b, a).latency_s).abs() < 1e-15);
        }
    }

    #[test]
    fn star_routes_cross_spokes_and_hub() {
        let hub = LinkSpec {
            latency_s: 50e-6,
            bandwidth_bps: 250e6,
        };
        let p = Platform::from_spec(&ClusterSpec::star("orion", 8, 2.0, hub));
        assert_eq!(p.num_links(), 8 + 1);
        let hub_id = p.hub_link().unwrap();
        assert_eq!(hub_id.index(), 8);
        let r = p.route(1, 5);
        assert_eq!(r.links(), &[p.node_link(1), hub_id, p.node_link(5)]);
        assert!((r.latency_s - (100e-6 + 50e-6 + 100e-6)).abs() < 1e-15);
        assert!(p.route(3, 3).is_local());
        // Every remote flow crosses the hub, so its bandwidth is a shared
        // ceiling even when the spokes are faster.
        let narrow_hub = LinkSpec {
            latency_s: 0.0,
            bandwidth_bps: 10e6,
        };
        let q = Platform::from_spec(&ClusterSpec::star("narrow", 4, 2.0, narrow_hub));
        assert!((q.effective_bandwidth(0, 1) - 10e6).abs() < 1.0);
    }

    #[test]
    fn bus_routes_cross_only_the_medium() {
        let bus = LinkSpec {
            latency_s: 20e-6,
            bandwidth_bps: 12.5e6,
        };
        let p = Platform::from_spec(&ClusterSpec::bus("ether", 6, 1.5, bus));
        let bus_id = p.bus_link().unwrap();
        let r = p.route(0, 5);
        assert_eq!(r.links(), &[bus_id]);
        assert!((r.latency_s - 20e-6).abs() < 1e-18);
        assert!(p.route(2, 2).is_local());
        assert!((p.effective_bandwidth(0, 5) - 12.5e6).abs() < 1.0);
        // Symmetric: both directions use the same single link.
        assert_eq!(p.route(5, 0).links(), r.links());
    }

    #[test]
    fn gigabit_is_125_mbytes() {
        let s = LinkSpec::gigabit();
        assert!((s.bandwidth_bps - 125e6).abs() < 1e-6);
        assert!((s.latency_s - 100e-6).abs() < 1e-15);
    }
}
