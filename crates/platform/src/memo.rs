//! Arena-backed memo tables keyed by ordered processor sets.
//!
//! Schedulers memoize per-([`ProcSet`], slot) facts on their hot path, where
//! a slot is some caller-chosen context (a producer task, a consumer task).
//! Slots see few distinct sets, so a fingerprint-prefiltered linear scan
//! beats hashing, and storing every key's rank sequence in one shared arena
//! keeps inserts from allocating per entry. Hits are **exact**: the
//! fingerprint only pre-filters; the rank sequence comparison decides.
//!
//! Entries live in a single shared arena, chained per slot as an intrusive
//! FIFO list (`head`/`tail` indices per slot, `next` index per entry). A
//! memo therefore owns exactly **three** growable buffers no matter how many
//! slots or entries it holds — inserts never allocate per slot, and scans
//! touch a dense entry array instead of chasing per-slot heap vectors.

use crate::procset::ProcSet;

/// Sentinel for "no entry" in the slot chains.
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry<V> {
    fp: u64,
    offset: u32,
    len: u32,
    /// Arena index of the next entry in the same slot (`NONE` at the tail).
    next: u32,
    value: V,
}

/// A memo of `V` values keyed by `(slot, ordered processor set)`, with an
/// optional caller-side refinement of the key through the `accept` filter
/// of [`get`](Self::get) (e.g. a payload size stored inside `V`).
#[derive(Debug, Clone)]
pub struct SetMemo<V> {
    /// Per slot: arena index of the first entry (`NONE` when empty).
    head: Vec<u32>,
    /// Per slot: arena index of the last entry (insertion order is part of
    /// the contract — `get` returns the *first inserted* match).
    tail: Vec<u32>,
    /// All entries across all slots, in global insertion order.
    entries: Vec<Entry<V>>,
    /// Rank sequences of all memoized key sets, back to back.
    arena: Vec<u32>,
}

impl<V: Copy> SetMemo<V> {
    /// An empty memo with `slots` contexts.
    pub fn new(slots: usize) -> Self {
        Self {
            head: vec![NONE; slots],
            tail: vec![NONE; slots],
            entries: Vec::new(),
            arena: Vec::new(),
        }
    }

    /// The first value memoized in `slot` whose key set equals `set` (same
    /// members in the same rank order) and whose value satisfies `accept`.
    pub fn get(&self, slot: usize, set: &ProcSet, mut accept: impl FnMut(&V) -> bool) -> Option<V> {
        let fp = set.fingerprint();
        let key = set.as_slice();
        let mut at = self.head[slot];
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.fp == fp
                && self.arena[e.offset as usize..(e.offset + e.len) as usize] == *key
                && accept(&e.value)
            {
                return Some(e.value);
            }
            at = e.next;
        }
        None
    }

    /// Memoizes `value` under `(slot, set)`. The caller keeps (slot, set,
    /// accept-relevant parts of `value`) unique — duplicates are not
    /// overwritten, merely shadowed by insertion order.
    pub fn insert(&mut self, slot: usize, set: &ProcSet, value: V) {
        let offset = self.arena.len() as u32;
        self.arena.extend_from_slice(set.as_slice());
        let at = self.entries.len() as u32;
        self.entries.push(Entry {
            fp: set.fingerprint(),
            offset,
            len: set.len(),
            next: NONE,
            value,
        });
        if self.tail[slot] == NONE {
            self.head[slot] = at;
        } else {
            self.entries[self.tail[slot] as usize].next = at;
        }
        self.tail[slot] = at;
    }

    /// Total number of memoized entries across all slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_per_slot_and_exact_ordered_set() {
        let mut m: SetMemo<f64> = SetMemo::new(2);
        assert!(m.is_empty());
        let a = ProcSet::new(vec![1, 2, 3]);
        let a_rev = ProcSet::new(vec![3, 2, 1]);
        m.insert(0, &a, 10.0);
        assert_eq!(m.get(0, &a, |_| true), Some(10.0));
        assert_eq!(m.get(0, &a_rev, |_| true), None, "rank order is the key");
        assert_eq!(m.get(1, &a, |_| true), None, "slots are independent");
        m.insert(1, &a_rev, 20.0);
        assert_eq!(m.get(1, &a_rev, |_| true), Some(20.0));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn accept_filter_refines_the_key() {
        let mut m: SetMemo<(u64, f64)> = SetMemo::new(1);
        let s = ProcSet::new(vec![4, 7]);
        m.insert(0, &s, (100, 1.0));
        m.insert(0, &s, (200, 2.0));
        assert_eq!(m.get(0, &s, |(b, _)| *b == 200), Some((200, 2.0)));
        assert_eq!(m.get(0, &s, |(b, _)| *b == 300), None);
    }

    #[test]
    fn first_inserted_match_wins_within_a_slot() {
        let mut m: SetMemo<u32> = SetMemo::new(1);
        let s = ProcSet::new(vec![4, 7]);
        m.insert(0, &s, 1);
        m.insert(0, &s, 2);
        assert_eq!(
            m.get(0, &s, |_| true),
            Some(1),
            "FIFO chain order: duplicates shadow, not overwrite"
        );
    }

    #[test]
    fn long_chains_stay_correct() {
        let mut m: SetMemo<u32> = SetMemo::new(3);
        let sets: Vec<ProcSet> = (0..50).map(|i| ProcSet::new(vec![i, i + 100])).collect();
        for (i, s) in sets.iter().enumerate() {
            m.insert(i % 3, s, i as u32);
        }
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(m.get(i % 3, s, |_| true), Some(i as u32));
            assert_eq!(m.get((i + 1) % 3, s, |_| true), None);
        }
        assert_eq!(m.len(), 50);
    }
}
