//! Arena-backed memo tables keyed by ordered processor sets.
//!
//! Schedulers memoize per-([`ProcSet`], slot) facts on their hot path, where
//! a slot is some caller-chosen context (a producer task, a consumer task).
//! Slots see few distinct sets, so a fingerprint-prefiltered linear scan
//! beats hashing, and storing every key's rank sequence in one shared arena
//! keeps inserts from allocating per entry. Hits are **exact**: the
//! fingerprint only pre-filters; the rank sequence comparison decides.

use crate::procset::ProcSet;

#[derive(Debug, Clone, Copy)]
struct Entry<V> {
    fp: u64,
    offset: u32,
    len: u32,
    value: V,
}

/// A memo of `V` values keyed by `(slot, ordered processor set)`, with an
/// optional caller-side refinement of the key through the `accept` filter
/// of [`get`](Self::get) (e.g. a payload size stored inside `V`).
#[derive(Debug, Clone)]
pub struct SetMemo<V> {
    slots: Vec<Vec<Entry<V>>>,
    /// Rank sequences of all memoized key sets, back to back.
    arena: Vec<u32>,
}

impl<V: Copy> SetMemo<V> {
    /// An empty memo with `slots` contexts.
    pub fn new(slots: usize) -> Self {
        Self {
            slots: vec![Vec::new(); slots],
            arena: Vec::new(),
        }
    }

    /// The first value memoized in `slot` whose key set equals `set` (same
    /// members in the same rank order) and whose value satisfies `accept`.
    pub fn get(&self, slot: usize, set: &ProcSet, mut accept: impl FnMut(&V) -> bool) -> Option<V> {
        let fp = set.fingerprint();
        self.slots[slot]
            .iter()
            .find(|e| {
                e.fp == fp
                    && self.arena[e.offset as usize..(e.offset + e.len) as usize] == *set.as_slice()
                    && accept(&e.value)
            })
            .map(|e| e.value)
    }

    /// Memoizes `value` under `(slot, set)`. The caller keeps (slot, set,
    /// accept-relevant parts of `value`) unique — duplicates are not
    /// overwritten, merely shadowed by insertion order.
    pub fn insert(&mut self, slot: usize, set: &ProcSet, value: V) {
        let offset = self.arena.len() as u32;
        self.arena.extend_from_slice(set.as_slice());
        self.slots[slot].push(Entry {
            fp: set.fingerprint(),
            offset,
            len: set.len(),
            value,
        });
    }

    /// Total number of memoized entries across all slots.
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_per_slot_and_exact_ordered_set() {
        let mut m: SetMemo<f64> = SetMemo::new(2);
        assert!(m.is_empty());
        let a = ProcSet::new(vec![1, 2, 3]);
        let a_rev = ProcSet::new(vec![3, 2, 1]);
        m.insert(0, &a, 10.0);
        assert_eq!(m.get(0, &a, |_| true), Some(10.0));
        assert_eq!(m.get(0, &a_rev, |_| true), None, "rank order is the key");
        assert_eq!(m.get(1, &a, |_| true), None, "slots are independent");
        m.insert(1, &a_rev, 20.0);
        assert_eq!(m.get(1, &a_rev, |_| true), Some(20.0));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn accept_filter_refines_the_key() {
        let mut m: SetMemo<(u64, f64)> = SetMemo::new(1);
        let s = ProcSet::new(vec![4, 7]);
        m.insert(0, &s, (100, 1.0));
        m.insert(0, &s, (200, 2.0));
        assert_eq!(m.get(0, &s, |(b, _)| *b == 200), Some((200, 2.0)));
        assert_eq!(m.get(0, &s, |(b, _)| *b == 300), None);
    }
}
