//! Ordered processor sets.

use std::fmt;

/// An *ordered* list of distinct processors.
///
/// The order is semantically meaningful: a task mapped on a `ProcSet`
/// distributes its 1-D block data over the processors **in rank order**
/// (rank `r` owns the `r`-th block). Two tasks mapped on the same *members*
/// in the same *order* need no data movement at all; the same members in a
/// different order still avoid network transfers only for the ranks that
/// coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcSet {
    procs: Vec<u32>,
}

impl ProcSet {
    /// Creates a set from an ordered processor list.
    ///
    /// # Panics
    ///
    /// Panics if the list contains duplicates.
    pub fn new(procs: Vec<u32>) -> Self {
        let mut seen = procs.clone();
        seen.sort_unstable();
        assert!(
            seen.windows(2).all(|w| w[0] != w[1]),
            "processor set contains duplicates: {procs:?}"
        );
        Self { procs }
    }

    /// An empty set.
    pub fn empty() -> Self {
        Self { procs: Vec::new() }
    }

    /// The contiguous range `start..start + len`.
    pub fn from_range(start: u32, len: u32) -> Self {
        Self {
            procs: (start..start + len).collect(),
        }
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.procs.len() as u32
    }

    /// `true` if the set has no processors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The processors in rank order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.procs
    }

    /// Iterates over processors in rank order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u32> + '_ {
        self.procs.iter().copied()
    }

    /// The processor holding block `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn proc_at(&self, rank: usize) -> u32 {
        self.procs[rank]
    }

    /// The rank of processor `p` in this set, if present.
    pub fn rank_of(&self, p: u32) -> Option<usize> {
        self.procs.iter().position(|&q| q == p)
    }

    /// `true` if processor `p` belongs to the set.
    pub fn contains(&self, p: u32) -> bool {
        self.procs.contains(&p)
    }

    /// `true` if both sets have the same members, regardless of order.
    /// This is the paper's "same set of processors" condition under which a
    /// redistribution is free — combined with rank alignment (see
    /// `rats-redist`), identical ordered sets move zero bytes.
    pub fn same_members(&self, other: &Self) -> bool {
        if self.procs.len() != other.procs.len() {
            return false;
        }
        let mut a = self.procs.clone();
        let mut b = other.procs.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Number of processors present in both sets.
    pub fn overlap_count(&self, other: &Self) -> u32 {
        self.procs.iter().filter(|p| other.contains(**p)).count() as u32
    }

    /// The members present in both sets, in `self`'s rank order.
    pub fn common_procs(&self, other: &Self) -> Vec<u32> {
        self.procs
            .iter()
            .copied()
            .filter(|p| other.contains(*p))
            .collect()
    }

    /// The first `k` processors of the set (in rank order).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the set size.
    pub fn first_k(&self, k: u32) -> Self {
        assert!(k <= self.len(), "cannot take {k} of {}", self.len());
        Self {
            procs: self.procs[..k as usize].to_vec(),
        }
    }

    /// A copy with members sorted ascending (canonical order).
    pub fn sorted(&self) -> Self {
        let mut procs = self.procs.clone();
        procs.sort_unstable();
        Self { procs }
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u32> for ProcSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_ranks() {
        let s = ProcSet::new(vec![5, 2, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.proc_at(0), 5);
        assert_eq!(s.rank_of(9), Some(2));
        assert_eq!(s.rank_of(7), None);
        assert!(s.contains(2));
        assert!(!s.contains(4));
    }

    #[test]
    fn same_members_ignores_order() {
        let a = ProcSet::new(vec![1, 2, 3]);
        let b = ProcSet::new(vec![3, 1, 2]);
        let c = ProcSet::new(vec![1, 2, 4]);
        assert!(a.same_members(&b));
        assert!(!a.same_members(&c));
        assert_ne!(a, b, "ordered equality distinguishes rank order");
        assert_eq!(a, b.sorted());
    }

    #[test]
    fn overlap_and_common() {
        let a = ProcSet::new(vec![1, 2, 3, 4]);
        let b = ProcSet::new(vec![3, 4, 5]);
        assert_eq!(a.overlap_count(&b), 2);
        assert_eq!(a.common_procs(&b), vec![3, 4]);
        assert_eq!(b.common_procs(&a), vec![3, 4]);
    }

    #[test]
    fn range_and_first_k() {
        let s = ProcSet::from_range(10, 5);
        assert_eq!(s.as_slice(), &[10, 11, 12, 13, 14]);
        assert_eq!(s.first_k(2).as_slice(), &[10, 11]);
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcSet::new(vec![3, 1]).to_string(), "{3,1}");
        assert_eq!(ProcSet::empty().to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicates() {
        ProcSet::new(vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn first_k_bounds() {
        ProcSet::from_range(0, 2).first_k(3);
    }
}
