//! Ordered processor sets.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Sentinel for "no compact bitmask available" (some member ≥ 64).
const NO_MASK: u64 = 0;

/// An *ordered* list of distinct processors.
///
/// The order is semantically meaningful: a task mapped on a `ProcSet`
/// distributes its 1-D block data over the processors **in rank order**
/// (rank `r` owns the `r`-th block). Two tasks mapped on the same *members*
/// in the same *order* need no data movement at all; the same members in a
/// different order still avoid network transfers only for the ranks that
/// coincide.
///
/// Construction precomputes two derived values used pervasively by the
/// incremental mapping engine:
///
/// * a **membership bitmask** (`bit p` set for each member `p < 64`), which
///   makes [`contains`](Self::contains), [`same_members`](Self::same_members)
///   and [`overlap_count`](Self::overlap_count) O(1) on platforms with at
///   most 64 processors (the paper's clusters have 20–120; sets themselves
///   rarely exceed 64 but the fallback keeps larger ids correct);
/// * an **order-sensitive fingerprint** ([`fingerprint`](Self::fingerprint),
///   an FNV-1a hash of the rank sequence), cached so the set can be used as
///   a hash-map key in O(1) — the [`Hash`] impl writes the fingerprint
///   instead of rehashing the member list.
#[derive(Debug, Clone)]
pub struct ProcSet {
    procs: Vec<u32>,
    /// Membership bitmask; `NO_MASK` (0) doubles as "empty set" and, when
    /// `procs` is non-empty, as "not representable" (member ≥ 64). The two
    /// cases are disambiguated by `procs.is_empty()`.
    mask: u64,
    /// Order-sensitive FNV-1a fingerprint of the rank sequence.
    hash: u64,
}

/// FNV-1a over the rank sequence: cheap, deterministic across runs, and
/// order-sensitive (two orderings of the same members hash differently,
/// which matters because rank order changes redistribution costs).
fn fnv1a(procs: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in procs {
        h ^= u64::from(p);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ProcSet {
    /// Builds the derived fields. Callers guarantee distinct members.
    fn build(procs: Vec<u32>) -> Self {
        let mut mask: u64 = 0;
        let mut representable = true;
        for &p in &procs {
            if p < 64 {
                mask |= 1u64 << p;
            } else {
                representable = false;
            }
        }
        let mask = if representable { mask } else { NO_MASK };
        let hash = fnv1a(&procs);
        Self { procs, mask, hash }
    }

    /// Creates a set from an ordered processor list.
    ///
    /// Members must be distinct; this is checked with a debug assertion only
    /// (the constructor sits on the mapping engine's hot path, and all
    /// in-tree callers construct from known-distinct lists).
    pub fn new(procs: Vec<u32>) -> Self {
        let set = Self::build(procs);
        debug_assert!(
            set.members_are_distinct(),
            "processor set contains duplicates: {:?}",
            set.procs
        );
        set
    }

    fn members_are_distinct(&self) -> bool {
        if self.mask != NO_MASK || self.procs.is_empty() {
            // A representable mask has one bit per distinct member.
            self.mask.count_ones() as usize == self.procs.len()
        } else {
            let mut seen = self.procs.clone();
            seen.sort_unstable();
            seen.windows(2).all(|w| w[0] != w[1])
        }
    }

    /// An empty set.
    pub fn empty() -> Self {
        Self::build(Vec::new())
    }

    /// The contiguous range `start..start + len`.
    pub fn from_range(start: u32, len: u32) -> Self {
        Self::build((start..start + len).collect())
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.procs.len() as u32
    }

    /// `true` if the set has no processors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The processors in rank order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.procs
    }

    /// The cached order-sensitive fingerprint (FNV-1a over the rank
    /// sequence). Equal sets have equal fingerprints; the converse holds up
    /// to hash collisions, so use it as a hash key, not an equality proof.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// The compact membership bitmask (bit `p` set for member `p`), when
    /// every member is `< 64`; `None` otherwise.
    #[inline]
    pub fn mask(&self) -> Option<u64> {
        if self.mask != NO_MASK || self.procs.is_empty() {
            Some(self.mask)
        } else {
            None
        }
    }

    /// Iterates over processors in rank order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u32> + '_ {
        self.procs.iter().copied()
    }

    /// The processor holding block `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn proc_at(&self, rank: usize) -> u32 {
        self.procs[rank]
    }

    /// The rank of processor `p` in this set, if present.
    pub fn rank_of(&self, p: u32) -> Option<usize> {
        self.procs.iter().position(|&q| q == p)
    }

    /// `true` if processor `p` belongs to the set — O(1) via the bitmask
    /// whenever every member is `< 64`.
    #[inline]
    pub fn contains(&self, p: u32) -> bool {
        if self.mask != NO_MASK {
            p < 64 && self.mask & (1u64 << p) != 0
        } else {
            self.procs.contains(&p)
        }
    }

    /// `true` if both sets have the same members, regardless of order.
    /// This is the paper's "same set of processors" condition under which a
    /// redistribution is free — combined with rank alignment (see
    /// `rats-redist`), identical ordered sets move zero bytes.
    pub fn same_members(&self, other: &Self) -> bool {
        if self.procs.len() != other.procs.len() {
            return false;
        }
        match (self.mask(), other.mask()) {
            (Some(a), Some(b)) => a == b,
            _ => {
                let mut a = self.procs.clone();
                let mut b = other.procs.clone();
                a.sort_unstable();
                b.sort_unstable();
                a == b
            }
        }
    }

    /// Number of processors present in both sets — O(1) when both masks are
    /// representable.
    pub fn overlap_count(&self, other: &Self) -> u32 {
        match (self.mask(), other.mask()) {
            (Some(a), Some(b)) => (a & b).count_ones(),
            _ => self.procs.iter().filter(|p| other.contains(**p)).count() as u32,
        }
    }

    /// The members present in both sets, in `self`'s rank order.
    pub fn common_procs(&self, other: &Self) -> Vec<u32> {
        self.procs
            .iter()
            .copied()
            .filter(|p| other.contains(*p))
            .collect()
    }

    /// The first `k` processors of the set (in rank order).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the set size.
    pub fn first_k(&self, k: u32) -> Self {
        assert!(k <= self.len(), "cannot take {k} of {}", self.len());
        Self::build(self.procs[..k as usize].to_vec())
    }

    /// A copy with members sorted ascending (canonical order).
    pub fn sorted(&self) -> Self {
        let mut procs = self.procs.clone();
        procs.sort_unstable();
        Self::build(procs)
    }
}

impl PartialEq for ProcSet {
    fn eq(&self, other: &Self) -> bool {
        // The fingerprint is a cheap negative filter; the member list is
        // the ground truth (fingerprints can collide).
        self.hash == other.hash && self.procs == other.procs
    }
}

impl Eq for ProcSet {}

impl Hash for ProcSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u32> for ProcSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_ranks() {
        let s = ProcSet::new(vec![5, 2, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.proc_at(0), 5);
        assert_eq!(s.rank_of(9), Some(2));
        assert_eq!(s.rank_of(7), None);
        assert!(s.contains(2));
        assert!(!s.contains(4));
    }

    #[test]
    fn same_members_ignores_order() {
        let a = ProcSet::new(vec![1, 2, 3]);
        let b = ProcSet::new(vec![3, 1, 2]);
        let c = ProcSet::new(vec![1, 2, 4]);
        assert!(a.same_members(&b));
        assert!(!a.same_members(&c));
        assert_ne!(a, b, "ordered equality distinguishes rank order");
        assert_eq!(a, b.sorted());
    }

    #[test]
    fn overlap_and_common() {
        let a = ProcSet::new(vec![1, 2, 3, 4]);
        let b = ProcSet::new(vec![3, 4, 5]);
        assert_eq!(a.overlap_count(&b), 2);
        assert_eq!(a.common_procs(&b), vec![3, 4]);
        assert_eq!(b.common_procs(&a), vec![3, 4]);
    }

    #[test]
    fn range_and_first_k() {
        let s = ProcSet::from_range(10, 5);
        assert_eq!(s.as_slice(), &[10, 11, 12, 13, 14]);
        assert_eq!(s.first_k(2).as_slice(), &[10, 11]);
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcSet::new(vec![3, 1]).to_string(), "{3,1}");
        assert_eq!(ProcSet::empty().to_string(), "{}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicates() {
        ProcSet::new(vec![1, 2, 1]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicates_above_mask_range() {
        ProcSet::new(vec![100, 2, 100]);
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn first_k_bounds() {
        ProcSet::from_range(0, 2).first_k(3);
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_cached() {
        let a = ProcSet::new(vec![1, 2, 3]);
        let b = ProcSet::new(vec![3, 2, 1]);
        let a2 = ProcSet::new(vec![1, 2, 3]);
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "rank order must show in the fingerprint"
        );
    }

    #[test]
    fn mask_tracks_membership_for_small_ids() {
        let a = ProcSet::new(vec![0, 2, 63]);
        assert_eq!(a.mask(), Some(1 | (1 << 2) | (1 << 63)));
        assert!(a.contains(63));
        assert!(!a.contains(62));
        // Members ≥ 64 disable the mask but not the queries.
        let big = ProcSet::new(vec![2, 64]);
        assert_eq!(big.mask(), None);
        assert!(big.contains(64));
        assert!(big.contains(2));
        assert!(!big.contains(3));
        assert_eq!(big.overlap_count(&a), 1);
        assert!(!big.same_members(&a));
        // Empty sets have an empty (zero) mask.
        assert_eq!(ProcSet::empty().mask(), Some(0));
    }

    #[test]
    fn hashmap_key_usage() {
        use std::collections::HashMap;
        let mut m: HashMap<ProcSet, u32> = HashMap::new();
        m.insert(ProcSet::new(vec![1, 2, 3]), 1);
        m.insert(ProcSet::new(vec![3, 2, 1]), 2);
        assert_eq!(m.get(&ProcSet::new(vec![1, 2, 3])), Some(&1));
        assert_eq!(m.get(&ProcSet::new(vec![3, 2, 1])), Some(&2));
        assert_eq!(m.get(&ProcSet::new(vec![1, 2])), None);
    }
}
