//! Ordered processor sets.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Members stored inline (no heap allocation) up to this many processors.
/// Covers the overwhelming majority of mapping-engine sets: moldable-task
/// allocations are small (mostly 1–2 processors on the paper's DAGs), and
/// candidate sets are allocation-sized.
const INLINE_CAP: usize = 12;

/// An *ordered* list of distinct processors.
///
/// The order is semantically meaningful: a task mapped on a `ProcSet`
/// distributes its 1-D block data over the processors **in rank order**
/// (rank `r` owns the `r`-th block). Two tasks mapped on the same *members*
/// in the same *order* need no data movement at all; the same members in a
/// different order still avoid network transfers only for the ranks that
/// coincide.
///
/// # Storage
///
/// Sets of up to [`INLINE_CAP`] processors are stored inline — cloning them
/// (which the mapping policies do once per candidate evaluation) never
/// touches the heap. Larger sets spill to a `Vec`.
///
/// Construction precomputes two derived values used pervasively by the
/// incremental mapping engine:
///
/// * a **membership bitmask** in one of three tiers chosen by the largest
///   member id — a single word (`< 64`), a fixed four-word array (`< 256`),
///   or a boxed spill for larger platforms — which keeps
///   [`contains`](Self::contains), [`same_members`](Self::same_members) and
///   [`overlap_count`](Self::overlap_count) branch-cheap at every platform
///   size (the tier is canonical for a member set, so cross-tier sets can
///   never be equal);
/// * an **order-sensitive fingerprint** ([`fingerprint`](Self::fingerprint),
///   an FNV-1a hash of the rank sequence), cached so the set can be used as
///   a hash-map key in O(1) — the [`Hash`] impl writes the fingerprint
///   instead of rehashing the member list.
#[derive(Clone)]
pub struct ProcSet {
    members: Members,
    mask: MaskTier,
    /// Order-sensitive FNV-1a fingerprint of the rank sequence.
    hash: u64,
}

/// Inline-or-heap member storage (see [`ProcSet`] docs).
#[derive(Clone)]
enum Members {
    Inline { len: u8, buf: [u32; INLINE_CAP] },
    Heap(Vec<u32>),
}

impl Members {
    #[inline]
    fn from_slice(procs: &[u32]) -> Self {
        if procs.len() <= INLINE_CAP {
            let mut buf = [0u32; INLINE_CAP];
            buf[..procs.len()].copy_from_slice(procs);
            Members::Inline {
                len: procs.len() as u8,
                buf,
            }
        } else {
            Members::Heap(procs.to_vec())
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            Members::Inline { len, buf } => &buf[..*len as usize],
            Members::Heap(v) => v,
        }
    }
}

/// Tiered membership bitmask. The tier is **canonical**: it depends only on
/// the largest member (`< 64` → `Word`, `< 256` → `Small`, else `Spill`
/// sized to the largest member), so two sets with equal members always land
/// in the same tier with equal words — bitmask equality *is* member
/// equality.
#[derive(Clone, PartialEq)]
enum MaskTier {
    /// Every member `< 64` (includes the empty set).
    Word(u64),
    /// Every member `< 256`.
    Small([u64; 4]),
    /// Arbitrary member ids; `⌈(max + 1) / 64⌉` words.
    Spill(Box<[u64]>),
}

impl MaskTier {
    fn build(procs: &[u32]) -> Self {
        let max = procs.iter().copied().max().unwrap_or(0);
        if max < 64 {
            let mut w = 0u64;
            for &p in procs {
                w |= 1u64 << p;
            }
            MaskTier::Word(w)
        } else if max < 256 {
            let mut a = [0u64; 4];
            for &p in procs {
                a[(p >> 6) as usize] |= 1u64 << (p & 63);
            }
            MaskTier::Small(a)
        } else {
            let mut v = vec![0u64; (max as usize >> 6) + 1];
            for &p in procs {
                v[(p >> 6) as usize] |= 1u64 << (p & 63);
            }
            MaskTier::Spill(v.into_boxed_slice())
        }
    }

    #[inline]
    fn contains(&self, p: u32) -> bool {
        match self {
            MaskTier::Word(w) => p < 64 && w >> p & 1 != 0,
            MaskTier::Small(a) => p < 256 && a[(p >> 6) as usize] >> (p & 63) & 1 != 0,
            MaskTier::Spill(b) => {
                let i = (p >> 6) as usize;
                i < b.len() && b[i] >> (p & 63) & 1 != 0
            }
        }
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match self {
            MaskTier::Word(w) => std::slice::from_ref(w),
            MaskTier::Small(a) => a,
            MaskTier::Spill(b) => b,
        }
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }
}

/// FNV-1a over the rank sequence: cheap, deterministic across runs, and
/// order-sensitive (two orderings of the same members hash differently,
/// which matters because rank order changes redistribution costs).
fn fnv1a(procs: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in procs {
        h ^= u64::from(p);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ProcSet {
    /// Builds the derived fields. Callers guarantee distinct members.
    fn build(members: Members) -> Self {
        let procs = members.as_slice();
        let mask = MaskTier::build(procs);
        let hash = fnv1a(procs);
        Self {
            members,
            mask,
            hash,
        }
    }

    /// Creates a set from an ordered processor list.
    ///
    /// Members must be distinct; this is checked with a debug assertion only
    /// (the constructor sits on the mapping engine's hot path, and all
    /// in-tree callers construct from known-distinct lists).
    pub fn new(procs: Vec<u32>) -> Self {
        let members = if procs.len() <= INLINE_CAP {
            Members::from_slice(&procs)
        } else {
            Members::Heap(procs)
        };
        let set = Self::build(members);
        debug_assert!(
            set.members_are_distinct(),
            "processor set contains duplicates: {:?}",
            set.as_slice()
        );
        set
    }

    /// Creates a set from an ordered processor slice without consuming a
    /// `Vec` — for sets up to [`INLINE_CAP`] members this performs **no heap
    /// allocation**, which is what keeps the mapping engine's candidate
    /// construction allocation-free in steady state.
    pub fn from_slice(procs: &[u32]) -> Self {
        let set = Self::build(Members::from_slice(procs));
        debug_assert!(
            set.members_are_distinct(),
            "processor set contains duplicates: {:?}",
            set.as_slice()
        );
        set
    }

    fn members_are_distinct(&self) -> bool {
        // Every tier has exactly one bit per distinct member.
        self.mask.count_ones() as usize == self.as_slice().len()
    }

    /// An empty set.
    pub fn empty() -> Self {
        Self::from_slice(&[])
    }

    /// The contiguous range `start..start + len`.
    pub fn from_range(start: u32, len: u32) -> Self {
        Self::new((start..start + len).collect())
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.as_slice().len() as u32
    }

    /// `true` if the set has no processors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The processors in rank order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        self.members.as_slice()
    }

    /// The cached order-sensitive fingerprint (FNV-1a over the rank
    /// sequence). Equal sets have equal fingerprints; the converse holds up
    /// to hash collisions, so use it as a hash key, not an equality proof.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// The compact membership bitmask (bit `p` set for member `p`), when
    /// every member is `< 64`; `None` otherwise (the set then lives in a
    /// wider mask tier that [`contains`](Self::contains) and friends use
    /// internally).
    #[inline]
    pub fn mask(&self) -> Option<u64> {
        match self.mask {
            MaskTier::Word(w) => Some(w),
            _ => None,
        }
    }

    /// Iterates over processors in rank order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u32> + '_ {
        self.as_slice().iter().copied()
    }

    /// The processor holding block `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn proc_at(&self, rank: usize) -> u32 {
        self.as_slice()[rank]
    }

    /// The rank of processor `p` in this set, if present.
    pub fn rank_of(&self, p: u32) -> Option<usize> {
        self.as_slice().iter().position(|&q| q == p)
    }

    /// `true` if processor `p` belongs to the set — O(1) in every mask tier.
    #[inline]
    pub fn contains(&self, p: u32) -> bool {
        self.mask.contains(p)
    }

    /// `true` if both sets have the same members, regardless of order.
    /// This is the paper's "same set of processors" condition under which a
    /// redistribution is free — combined with rank alignment (see
    /// `rats-redist`), identical ordered sets move zero bytes.
    ///
    /// O(1) for the word tier and O(words) otherwise: the mask tier is
    /// canonical per member set, so tier + words equality *is* member
    /// equality (cross-tier sets always differ).
    pub fn same_members(&self, other: &Self) -> bool {
        self.as_slice().len() == other.as_slice().len() && self.mask == other.mask
    }

    /// Number of processors present in both sets — an AND + popcount over
    /// the overlapping mask words in every tier combination.
    pub fn overlap_count(&self, other: &Self) -> u32 {
        if let (MaskTier::Word(a), MaskTier::Word(b)) = (&self.mask, &other.mask) {
            return (a & b).count_ones();
        }
        self.mask
            .words()
            .iter()
            .zip(other.mask.words())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// The members present in both sets, in `self`'s rank order.
    pub fn common_procs(&self, other: &Self) -> Vec<u32> {
        self.iter().filter(|p| other.contains(*p)).collect()
    }

    /// The first `k` processors of the set (in rank order).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the set size.
    pub fn first_k(&self, k: u32) -> Self {
        assert!(k <= self.len(), "cannot take {k} of {}", self.len());
        Self::from_slice(&self.as_slice()[..k as usize])
    }

    /// A copy with members sorted ascending (canonical order).
    pub fn sorted(&self) -> Self {
        let mut members = self.members.clone();
        match &mut members {
            Members::Inline { len, buf } => buf[..*len as usize].sort_unstable(),
            Members::Heap(v) => v.sort_unstable(),
        }
        Self::build(members)
    }
}

impl PartialEq for ProcSet {
    fn eq(&self, other: &Self) -> bool {
        // The fingerprint is a cheap negative filter; the member list is
        // the ground truth (fingerprints can collide).
        self.hash == other.hash && self.as_slice() == other.as_slice()
    }
}

impl Eq for ProcSet {}

impl Hash for ProcSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcSet")
            .field("procs", &self.as_slice())
            .finish()
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u32> for ProcSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_ranks() {
        let s = ProcSet::new(vec![5, 2, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.proc_at(0), 5);
        assert_eq!(s.rank_of(9), Some(2));
        assert_eq!(s.rank_of(7), None);
        assert!(s.contains(2));
        assert!(!s.contains(4));
    }

    #[test]
    fn same_members_ignores_order() {
        let a = ProcSet::new(vec![1, 2, 3]);
        let b = ProcSet::new(vec![3, 1, 2]);
        let c = ProcSet::new(vec![1, 2, 4]);
        assert!(a.same_members(&b));
        assert!(!a.same_members(&c));
        assert_ne!(a, b, "ordered equality distinguishes rank order");
        assert_eq!(a, b.sorted());
    }

    #[test]
    fn overlap_and_common() {
        let a = ProcSet::new(vec![1, 2, 3, 4]);
        let b = ProcSet::new(vec![3, 4, 5]);
        assert_eq!(a.overlap_count(&b), 2);
        assert_eq!(a.common_procs(&b), vec![3, 4]);
        assert_eq!(b.common_procs(&a), vec![3, 4]);
    }

    #[test]
    fn range_and_first_k() {
        let s = ProcSet::from_range(10, 5);
        assert_eq!(s.as_slice(), &[10, 11, 12, 13, 14]);
        assert_eq!(s.first_k(2).as_slice(), &[10, 11]);
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcSet::new(vec![3, 1]).to_string(), "{3,1}");
        assert_eq!(ProcSet::empty().to_string(), "{}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicates() {
        ProcSet::new(vec![1, 2, 1]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicates_above_mask_range() {
        ProcSet::new(vec![100, 2, 100]);
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn first_k_bounds() {
        ProcSet::from_range(0, 2).first_k(3);
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_cached() {
        let a = ProcSet::new(vec![1, 2, 3]);
        let b = ProcSet::new(vec![3, 2, 1]);
        let a2 = ProcSet::new(vec![1, 2, 3]);
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "rank order must show in the fingerprint"
        );
    }

    #[test]
    fn mask_tracks_membership_for_small_ids() {
        let a = ProcSet::new(vec![0, 2, 63]);
        assert_eq!(a.mask(), Some(1 | (1 << 2) | (1 << 63)));
        assert!(a.contains(63));
        assert!(!a.contains(62));
        // Members ≥ 64 disable the single-word mask but not the queries.
        let big = ProcSet::new(vec![2, 64]);
        assert_eq!(big.mask(), None);
        assert!(big.contains(64));
        assert!(big.contains(2));
        assert!(!big.contains(3));
        assert_eq!(big.overlap_count(&a), 1);
        assert!(!big.same_members(&a));
        // Empty sets have an empty (zero) mask.
        assert_eq!(ProcSet::empty().mask(), Some(0));
    }

    /// Tier-boundary members (63/64 and 255/256) land in the right tier and
    /// keep every query exact across mixed-tier comparisons.
    #[test]
    fn mask_tiers_cover_boundary_ids() {
        for boundary in [63u32, 64, 65, 255, 256, 257, 1000] {
            let s = ProcSet::new(vec![0, boundary]);
            assert!(s.contains(0));
            assert!(s.contains(boundary));
            assert!(!s.contains(boundary - 1));
            assert_eq!(s.mask().is_some(), boundary < 64, "tier at {boundary}");
            // Same members in another order: equal in every tier.
            let r = ProcSet::new(vec![boundary, 0]);
            assert!(s.same_members(&r));
            assert_eq!(s.overlap_count(&r), 2);
            // A proper subset never compares equal.
            let sub = ProcSet::new(vec![boundary]);
            assert!(!s.same_members(&sub));
            assert_eq!(s.overlap_count(&sub), 1);
        }
        // Cross-tier overlap: word-tier vs spill-tier sets.
        let small = ProcSet::new(vec![1, 2, 3]);
        let huge = ProcSet::new(vec![2, 500]);
        assert_eq!(small.overlap_count(&huge), 1);
        assert_eq!(huge.overlap_count(&small), 1);
        assert!(!small.same_members(&huge));
    }

    /// Sets beyond the inline capacity behave identically to inline ones.
    #[test]
    fn heap_spill_behaves_like_inline() {
        let long: Vec<u32> = (0..40).collect();
        let s = ProcSet::new(long.clone());
        assert_eq!(s.as_slice(), &long[..]);
        assert_eq!(s.len(), 40);
        assert_eq!(s.first_k(3).as_slice(), &[0, 1, 2]);
        let t = ProcSet::from_slice(&long);
        assert_eq!(s, t);
        assert_eq!(s.fingerprint(), t.fingerprint());
        assert!(s.same_members(&t));
        let c = s.clone();
        assert_eq!(c, s);
    }

    #[test]
    fn from_slice_matches_new() {
        for procs in [vec![], vec![7], vec![5, 2, 9], (0..20).collect::<Vec<_>>()] {
            let a = ProcSet::new(procs.clone());
            let b = ProcSet::from_slice(&procs);
            assert_eq!(a, b);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn hashmap_key_usage() {
        use std::collections::HashMap;
        let mut m: HashMap<ProcSet, u32> = HashMap::new();
        m.insert(ProcSet::new(vec![1, 2, 3]), 1);
        m.insert(ProcSet::new(vec![3, 2, 1]), 2);
        assert_eq!(m.get(&ProcSet::new(vec![1, 2, 3])), Some(&1));
        assert_eq!(m.get(&ProcSet::new(vec![3, 2, 1])), Some(&2));
        assert_eq!(m.get(&ProcSet::new(vec![1, 2])), None);
    }
}
