//! Link identifiers and fixed-capacity route descriptions.

use std::fmt;

/// Maximum number of links a route can cross (node, uplink, uplink, node).
pub(crate) const MAX_ROUTE_LINKS: usize = 4;

/// Identifier of a network link inside a [`Platform`](crate::Platform).
///
/// Ids `0..P` are the processors' private links; cabinet uplinks follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a `LinkId` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("more than u32::MAX links"))
    }

    /// The dense index of this link.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The ordered set of links a flow crosses, with the total one-way latency.
///
/// Stored inline (no allocation): routes are computed in the simulator's hot
/// loop for every flow.
#[derive(Debug, Clone, Copy)]
pub struct Route {
    links: [LinkId; MAX_ROUTE_LINKS],
    len: u8,
    /// Sum of the one-way latencies of all crossed links, in seconds.
    pub latency_s: f64,
}

impl Route {
    pub(crate) fn new(links: [LinkId; MAX_ROUTE_LINKS], len: usize, latency_s: f64) -> Self {
        debug_assert!(len <= MAX_ROUTE_LINKS);
        Self {
            links,
            len: len as u8,
            latency_s,
        }
    }

    /// The crossed links, in order from sender to receiver.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }

    /// `true` for self-routes (no link crossed).
    #[inline]
    pub fn is_local(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_id_round_trip() {
        assert_eq!(LinkId::from_index(9).index(), 9);
        assert_eq!(LinkId::from_index(9).to_string(), "l9");
    }

    #[test]
    fn empty_route_is_local() {
        let r = Route::new([LinkId::from_index(0); MAX_ROUTE_LINKS], 0, 0.0);
        assert!(r.is_local());
        assert!(r.links().is_empty());
    }

    #[test]
    fn route_slices_expose_only_len() {
        let ids = [
            LinkId::from_index(1),
            LinkId::from_index(2),
            LinkId::from_index(0),
            LinkId::from_index(0),
        ];
        let r = Route::new(ids, 2, 2e-4);
        assert_eq!(r.links(), &[LinkId::from_index(1), LinkId::from_index(2)]);
        assert!(!r.is_local());
    }
}
