//! Declarative cluster descriptions and the paper's Grid'5000 presets.

/// Latency/bandwidth pair describing one kind of network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in **bytes** per second.
    pub bandwidth_bps: f64,
}

impl LinkSpec {
    /// The paper's gigabit switched interconnect: 100 µs latency, 1 Gb/s
    /// (= 125 MB/s) bandwidth.
    pub const fn gigabit() -> Self {
        Self {
            latency_s: 100e-6,
            bandwidth_bps: 125e6,
        }
    }
}

/// Interconnect layout.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// All nodes connected to a single switch.
    Flat,
    /// Nodes grouped in cabinets; each cabinet switch is connected to a
    /// top-level switch through an `uplink`.
    Hierarchical {
        /// Number of cabinets.
        cabinets: u32,
        /// Nodes per cabinet (the last cabinet absorbs any remainder).
        nodes_per_cabinet: u32,
        /// Cabinet-to-top-switch link.
        uplink: LinkSpec,
    },
    /// Hub-and-spoke: every node's private link feeds one central hub whose
    /// backplane is itself a shared, finite resource — every remote flow
    /// crosses `src spoke → hub → dst spoke`. This is the star platform of
    /// the redistribution-strategy literature (arXiv:cs/0610131); an
    /// undersized hub serializes cross-cluster redistributions the way a
    /// cabinet uplink does, but for *all* traffic.
    Star {
        /// The central hub resource shared by every flow.
        hub: LinkSpec,
    },
    /// A single shared medium (classic bus Ethernet): every remote flow
    /// crosses the one `bus` link and nothing else, so all transfers in
    /// flight contend for the same capacity and pay the same latency.
    Bus {
        /// The shared medium.
        bus: LinkSpec,
    },
}

/// A complete homogeneous-cluster description (paper, Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// Number of single-core compute nodes.
    pub num_procs: u32,
    /// Node speed in GFlop/s (HP Linpack over ACML, per the paper).
    pub gflops: f64,
    /// Private link of every node.
    pub node_link: LinkSpec,
    /// Interconnect layout.
    pub topology: TopologySpec,
    /// Maximal TCP window size in bytes, for `β' = min(β, Wmax/RTT)`.
    pub wmax_bytes: f64,
}

/// Default maximal TCP window size (64 KiB — the Linux default of the
/// SimGrid v3.3 era the paper simulated with).
pub const DEFAULT_WMAX_BYTES: f64 = 65536.0;

impl ClusterSpec {
    /// A flat gigabit cluster with `num_procs` nodes of `gflops` GFlop/s.
    pub fn flat(name: impl Into<String>, num_procs: u32, gflops: f64) -> Self {
        Self {
            name: name.into(),
            num_procs,
            gflops,
            node_link: LinkSpec::gigabit(),
            topology: TopologySpec::Flat,
            wmax_bytes: DEFAULT_WMAX_BYTES,
        }
    }

    /// A star platform: `num_procs` nodes of `gflops` GFlop/s, gigabit
    /// spokes, the given central hub.
    pub fn star(name: impl Into<String>, num_procs: u32, gflops: f64, hub: LinkSpec) -> Self {
        Self {
            name: name.into(),
            num_procs,
            gflops,
            node_link: LinkSpec::gigabit(),
            topology: TopologySpec::Star { hub },
            wmax_bytes: DEFAULT_WMAX_BYTES,
        }
    }

    /// A bus platform: `num_procs` nodes of `gflops` GFlop/s sharing one
    /// medium.
    pub fn bus(name: impl Into<String>, num_procs: u32, gflops: f64, bus: LinkSpec) -> Self {
        Self {
            name: name.into(),
            num_procs,
            gflops,
            node_link: LinkSpec::gigabit(),
            topology: TopologySpec::Bus { bus },
            wmax_bytes: DEFAULT_WMAX_BYTES,
        }
    }

    /// The `chti` cluster (Lille): 20 processors at 4.311 GFlop/s, flat.
    pub fn chti() -> Self {
        Self::flat("chti", 20, 4.311)
    }

    /// The `grillon` cluster (Nancy): 47 processors at 3.379 GFlop/s, flat.
    pub fn grillon() -> Self {
        Self::flat("grillon", 47, 3.379)
    }

    /// The `grelon` cluster (Nancy): 120 processors at 3.185 GFlop/s,
    /// divided into five cabinets of 24 nodes each (hierarchical network).
    pub fn grelon() -> Self {
        Self {
            name: "grelon".into(),
            num_procs: 120,
            gflops: 3.185,
            node_link: LinkSpec::gigabit(),
            topology: TopologySpec::Hierarchical {
                cabinets: 5,
                nodes_per_cabinet: 24,
                uplink: LinkSpec::gigabit(),
            },
            wmax_bytes: DEFAULT_WMAX_BYTES,
        }
    }

    /// The three clusters of the paper's evaluation, in publication order.
    pub fn paper_clusters() -> Vec<Self> {
        vec![Self::chti(), Self::grillon(), Self::grelon()]
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any quantity is non-positive or the hierarchical layout
    /// cannot hold `num_procs` nodes.
    pub fn validate(&self) {
        assert!(self.num_procs > 0, "cluster must have at least one node");
        assert!(self.gflops > 0.0, "node speed must be positive");
        assert!(
            self.node_link.bandwidth_bps > 0.0 && self.node_link.latency_s >= 0.0,
            "node link must have positive bandwidth and non-negative latency"
        );
        assert!(self.wmax_bytes > 0.0, "TCP window must be positive");
        match &self.topology {
            TopologySpec::Flat => {}
            TopologySpec::Hierarchical {
                cabinets,
                nodes_per_cabinet,
                uplink,
            } => {
                assert!(*cabinets > 0 && *nodes_per_cabinet > 0, "empty cabinets");
                assert!(
                    cabinets * nodes_per_cabinet >= self.num_procs,
                    "cabinets ({cabinets} × {nodes_per_cabinet}) cannot hold {} nodes",
                    self.num_procs
                );
                assert!(
                    uplink.bandwidth_bps > 0.0 && uplink.latency_s >= 0.0,
                    "uplink must have positive bandwidth and non-negative latency"
                );
            }
            TopologySpec::Star { hub } => {
                assert!(
                    hub.bandwidth_bps > 0.0 && hub.latency_s >= 0.0,
                    "hub must have positive bandwidth and non-negative latency"
                );
            }
            TopologySpec::Bus { bus } => {
                assert!(
                    bus.bandwidth_bps > 0.0 && bus.latency_s >= 0.0,
                    "bus must have positive bandwidth and non-negative latency"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clusters_are_three() {
        let cs = ClusterSpec::paper_clusters();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].name, "chti");
        assert_eq!(cs[1].name, "grillon");
        assert_eq!(cs[2].name, "grelon");
        for c in &cs {
            c.validate();
        }
    }

    #[test]
    fn grelon_cabinets_hold_all_nodes() {
        let g = ClusterSpec::grelon();
        if let TopologySpec::Hierarchical {
            cabinets,
            nodes_per_cabinet,
            ..
        } = g.topology
        {
            assert_eq!(cabinets * nodes_per_cabinet, 120);
        } else {
            panic!("grelon must be hierarchical");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_cluster() {
        ClusterSpec::flat("x", 0, 1.0).validate();
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rejects_overfull_cabinets() {
        let mut s = ClusterSpec::grelon();
        s.num_procs = 200;
        s.validate();
    }
}
