//! Receiver-set reordering to maximize self communication.

use rats_platform::ProcSet;

use crate::block::{block_interval, block_owner_range};

/// Reorders the members of `dst` so that processors shared with `src` keep
/// as much of their data as possible ("our redistribution algorithm tries to
/// maximize the amount of self communications").
///
/// Shared processors are considered in source-rank order and greedily
/// assigned the still-free destination rank whose block interval overlaps
/// their sending interval the most; the remaining processors fill the free
/// ranks in their original relative order. When the two sets have identical
/// members and sizes this produces exactly the source order, making the
/// redistribution completely free.
///
/// The greedy choice for source rank `i` only ever lands on a destination
/// rank whose block intersects `i`'s sending interval — a contiguous run of
/// ranks ([`block_owner_range`]), `O(1 + q/p)` long. The scan below visits
/// only that run (±1 rank of slack for boundary rounding) plus one cursor
/// over the lowest free rank, replacing the former `O(p·q)` all-ranks scan
/// with `O(p + q)` interval work on top of an `O((p+q)·log q)` sorted rank
/// lookup, while reproducing the original greedy's choices **exactly** —
/// pinned by a parity proptest against the reference implementation kept in
/// the test module.
///
/// Returns the reordered destination set (same members as `dst`).
pub fn align_for_self_comm(src: &ProcSet, dst: &ProcSet) -> ProcSet {
    let q = dst.len();
    let p = src.len();
    if q == 0 || src.is_empty() {
        return dst.clone();
    }
    // Fast paths returning exactly what the greedy below would produce:
    // a singleton has only one order, and for identical member sets of
    // equal size the greedy assigns every shared processor its own source
    // rank (full overlap beats the zero overlap everywhere else), i.e. the
    // source order itself.
    if q == 1 {
        return dst.clone();
    }
    if p == q && src.same_members(dst) {
        return src.clone();
    }
    // Work on a normalized dataset of 1.0 bytes — only ratios matter.
    let m = 1.0;
    let mut assigned: Vec<Option<u32>> = vec![None; q as usize];
    let mut placed: Vec<bool> = vec![false; q as usize]; // per dst member (by dst rank)

    // Sorted (member, rank) pairs make the per-sender rank lookup
    // O(log q) instead of the former O(q) linear `rank_of` scan; the
    // tiered membership bitmask screens out non-shared senders in O(1)
    // first, at every platform size.
    let mut dst_ranks: Vec<(u32, u32)> = dst.iter().zip(0u32..).collect();
    dst_ranks.sort_unstable();

    // Lowest unassigned destination rank; only moves forward. It seeds the
    // running best exactly like the reference greedy's full scan did (the
    // first free rank becomes the initial candidate, and zero-overlap ranks
    // can never displace it), which matters for its epsilon tie rule.
    let mut first_free: u32 = 0;

    // Shared processors in source-rank order.
    for (i, proc) in src.iter().enumerate() {
        if !dst.contains(proc) {
            continue;
        }
        let Ok(pos) = dst_ranks.binary_search_by_key(&proc, |&(member, _)| member) else {
            continue;
        };
        let orig_rank = dst_ranks[pos].1 as usize;
        let (slo, shi) = block_interval(m, p, i as u32);
        while first_free < q && assigned[first_free as usize].is_some() {
            first_free += 1;
        }
        if first_free >= q {
            break; // Every destination rank is taken; nothing left to place.
        }
        let overlap_at = |j: u32| {
            let (dlo, dhi) = block_interval(m, q, j);
            (shi.min(dhi) - slo.max(dlo)).max(0.0)
        };
        // Seed with the lowest free rank, then let only the ranks whose
        // blocks can intersect the sending interval compete (±1 rank of
        // slack covers division-rounding at block boundaries; every rank
        // outside has exactly zero overlap and loses to the seed).
        let mut best = (overlap_at(first_free), first_free);
        let (range_lo, range_hi) =
            block_owner_range(m, q, slo, shi).expect("sender intervals are non-empty");
        let range_lo = range_lo.saturating_sub(1).max(first_free);
        let range_hi = (range_hi + 1).min(q - 1);
        for j in range_lo..=range_hi {
            if j == first_free || assigned[j as usize].is_some() {
                continue;
            }
            let overlap = overlap_at(j);
            if overlap > best.0 + 1e-15 {
                best = (overlap, j);
            }
        }
        let (overlap, j) = best;
        if overlap > 0.0 {
            assigned[j as usize] = Some(proc);
            placed[orig_rank] = true;
        }
    }

    // Fill the remaining ranks with the unplaced members, original order.
    let mut rest = dst
        .iter()
        .enumerate()
        .filter(|(r, _)| !placed[*r])
        .map(|(_, p)| p);
    let members: Vec<u32> = assigned
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| rest.next().expect("rank count matches")))
        .collect();
    let candidate = ProcSet::new(members);

    // The greedy placement is a heuristic; guarantee it never does worse
    // than the order the caller already had.
    let self_bytes = |d: &ProcSet| crate::matrix::redistribute(m, src, d).self_bytes;
    if self_bytes(&candidate) >= self_bytes(dst) {
        candidate
    } else {
        dst.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::redistribute;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// The pre-optimization greedy, kept verbatim as the parity reference:
    /// for every shared processor it scanned **all** `q` destination ranks
    /// (`O(p·q)` total). The fast path must reproduce its output exactly.
    fn align_reference(src: &ProcSet, dst: &ProcSet) -> ProcSet {
        let q = dst.len();
        if q == 0 || src.is_empty() {
            return dst.clone();
        }
        if q == 1 {
            return dst.clone();
        }
        if src.len() == q && src.same_members(dst) {
            return src.clone();
        }
        let m = 1.0;
        let mut assigned: Vec<Option<u32>> = vec![None; q as usize];
        let mut placed: Vec<bool> = vec![false; q as usize];

        for (i, proc) in src.iter().enumerate() {
            let Some(orig_rank) = dst.rank_of(proc) else {
                continue;
            };
            let (slo, shi) = block_interval(m, src.len(), i as u32);
            let mut best: Option<(f64, u32)> = None;
            for j in 0..q {
                if assigned[j as usize].is_some() {
                    continue;
                }
                let (dlo, dhi) = block_interval(m, q, j);
                let overlap = (shi.min(dhi) - slo.max(dlo)).max(0.0);
                let better = match best {
                    None => true,
                    Some((b, _)) => overlap > b + 1e-15,
                };
                if better {
                    best = Some((overlap, j));
                }
            }
            if let Some((overlap, j)) = best {
                if overlap > 0.0 {
                    assigned[j as usize] = Some(proc);
                    placed[orig_rank] = true;
                }
            }
        }

        let mut rest = dst
            .iter()
            .enumerate()
            .filter(|(r, _)| !placed[*r])
            .map(|(_, p)| p);
        let members: Vec<u32> = assigned
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| rest.next().expect("rank count matches")))
            .collect();
        let candidate = ProcSet::new(members);
        let self_bytes = |d: &ProcSet| redistribute(m, src, d).self_bytes;
        if self_bytes(&candidate) >= self_bytes(dst) {
            candidate
        } else {
            dst.clone()
        }
    }

    #[test]
    fn identical_members_align_to_identity() {
        let src = ProcSet::new(vec![4, 2, 9]);
        let dst = ProcSet::new(vec![9, 4, 2]);
        let aligned = align_for_self_comm(&src, &dst);
        assert_eq!(aligned.as_slice(), src.as_slice());
        assert!(redistribute(1e6, &src, &aligned).is_free());
    }

    #[test]
    fn disjoint_sets_are_untouched() {
        let src = ProcSet::from_range(0, 4);
        let dst = ProcSet::from_range(10, 5);
        let aligned = align_for_self_comm(&src, &dst);
        assert_eq!(aligned.as_slice(), dst.as_slice());
    }

    #[test]
    fn growing_allocation_keeps_shared_prefix() {
        // src = {5, 6} (2 procs), dst members {6, 5, 7} (3 procs).
        // Proc 5 sends [0, .5), proc 6 sends [.5, 1). Receiver blocks are
        // thirds. Best: 5 → rank 0 ([0,1/3)), 6 → rank 2 ([2/3,1)).
        let src = ProcSet::new(vec![5, 6]);
        let dst = ProcSet::new(vec![6, 5, 7]);
        let aligned = align_for_self_comm(&src, &dst);
        assert_eq!(aligned.as_slice(), &[5, 7, 6]);
        let r = redistribute(9.0, &src, &aligned);
        // Self: proc 5 keeps [0,3) of its [0,4.5) → 3; proc 6 keeps [6,9)
        // of its [4.5,9) → 3.
        assert!((r.self_bytes - 6.0).abs() < 1e-9, "self = {}", r.self_bytes);
    }

    #[test]
    fn alignment_never_loses_members() {
        let src = ProcSet::new(vec![1, 3, 5, 7]);
        let dst = ProcSet::new(vec![2, 3, 5, 8, 9]);
        let aligned = align_for_self_comm(&src, &dst);
        assert!(aligned.same_members(&dst));
    }

    #[test]
    fn matches_reference_on_large_sets_beyond_the_mask() {
        // Members ≥ 64 disable the bitmask; the sorted lookup must carry
        // the fast path alone.
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut pool: Vec<u32> = (0..200).collect();
            pool.shuffle(&mut rng);
            let p = rng.random_range(1..96);
            let src = ProcSet::new(pool[..p].to_vec());
            pool.shuffle(&mut rng);
            let q = rng.random_range(1..96);
            let dst = ProcSet::new(pool[..q].to_vec());
            let fast = align_for_self_comm(&src, &dst);
            let slow = align_reference(&src, &dst);
            assert_eq!(fast.as_slice(), slow.as_slice(), "p={p} q={q}");
        }
    }

    #[test]
    fn matches_reference_across_procset_tier_boundaries() {
        // Universes of 64/65/256/257 processors put the largest member id
        // at 63/64/255/256 — exactly straddling the ProcSet mask tiers
        // (single word `< 64`, four-word array `< 256`, spilled beyond).
        // The fast path must match the reference greedy in every tier, so
        // pin the top id into both sets to guarantee the tier is reached.
        use rand::Rng;
        for &universe in &[64u32, 65, 256, 257] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(u64::from(universe));
            for round in 0..10 {
                let top = universe - 1;
                let mut pool: Vec<u32> = (0..universe).collect();
                pool.shuffle(&mut rng);
                let p = rng.random_range(2..=64u32);
                let mut src: Vec<u32> = pool[..p as usize].to_vec();
                if !src.contains(&top) {
                    src[0] = top;
                }
                let src = ProcSet::new(src);
                pool.shuffle(&mut rng);
                let q = rng.random_range(2..=64u32);
                let mut dst: Vec<u32> = pool[..q as usize].to_vec();
                if !dst.contains(&top) {
                    dst[q as usize - 1] = top;
                }
                let dst = ProcSet::new(dst);
                let fast = align_for_self_comm(&src, &dst);
                let slow = align_reference(&src, &dst);
                assert_eq!(
                    fast.as_slice(),
                    slow.as_slice(),
                    "universe={universe} round={round} p={p} q={q}"
                );
            }
        }
    }

    proptest! {
        /// The interval-restricted scan reproduces the full-scan greedy
        /// bit for bit — same members, same order, every time.
        #[test]
        fn fast_path_matches_reference_greedy(
            p in 1u32..28,
            q in 2u32..28,
            overlap_bias in 0u32..3,
            seed in 0u64..800,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // overlap_bias narrows the universe so src/dst share many,
            // some, or almost no members.
            let universe = 8 + overlap_bias * 20;
            let mut all: Vec<u32> = (0..universe.max(p.max(q))).collect();
            all.shuffle(&mut rng);
            let src = ProcSet::new(all[..p as usize].to_vec());
            let mut pool = all.clone();
            pool.shuffle(&mut rng);
            let dst = ProcSet::new(pool[..q as usize].to_vec());

            let fast = align_for_self_comm(&src, &dst);
            let slow = align_reference(&src, &dst);
            prop_assert_eq!(fast.as_slice(), slow.as_slice());
        }

        /// Aligned destination never does worse (in self bytes) than the
        /// original order, and keeps exactly the same members.
        #[test]
        fn alignment_is_monotone_improvement(
            p in 1u32..24,
            q in 1u32..24,
            seed in 0u64..500,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut all: Vec<u32> = (0..32).collect();
            all.shuffle(&mut rng);
            let src = ProcSet::new(all[..p as usize].to_vec());
            let mut pool: Vec<u32> = (0..32).collect();
            pool.shuffle(&mut rng);
            let dst = ProcSet::new(pool[..q as usize].to_vec());

            let aligned = align_for_self_comm(&src, &dst);
            prop_assert!(aligned.same_members(&dst));

            let before = redistribute(1e6, &src, &dst).self_bytes;
            let after = redistribute(1e6, &src, &aligned).self_bytes;
            prop_assert!(after >= before - 1.0,
                "alignment regressed: {before} -> {after}");
        }

        /// Same members (any order, any size) ⇒ alignment achieves a free
        /// redistribution when sizes match.
        #[test]
        fn same_members_zero_network(n in 1u32..24, seed in 0u64..200) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut all: Vec<u32> = (0..32).collect();
            all.shuffle(&mut rng);
            let src = ProcSet::new(all[..n as usize].to_vec());
            let mut shuffled = src.as_slice().to_vec();
            shuffled.shuffle(&mut rng);
            let dst = ProcSet::new(shuffled);
            let aligned = align_for_self_comm(&src, &dst);
            prop_assert!(redistribute(1e6, &src, &aligned).is_free());
        }
    }
}
