//! Block-interval arithmetic for 1-D block distributions.

/// The half-open byte interval `[r·m/p, (r+1)·m/p)` owned by rank `r` when
/// `m` bytes are block-distributed over `p` processors.
///
/// # Panics
///
/// Panics if `p == 0` or `r >= p`.
#[inline]
pub fn block_interval(m: f64, p: u32, r: u32) -> (f64, f64) {
    assert!(p > 0, "cannot distribute over zero processors");
    assert!(r < p, "rank {r} out of range for {p} processors");
    let width = m / f64::from(p);
    (f64::from(r) * width, f64::from(r + 1) * width)
}

/// The inclusive range of ranks (out of `q`) whose blocks intersect the byte
/// interval `[lo, hi)` of an `m`-byte dataset distributed over `q`
/// processors. Returns `None` for empty intervals.
#[inline]
pub fn block_owner_range(m: f64, q: u32, lo: f64, hi: f64) -> Option<(u32, u32)> {
    assert!(q > 0, "cannot distribute over zero processors");
    if hi <= lo || m <= 0.0 {
        return None;
    }
    let width = m / f64::from(q);
    let first = (lo / width).floor() as i64;
    // hi is exclusive: the owner of byte hi−ε is rank floor((hi−ε)/width).
    let mut last = (hi / width).ceil() as i64 - 1;
    let first = first.clamp(0, i64::from(q) - 1) as u32;
    if last < i64::from(first) {
        last = i64::from(first);
    }
    let last = last.clamp(0, i64::from(q) - 1) as u32;
    Some((first, last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intervals_partition_the_data() {
        let (m, p) = (10.0, 4);
        let mut end = 0.0;
        for r in 0..p {
            let (lo, hi) = block_interval(m, p, r);
            assert!((lo - end).abs() < 1e-12, "blocks must tile contiguously");
            assert!(hi > lo);
            end = hi;
        }
        assert!((end - m).abs() < 1e-12);
    }

    #[test]
    fn paper_example_block_widths() {
        // 10 units over 4 processors → 2.5 units each; over 5 → 2 units.
        assert_eq!(block_interval(10.0, 4, 0), (0.0, 2.5));
        assert_eq!(block_interval(10.0, 4, 3), (7.5, 10.0));
        assert_eq!(block_interval(10.0, 5, 2), (4.0, 6.0));
    }

    #[test]
    fn owner_range_basic() {
        // Sender rank 1 of 4 owns [2.5, 5.0); receivers of 5 own 2.0 each:
        // ranks 1 ([2,4)) and 2 ([4,6)) intersect.
        assert_eq!(block_owner_range(10.0, 5, 2.5, 5.0), Some((1, 2)));
        // Degenerate empty interval.
        assert_eq!(block_owner_range(10.0, 5, 3.0, 3.0), None);
    }

    #[test]
    fn exact_boundary_is_exclusive() {
        // [0, 2) over 5 ranks of width 2: only rank 0.
        assert_eq!(block_owner_range(10.0, 5, 0.0, 2.0), Some((0, 0)));
    }

    proptest! {
        /// Every sender interval maps to a valid, non-empty receiver range
        /// whose blocks jointly cover it.
        #[test]
        fn owner_range_covers_interval(
            m in 1.0f64..1e9,
            p in 1u32..128,
            q in 1u32..128,
            r_seed in 0u32..128,
        ) {
            let r = r_seed % p;
            let (lo, hi) = block_interval(m, p, r);
            let (first, last) = block_owner_range(m, q, lo, hi).expect("non-empty");
            prop_assert!(first <= last && last < q);
            let (flo, _) = block_interval(m, q, first);
            let (_, lhi) = block_interval(m, q, last);
            // The union [flo, lhi) must cover [lo, hi).
            prop_assert!(flo <= lo + 1e-9 * m);
            prop_assert!(lhi >= hi - 1e-9 * m);
            // And not be wastefully wide: first/last blocks really intersect.
            let (_, fhi) = block_interval(m, q, first);
            let (llo, _) = block_interval(m, q, last);
            prop_assert!(fhi > lo - 1e-9 * m);
            prop_assert!(llo < hi + 1e-9 * m);
        }
    }
}
