//! Contention-free redistribution time estimation.

use rats_platform::Platform;

use crate::matrix::Redistribution;

/// Estimates the duration of a redistribution on `platform`, assuming all
/// transfers proceed in parallel with **no cross-redistribution contention**
/// (the estimate the scheduling heuristics work with; the evaluation
/// simulator models contention).
///
/// The estimate is the bounded-multi-port completion bound:
///
/// * every network link ships the sum of the bytes of the transfers routed
///   through it at its full bandwidth — `max_l bytes(l)/β(l)` captures both
///   port saturation (a node sending to or receiving from many peers) and
///   cabinet-uplink saturation;
/// * no single transfer can beat its TCP-window rate cap
///   (`bytes/min(β', β)`);
/// * one path latency is paid up front (flows start concurrently).
///
/// Self communications cost nothing; an empty redistribution returns `0`.
pub fn estimate_time(r: &Redistribution, platform: &Platform) -> f64 {
    if r.transfers.is_empty() {
        return 0.0;
    }
    let mut per_link = vec![0.0f64; platform.num_links()];
    let mut max_latency = 0.0f64;
    let mut max_flow_time = 0.0f64;
    for t in &r.transfers {
        let route = platform.route(t.src, t.dst);
        max_latency = max_latency.max(route.latency_s);
        let mut min_bw = f64::INFINITY;
        for &l in route.links() {
            per_link[l.index()] += t.bytes;
            min_bw = min_bw.min(platform.link(l).bandwidth_bps);
        }
        let cap = min_bw.min(platform.flow_rate_cap(t.src, t.dst));
        max_flow_time = max_flow_time.max(t.bytes / cap);
    }
    let link_time = per_link
        .iter()
        .enumerate()
        .map(|(l, &bytes)| {
            bytes
                / platform
                    .link(rats_platform::LinkId::from_index(l))
                    .bandwidth_bps
        })
        .fold(0.0, f64::max);
    max_latency + link_time.max(max_flow_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::redistribute;
    use rats_platform::{ClusterSpec, ProcSet};

    fn grillon() -> Platform {
        Platform::from_spec(&ClusterSpec::grillon())
    }

    #[test]
    fn empty_redistribution_is_instant() {
        let p = grillon();
        let s = ProcSet::from_range(0, 4);
        let r = redistribute(1e6, &s, &s.clone());
        assert_eq!(estimate_time(&r, &p), 0.0);
    }

    #[test]
    fn single_transfer_matches_closed_form() {
        let p = grillon();
        let src = ProcSet::new(vec![0]);
        let dst = ProcSet::new(vec![1]);
        let bytes = 125e6; // exactly one second at link rate
        let r = redistribute(bytes, &src, &dst);
        let t = estimate_time(&r, &p);
        // one link-saturated second + 200 µs path latency
        assert!((t - (1.0 + 2e-4)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn fan_in_is_bottlenecked_by_receiver_port() {
        let p = grillon();
        // 4 senders, 1 receiver: receiver's private link carries everything.
        let src = ProcSet::from_range(0, 4);
        let dst = ProcSet::new(vec![10]);
        let bytes = 125e6;
        let r = redistribute(bytes, &src, &dst);
        let t = estimate_time(&r, &p);
        assert!(t >= 1.0, "receiver port must serialize: t = {t}");
        assert!(t < 1.1, "but senders are parallel: t = {t}");
    }

    #[test]
    fn scatter_is_bottlenecked_by_sender_port() {
        let p = grillon();
        let src = ProcSet::new(vec![0]);
        let dst = ProcSet::from_range(1, 8);
        let bytes = 125e6;
        let r = redistribute(bytes, &src, &dst);
        let t = estimate_time(&r, &p);
        assert!((1.0..1.1).contains(&t), "t = {t}");
    }

    #[test]
    fn balanced_shift_uses_parallelism() {
        let p = grillon();
        // {0..4} → {4..8}: each port moves ~1/4 of the data.
        let src = ProcSet::from_range(0, 4);
        let dst = ProcSet::from_range(4, 4);
        let bytes = 125e6;
        let r = redistribute(bytes, &src, &dst);
        let t = estimate_time(&r, &p);
        assert!(t < 0.5, "parallel ports should beat serial time: t = {t}");
    }

    #[test]
    fn window_cap_binds_on_hierarchical_paths() {
        let p = Platform::from_spec(&ClusterSpec::grelon());
        let src = ProcSet::new(vec![0]); // cabinet 0
        let dst = ProcSet::new(vec![24]); // cabinet 1
        let bytes = 81.92e6; // one second at the capped rate
        let r = redistribute(bytes, &src, &dst);
        let t = estimate_time(&r, &p);
        assert!(
            (t - (1.0 + 4e-4)).abs() < 1e-6,
            "inter-cabinet flow must run at Wmax/RTT: t = {t}"
        );
    }

    #[test]
    fn uplink_contention_shows_in_estimate() {
        let p = Platform::from_spec(&ClusterSpec::grelon());
        // 8 senders in cabinet 0 → 8 receivers in cabinet 1: all transfers
        // share the two uplinks.
        let src = ProcSet::from_range(0, 8);
        let dst = ProcSet::from_range(24, 8);
        let bytes = 125e6;
        let r = redistribute(bytes, &src, &dst);
        let t = estimate_time(&r, &p);
        // The uplink carries all 125 MB → ≥ 1 s even though ports would
        // finish in 1/8 s.
        assert!(t >= 1.0, "uplink must bottleneck: t = {t}");
    }
}
