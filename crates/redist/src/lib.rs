//! 1-D block data redistribution (CLUSTER 2008 paper, section II-A).
//!
//! Data is "always distributed following a one dimensional block
//! distribution": a task working on `m` bytes mapped onto `p` processors
//! gives rank `r` the interval `[r·m/p, (r+1)·m/p)`. When a successor task
//! runs on a different processor set (or a different number of processors),
//! the data must be *redistributed*; the communication matrix is obtained by
//! intersecting the sender and receiver block intervals — the paper's
//! Table I works through the `m = 10`, `p = 4 → q = 5` example reproduced in
//! this crate's tests.
//!
//! When sender and receiver sets share processors, "our redistribution
//! algorithm tries to maximize the amount of self communications":
//! [`align_for_self_comm`] reorders the receiver set so that shared
//! processors land on ranks whose intervals overlap their sending interval
//! as much as possible. Bytes that stay on the same processor cost nothing.
//!
//! Two estimation paths expose the **contention-free** redistribution time
//! used inside the scheduling heuristics (the evaluation simulator in
//! `rats-sim` models contention instead — the gap between the two is a
//! phenomenon the paper explicitly discusses):
//!
//! * the **matrix path** — [`redistribute`] materializes the sparse
//!   transfer matrix and [`estimate_time`] reduces it to a duration. This
//!   is the API for consumers that need the transfers themselves (the
//!   contention simulator, the dense Table I rendering, tests);
//! * the **streaming path** — [`estimate_cost`] (and the reusable
//!   [`RedistEstimator`] / memoizing [`RedistCache`]) computes the *same
//!   scalar, bit for bit*, in one pass over the block intervals without
//!   allocating the transfer list. This is what the incremental mapping
//!   engine calls per (task, candidate-set) evaluation; a property test
//!   pins the exact equality of the two paths.

mod align;
mod block;
mod estimate;
mod matrix;
mod streaming;

pub use align::align_for_self_comm;
pub use block::{block_interval, block_owner_range};
pub use estimate::estimate_time;
pub use matrix::{redistribute, Redistribution, Transfer};
pub use streaming::{estimate_cost, RedistCache, RedistEstimator};
