//! Sparse communication matrices for block → block redistributions.

use rats_platform::ProcSet;

use crate::block::{block_interval, block_owner_range};

/// One point-to-point transfer of a redistribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Sending processor.
    pub src: u32,
    /// Receiving processor.
    pub dst: u32,
    /// Payload in bytes.
    pub bytes: f64,
}

/// The communication matrix of one redistribution, stored sparsely.
///
/// A 1-D block → 1-D block redistribution is *banded*: sender rank `i`'s
/// interval intersects a contiguous run of receiver ranks, so the matrix has
/// at most `p + q − 1` non-zero entries — never `p·q`.
#[derive(Debug, Clone, Default)]
pub struct Redistribution {
    /// Network transfers (sender ≠ receiver), in sender-rank order.
    pub transfers: Vec<Transfer>,
    /// Bytes that stay on their processor (self communication): free.
    pub self_bytes: f64,
}

impl Redistribution {
    /// Total bytes crossing the network.
    pub fn network_bytes(&self) -> f64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Total bytes of the redistribution (network + local).
    pub fn total_bytes(&self) -> f64 {
        self.network_bytes() + self.self_bytes
    }

    /// `true` if no data crosses the network.
    pub fn is_free(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Bytes sent by each processor, as `(proc, bytes)` pairs.
    pub fn bytes_sent_per_proc(&self) -> Vec<(u32, f64)> {
        aggregate(self.transfers.iter().map(|t| (t.src, t.bytes)))
    }

    /// Bytes received by each processor, as `(proc, bytes)` pairs.
    pub fn bytes_received_per_proc(&self) -> Vec<(u32, f64)> {
        aggregate(self.transfers.iter().map(|t| (t.dst, t.bytes)))
    }

    /// Renders the dense `p × q` matrix (including diagonal self entries)
    /// for the given sender/receiver sets — the paper's Table I layout.
    pub fn dense_matrix(&self, src: &ProcSet, dst: &ProcSet, total_bytes: f64) -> Vec<Vec<f64>> {
        let (p, q) = (src.len() as usize, dst.len() as usize);
        let mut m = vec![vec![0.0; q]; p];
        for t in &self.transfers {
            let i = src.rank_of(t.src).expect("transfer src in source set");
            let j = dst.rank_of(t.dst).expect("transfer dst in destination set");
            m[i][j] += t.bytes;
        }
        // Self bytes sit on the overlap of the diagonal blocks; recompute
        // them exactly so the dense view matches the sparse one.
        for (i, sp) in src.iter().enumerate() {
            if let Some(j) = dst.rank_of(sp) {
                let (slo, shi) = block_interval(total_bytes, src.len(), i as u32);
                let (dlo, dhi) = block_interval(total_bytes, dst.len(), j as u32);
                let overlap = (shi.min(dhi) - slo.max(dlo)).max(0.0);
                m[i][j] += overlap;
            }
        }
        m
    }
}

fn aggregate(items: impl Iterator<Item = (u32, f64)>) -> Vec<(u32, f64)> {
    let mut v: Vec<(u32, f64)> = Vec::new();
    for (p, b) in items {
        match v.iter_mut().find(|(q, _)| *q == p) {
            Some((_, acc)) => *acc += b,
            None => v.push((p, b)),
        }
    }
    v
}

/// Computes the redistribution of `total_bytes` bytes from the (ordered)
/// processor set `src` to the (ordered) set `dst`.
///
/// Sender rank `i` owns `[i·m/p, (i+1)·m/p)`; receiver rank `j` needs
/// `[j·m/q, (j+1)·m/q)`; each non-empty intersection becomes a transfer.
/// Transfers whose sender and receiver are the *same physical processor*
/// are counted as `self_bytes` instead (zero cost).
///
/// # Panics
///
/// Panics if either set is empty or `total_bytes` is negative/non-finite.
pub fn redistribute(total_bytes: f64, src: &ProcSet, dst: &ProcSet) -> Redistribution {
    assert!(!src.is_empty() && !dst.is_empty(), "empty processor set");
    assert!(
        total_bytes.is_finite() && total_bytes >= 0.0,
        "data size must be finite and non-negative, got {total_bytes}"
    );
    let mut out = Redistribution::default();
    if total_bytes == 0.0 {
        return out;
    }
    let (p, q) = (src.len(), dst.len());
    // Ignore slivers below one millionth of a block (fp boundary noise).
    let eps = total_bytes / f64::from(p.max(q)) * 1e-6;
    for i in 0..p {
        let (slo, shi) = block_interval(total_bytes, p, i);
        let Some((j0, j1)) = block_owner_range(total_bytes, q, slo, shi) else {
            continue;
        };
        for j in j0..=j1 {
            let (dlo, dhi) = block_interval(total_bytes, q, j);
            let overlap = shi.min(dhi) - slo.max(dlo);
            if overlap <= eps {
                continue;
            }
            let (sp, dp) = (src.proc_at(i as usize), dst.proc_at(j as usize));
            if sp == dp {
                out.self_bytes += overlap;
            } else {
                out.transfers.push(Transfer {
                    src: sp,
                    dst: dp,
                    bytes: overlap,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// The paper's Table I: 10 units, 4 disjoint senders → 5 receivers.
    #[test]
    fn paper_table1() {
        let src = ProcSet::from_range(0, 4);
        let dst = ProcSet::from_range(4, 5);
        let r = redistribute(10.0, &src, &dst);
        let m = r.dense_matrix(&src, &dst, 10.0);
        let expected = [
            [2.0, 0.5, 0.0, 0.0, 0.0],
            [0.0, 1.5, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 1.5, 0.0],
            [0.0, 0.0, 0.0, 0.5, 2.0],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert!(
                    (m[i][j] - want).abs() < 1e-9,
                    "matrix[{i}][{j}] = {}, want {want}",
                    m[i][j]
                );
            }
        }
        assert_eq!(r.self_bytes, 0.0);
        assert!((r.network_bytes() - 10.0).abs() < 1e-9);
        // Banded: p + q − 1 = 8 non-zeros.
        assert_eq!(r.transfers.len(), 8);
    }

    #[test]
    fn identical_sets_are_free() {
        let s = ProcSet::new(vec![3, 7, 11]);
        let r = redistribute(1e6, &s, &s.clone());
        assert!(r.is_free());
        assert!((r.self_bytes - 1e6).abs() < 1e-6);
    }

    #[test]
    fn same_members_different_order_still_move_data() {
        let a = ProcSet::new(vec![0, 1]);
        let b = ProcSet::new(vec![1, 0]);
        let r = redistribute(10.0, &a, &b);
        // Both halves swap owners: all 10 bytes cross the network.
        assert!((r.network_bytes() - 10.0).abs() < 1e-9);
        assert_eq!(r.self_bytes, 0.0);
    }

    #[test]
    fn partial_overlap_keeps_shared_bytes_local() {
        // src {0,1} → dst {0,1,2}: rank 0 keeps [0, 10/3) of its [0,5).
        let src = ProcSet::new(vec![0, 1]);
        let dst = ProcSet::new(vec![0, 1, 2]);
        let r = redistribute(10.0, &src, &dst);
        // Proc 0: keeps 10/3. Proc 1: sender interval [5,10), receiver rank 1
        // interval [10/3, 20/3) → overlap [5, 20/3) = 5/3 stays local.
        assert!((r.self_bytes - 5.0).abs() < 1e-9, "self = {}", r.self_bytes);
        assert!((r.network_bytes() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_no_transfers() {
        let s = ProcSet::from_range(0, 3);
        let d = ProcSet::from_range(5, 4);
        let r = redistribute(0.0, &s, &d);
        assert!(r.is_free());
        assert_eq!(r.total_bytes(), 0.0);
    }

    #[test]
    fn per_proc_aggregates() {
        let src = ProcSet::from_range(0, 4);
        let dst = ProcSet::from_range(4, 5);
        let r = redistribute(10.0, &src, &dst);
        let sent = r.bytes_sent_per_proc();
        assert_eq!(sent.len(), 4);
        for &(_, b) in &sent {
            assert!((b - 2.5).abs() < 1e-9, "each sender ships its block");
        }
        let recv = r.bytes_received_per_proc();
        assert_eq!(recv.len(), 5);
        for &(_, b) in &recv {
            assert!((b - 2.0).abs() < 1e-9, "each receiver gets its block");
        }
    }

    #[test]
    #[should_panic(expected = "empty processor set")]
    fn rejects_empty_sets() {
        redistribute(1.0, &ProcSet::empty(), &ProcSet::from_range(0, 1));
    }

    proptest! {
        /// Conservation: network + self bytes always equal the dataset size,
        /// for arbitrary (even overlapping, shuffled) processor sets.
        #[test]
        fn conservation(
            total in 1.0f64..1e9,
            p in 1u32..64,
            q in 1u32..64,
            overlap_seed in 0u64..1000,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(overlap_seed);
            let mut all: Vec<u32> = (0..128).collect();
            all.shuffle(&mut rng);
            let src = ProcSet::new(all[..p as usize].to_vec());
            let mut rest = all.clone();
            rest.shuffle(&mut rng);
            let dst = ProcSet::new(rest[..q as usize].to_vec());
            let r = redistribute(total, &src, &dst);
            prop_assert!((r.total_bytes() - total).abs() < total * 1e-6,
                "total {} != {}", r.total_bytes(), total);
        }

        /// Bandedness: at most p + q − 1 network transfers.
        #[test]
        fn banded(total in 1.0f64..1e9, p in 1u32..64, q in 1u32..64) {
            let src = ProcSet::from_range(0, p);
            let dst = ProcSet::from_range(p, q);
            let r = redistribute(total, &src, &dst);
            prop_assert!(r.transfers.len() <= (p + q - 1) as usize);
        }

        /// Every transfer is positive and between member processors.
        #[test]
        fn transfers_are_sane(total in 1.0f64..1e9, p in 1u32..32, q in 1u32..32) {
            let src = ProcSet::from_range(0, p);
            let dst = ProcSet::from_range(4, q); // may overlap src
            let r = redistribute(total, &src, &dst);
            for t in &r.transfers {
                prop_assert!(t.bytes > 0.0);
                prop_assert!(t.src != t.dst);
                prop_assert!(src.contains(t.src));
                prop_assert!(dst.contains(t.dst));
            }
        }
    }
}
