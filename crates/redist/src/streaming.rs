//! Streaming redistribution-time estimation — the scalar cost without the
//! transfer matrix.
//!
//! The mapping engine evaluates `estimate_time(&redistribute(…))` for every
//! (task, candidate-set) pair, but only ever consumes the resulting scalar:
//! materializing the `Vec<Transfer>` per evaluation is pure allocation
//! traffic. [`RedistEstimator::estimate_cost`] walks the sender/receiver
//! block intervals in the *same order* as [`redistribute`] and folds each
//! would-be transfer directly into the per-link byte accumulators and flow
//! caps that [`estimate_time`] would compute — producing a **bit-identical**
//! `f64` (same floating-point operations in the same order) with zero
//! allocation per call (the per-link scratch is reused across calls).
//!
//! [`RedistCache`] adds memoization on top: arrival times keyed per
//! (caller-chosen slot, payload, candidate set). The intended slot is one
//! already-*placed* producer task — its processor set and finish time are
//! then immutable, so a cached arrival never goes stale, and every
//! consumer edge of that producer shares the same entries.
//!
//! [`redistribute`]: crate::matrix::redistribute
//! [`estimate_time`]: crate::estimate::estimate_time

use rats_platform::{LinkId, Platform, ProcSet, SetMemo};

use crate::block::{block_interval, block_owner_range};

/// The fixed per-(sender, receiver) route facts of one platform, computed
/// lazily once per processor pair: accumulating a transfer then touches only
/// the cached link ids — no `Route` is rebuilt and no
/// [`Platform::flow_rate_cap`] re-derives the route a second time (which is
/// what `estimate_time` does per transfer).
#[derive(Debug, Clone, Copy)]
struct PairRoute {
    /// One-way path latency.
    latency_s: f64,
    /// Per-flow rate cap: `min(min link bandwidth, Wmax/RTT)` — exactly the
    /// `cap` `estimate_time` computes per transfer.
    cap: f64,
    /// Link indices crossed, in route order.
    links: [u32; 4],
    len: u8,
    init: bool,
}

const UNINIT_PAIR: PairRoute = PairRoute {
    latency_s: 0.0,
    cap: 0.0,
    links: [0; 4],
    len: 0,
    init: false,
};

/// Reusable scratch state for streaming redistribution-time estimates.
///
/// Construction sizes the per-link accumulators and the pair-route table
/// for **one** platform; an estimator must not be shared across platforms
/// (debug-asserted). Reusing it keeps every call allocation-free.
#[derive(Debug, Clone)]
pub struct RedistEstimator {
    /// Bytes accumulated per link this call; all-zero between calls.
    per_link: Vec<f64>,
    /// Links touched this call (indices into `per_link`).
    touched: Vec<u32>,
    /// Lazily filled route facts, indexed `src · P + dst`. The table itself
    /// is also allocated lazily, on the first exact estimate: its P² entries
    /// are the dominant setup cost at small DAG sizes (a few dozen tasks
    /// finish mapping before ever amortizing an eager table).
    pairs: Vec<PairRoute>,
    num_procs: usize,
    /// ≥ any path latency on the platform (slightly inflated).
    ub_latency: f64,
    /// ≥ `1 / cap` for any processor pair (slightly inflated).
    ub_inv_cap: f64,
}

impl RedistEstimator {
    /// An estimator with scratch sized for `platform`.
    pub fn new(platform: &Platform) -> Self {
        let p = platform.num_procs() as usize;
        let mut min_bw = f64::INFINITY;
        let mut max_link_latency = 0.0f64;
        for l in 0..platform.num_links() {
            let link = platform.link(LinkId::from_index(l));
            min_bw = min_bw.min(link.bandwidth_bps);
            max_link_latency = max_link_latency.max(link.latency_s);
        }
        // A route crosses at most 2 links on a flat interconnect and 4 on a
        // hierarchical one; inflate every bound by 1 + 1e-9 so
        // floating-point rounding in the exact path can never make a true
        // estimate exceed the bound.
        const SLACK: f64 = 1.0 + 1e-9;
        let max_route_links = if platform.is_hierarchical() { 4.0 } else { 2.0 };
        let ub_latency = max_route_links * max_link_latency * SLACK;
        let min_cap = if ub_latency > 0.0 {
            min_bw.min(platform.wmax_bytes() / (2.0 * ub_latency))
        } else {
            min_bw
        };
        Self {
            per_link: vec![0.0; platform.num_links()],
            touched: Vec::with_capacity(platform.num_links().min(64)),
            pairs: Vec::new(),
            num_procs: p,
            ub_latency,
            ub_inv_cap: (1.0 / min_cap) * SLACK,
        }
    }

    /// A sound upper bound on [`Self::estimate_cost`] for *any* source and
    /// destination sets on this estimator's platform: no redistribution of
    /// `total_bytes` bytes can take longer. Three flops — cheap enough to
    /// prune exact evaluations that cannot win a max (the streaming
    /// engine's data-ready pruning relies on this).
    #[inline]
    pub fn cost_upper_bound(&self, total_bytes: f64) -> f64 {
        self.ub_latency + total_bytes * self.ub_inv_cap
    }

    /// The `(latency, inverse capacity)` coefficients behind
    /// [`Self::cost_upper_bound`] — callers on hot paths can fold
    /// `lat + bytes * inv` inline without reaching through the estimator
    /// (the expression must mirror `cost_upper_bound` exactly; pinned by
    /// its doc contract).
    pub fn upper_bound_coeffs(&self) -> (f64, f64) {
        (self.ub_latency, self.ub_inv_cap)
    }

    /// The cached route facts of the ordered pair `(sp, dp)`.
    #[inline]
    fn pair(&mut self, platform: &Platform, sp: u32, dp: u32) -> PairRoute {
        if self.pairs.is_empty() {
            self.pairs = vec![UNINIT_PAIR; self.num_procs * self.num_procs];
        }
        let idx = sp as usize * self.num_procs + dp as usize;
        let cached = self.pairs[idx];
        if cached.init {
            return cached;
        }
        let route = platform.route(sp, dp);
        let mut links = [0u32; 4];
        let mut min_bw = f64::INFINITY;
        for (i, &l) in route.links().iter().enumerate() {
            links[i] = l.index() as u32;
            min_bw = min_bw.min(platform.link(l).bandwidth_bps);
        }
        let entry = PairRoute {
            latency_s: route.latency_s,
            cap: min_bw.min(platform.flow_rate_cap(sp, dp)),
            links,
            len: route.links().len() as u8,
            init: true,
        };
        self.pairs[idx] = entry;
        entry
    }

    /// The contention-free duration of redistributing `total_bytes` bytes
    /// from the ordered set `src` to the ordered set `dst` on `platform` —
    /// exactly `estimate_time(&redistribute(total_bytes, src, dst),
    /// platform)`, computed in one pass without building the transfer list.
    ///
    /// # Panics
    ///
    /// Panics if either set is empty or `total_bytes` is negative or
    /// non-finite (mirroring [`redistribute`](crate::matrix::redistribute)).
    pub fn estimate_cost(
        &mut self,
        total_bytes: f64,
        src: &ProcSet,
        dst: &ProcSet,
        platform: &Platform,
    ) -> f64 {
        assert!(!src.is_empty() && !dst.is_empty(), "empty processor set");
        assert!(
            total_bytes.is_finite() && total_bytes >= 0.0,
            "data size must be finite and non-negative, got {total_bytes}"
        );
        debug_assert!(
            self.num_procs == platform.num_procs() as usize
                && self.per_link.len() == platform.num_links(),
            "a RedistEstimator is bound to the platform it was built for"
        );
        if total_bytes == 0.0 {
            return 0.0;
        }
        let (p, q) = (src.len(), dst.len());
        // Same sliver threshold as `redistribute` (fp boundary noise).
        let eps = total_bytes / f64::from(p.max(q)) * 1e-6;
        let mut any_transfer = false;
        let mut max_latency = 0.0f64;
        let mut max_flow_time = 0.0f64;
        for i in 0..p {
            let (slo, shi) = block_interval(total_bytes, p, i);
            let Some((j0, j1)) = block_owner_range(total_bytes, q, slo, shi) else {
                continue;
            };
            for j in j0..=j1 {
                let (dlo, dhi) = block_interval(total_bytes, q, j);
                let overlap = shi.min(dhi) - slo.max(dlo);
                if overlap <= eps {
                    continue;
                }
                let (sp, dp) = (src.proc_at(i as usize), dst.proc_at(j as usize));
                if sp == dp {
                    // Self communication is free and crosses no link.
                    continue;
                }
                any_transfer = true;
                let pair = self.pair(platform, sp, dp);
                max_latency = max_latency.max(pair.latency_s);
                for &l in &pair.links[..pair.len as usize] {
                    let idx = l as usize;
                    if self.per_link[idx] == 0.0 {
                        self.touched.push(l);
                    }
                    self.per_link[idx] += overlap;
                }
                max_flow_time = max_flow_time.max(overlap / pair.cap);
            }
        }
        if !any_transfer {
            return 0.0;
        }
        let mut link_time = 0.0f64;
        for &idx in &self.touched {
            let bytes = self.per_link[idx as usize];
            let bw = platform
                .link(LinkId::from_index(idx as usize))
                .bandwidth_bps;
            link_time = link_time.max(bytes / bw);
        }
        // Restore the all-zero invariant for the next call.
        for &idx in &self.touched {
            self.per_link[idx as usize] = 0.0;
        }
        self.touched.clear();
        max_latency + link_time.max(max_flow_time)
    }
}

/// One-shot streaming estimate (allocates a fresh scratch; use
/// [`RedistEstimator`] or [`RedistCache`] on hot paths).
pub fn estimate_cost(total_bytes: f64, src: &ProcSet, dst: &ProcSet, platform: &Platform) -> f64 {
    RedistEstimator::new(platform).estimate_cost(total_bytes, src, dst, platform)
}

/// Memoized arrival times over a streaming estimator.
///
/// A *slot* identifies one immutable producer context — in the mapping
/// engine, one **placed producer task**: its ordered processor set (`src`)
/// and finish time (`src_finish`) can never change once placed. Under that
/// contract, the arrival time of `total_bytes` produced in that context on
/// a candidate set depends only on `(slot, total_bytes, candidate)`, which
/// is exactly the cache key. Keying per producer (rather than per edge)
/// lets every consumer of the same producer share entries — and since task
/// graphs commonly fan the same payload out to all children, sibling
/// evaluations of the same candidate hit instead of recomputing.
#[derive(Debug, Clone)]
pub struct RedistCache {
    estimator: RedistEstimator,
    /// Memoized `(payload bits, arrival)` pairs per (slot, candidate set) —
    /// see [`SetMemo`] for why an arena-backed linear table fits here.
    arrivals: SetMemo<(u64, f64)>,
    hits: u64,
    misses: u64,
}

impl RedistCache {
    /// A cache with `slots` producer contexts on `platform`.
    pub fn new(platform: &Platform, slots: usize) -> Self {
        Self {
            estimator: RedistEstimator::new(platform),
            arrivals: SetMemo::new(slots),
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` of [`Self::arrival`] lookups so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The time at which `total_bytes` sent by a producer that finishes at
    /// `src_finish` on `src` become available on `dst`:
    /// `src_finish + estimate_cost(total_bytes, src, dst, platform)`,
    /// memoized per `(slot, total_bytes, dst)`.
    ///
    /// The caller guarantees that `src` and `src_finish` are the same on
    /// every call with the same `slot` (see the type docs).
    pub fn arrival(
        &mut self,
        slot: usize,
        total_bytes: f64,
        src: &ProcSet,
        src_finish: f64,
        dst: &ProcSet,
        platform: &Platform,
    ) -> f64 {
        let bytes_bits = total_bytes.to_bits();
        if let Some((_, a)) = self.arrivals.get(slot, dst, |(b, _)| *b == bytes_bits) {
            self.hits += 1;
            return a;
        }
        self.misses += 1;
        let arrival = src_finish
            + self
                .estimator
                .estimate_cost(total_bytes, src, dst, platform);
        self.arrivals.insert(slot, dst, (bytes_bits, arrival));
        arrival
    }

    /// The underlying streaming estimator (for uncached estimates with the
    /// shared scratch).
    pub fn estimator(&mut self) -> &mut RedistEstimator {
        &mut self.estimator
    }

    /// See [`RedistEstimator::cost_upper_bound`].
    #[inline]
    pub fn cost_upper_bound(&self, total_bytes: f64) -> f64 {
        self.estimator.cost_upper_bound(total_bytes)
    }

    /// See [`RedistEstimator::upper_bound_coeffs`].
    pub fn upper_bound_coeffs(&self) -> (f64, f64) {
        self.estimator.upper_bound_coeffs()
    }

    /// Number of memoized arrivals across all slots.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_time;
    use crate::matrix::redistribute;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rats_platform::ClusterSpec;

    fn grillon() -> Platform {
        Platform::from_spec(&ClusterSpec::grillon())
    }

    #[test]
    fn matches_matrix_estimate_on_paper_example() {
        let p = grillon();
        let src = ProcSet::from_range(0, 4);
        let dst = ProcSet::from_range(4, 5);
        let via_matrix = estimate_time(&redistribute(10.0, &src, &dst), &p);
        let streamed = estimate_cost(10.0, &src, &dst, &p);
        assert_eq!(streamed, via_matrix, "must be bit-identical");
        assert!(streamed > 0.0);
    }

    #[test]
    fn identical_sets_are_instant_and_scratch_stays_clean() {
        let p = grillon();
        let s = ProcSet::new(vec![3, 7, 11]);
        let mut est = RedistEstimator::new(&p);
        assert_eq!(est.estimate_cost(1e6, &s, &s.clone(), &p), 0.0);
        // Reuse after a free redistribution and after a costly one.
        let dst = ProcSet::from_range(20, 6);
        let a = est.estimate_cost(5e8, &s, &dst, &p);
        let b = est.estimate_cost(5e8, &s, &dst, &p);
        assert_eq!(a, b, "scratch must reset between calls");
    }

    #[test]
    fn zero_bytes_is_instant() {
        let p = grillon();
        let s = ProcSet::from_range(0, 3);
        let d = ProcSet::from_range(5, 4);
        assert_eq!(estimate_cost(0.0, &s, &d, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty processor set")]
    fn rejects_empty_sets() {
        let p = grillon();
        estimate_cost(1.0, &ProcSet::empty(), &ProcSet::from_range(0, 1), &p);
    }

    #[test]
    fn hierarchical_platform_matches_too() {
        let p = Platform::from_spec(&ClusterSpec::grelon());
        // Spans two cabinets: exercises uplink accumulation and window caps.
        let src = ProcSet::from_range(0, 30);
        let dst = ProcSet::from_range(20, 40);
        let via_matrix = estimate_time(&redistribute(2e9, &src, &dst), &p);
        assert_eq!(estimate_cost(2e9, &src, &dst, &p), via_matrix);
    }

    #[test]
    fn cache_memoizes_per_slot_and_candidate() {
        let p = grillon();
        let src = ProcSet::from_range(0, 4);
        let d1 = ProcSet::from_range(4, 5);
        let d2 = ProcSet::from_range(8, 3);
        let mut cache = RedistCache::new(&p, 2);
        assert!(cache.is_empty());
        let a = cache.arrival(0, 1e8, &src, 2.5, &d1, &p);
        assert_eq!(a, 2.5 + estimate_cost(1e8, &src, &d1, &p));
        assert_eq!(cache.arrival(0, 1e8, &src, 2.5, &d1, &p), a);
        assert_eq!(cache.len(), 1, "repeat lookups must hit the memo");
        let b = cache.arrival(1, 3e7, &d1, 4.0, &d2, &p);
        assert_eq!(b, 4.0 + estimate_cost(3e7, &d1, &d2, &p));
        assert_eq!(cache.len(), 2);
        // Distinct payloads through the same producer slot stay distinct.
        let c = cache.arrival(0, 2e8, &src, 2.5, &d1, &p);
        assert_eq!(c, 2.5 + estimate_cost(2e8, &src, &d1, &p));
        assert_eq!(cache.arrival(0, 1e8, &src, 2.5, &d1, &p), a);
    }

    proptest! {
        /// The streaming estimate is bit-identical to materializing the
        /// transfer matrix and estimating it, for arbitrary overlapping
        /// shuffled sets on both platform shapes.
        #[test]
        fn streaming_equals_matrix_estimate(
            total in 1.0f64..1e9,
            p_len in 1u32..48,
            q_len in 1u32..48,
            seed in 0u64..500,
            hierarchical in 0u32..2,
        ) {
            let platform = if hierarchical == 1 {
                Platform::from_spec(&ClusterSpec::grelon())
            } else {
                grillon()
            };
            let n = platform.num_procs();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut all: Vec<u32> = (0..n).collect();
            all.shuffle(&mut rng);
            let src = ProcSet::new(all[..p_len.min(n) as usize].to_vec());
            let mut rest: Vec<u32> = (0..n).collect();
            rest.shuffle(&mut rng);
            let dst = ProcSet::new(rest[..q_len.min(n) as usize].to_vec());
            let via_matrix = estimate_time(&redistribute(total, &src, &dst), &platform);
            let streamed = estimate_cost(total, &src, &dst, &platform);
            prop_assert!(
                streamed == via_matrix,
                "streamed {streamed} != matrix {via_matrix}"
            );
            // The pruning bound must dominate every exact estimate.
            let bound = RedistEstimator::new(&platform).cost_upper_bound(total);
            prop_assert!(
                streamed <= bound,
                "estimate {streamed} exceeds its upper bound {bound}"
            );
        }
    }
}
