//! Step one: processor-count allocation (CPA, HCPA, MCPA).

use rats_dag::{critical_path, critical_path_length, TaskGraph};
use rats_platform::Platform;

/// How the *average area* `W` — the allocation stopping criterion — is
/// computed (paper, section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AreaPolicy {
    /// Classic CPA: `W = Σωᵢ / P`. On large clusters `W` stays small, which
    /// drives allocations excessively high.
    CpaClassic,
    /// HCPA's de-biased area: `W = Σωᵢ / min(P, N)` where `N` is the task
    /// count — "a modified definition of W to remove the bias induced by a
    /// large number of available processors".
    Hcpa,
    /// MCPA: like HCPA, but a task's allocation may also never exceed
    /// `P / width(level)` so all tasks of a DAG level can run concurrently.
    Mcpa,
}

/// Tuning knobs of the allocation procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocParams {
    /// Area policy (default: [`AreaPolicy::Hcpa`], as in the paper).
    pub policy: AreaPolicy,
    /// Whether the critical path driving the allocation loop includes edge
    /// (communication) weights.
    ///
    /// Default **false**, the CPA/HCPA behaviour: allocation grows against
    /// the *computation* critical path. Including communication weights
    /// (whose duration more processors cannot reduce) makes the loop pump
    /// processors into every task until the average area reaches the
    /// communication scale — the cluster saturates and task parallelism
    /// dies. Exposed as a knob for the ablation benches.
    pub cp_includes_comm: bool,
}

impl Default for AllocParams {
    fn default() -> Self {
        Self {
            policy: AreaPolicy::Hcpa,
            cp_includes_comm: false,
        }
    }
}

/// The result of the allocation step: a processor count per task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    procs: Vec<u32>,
}

impl Allocation {
    /// Builds an allocation directly from per-task processor counts (useful
    /// for tests and for replaying externally computed allocations).
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn from_counts(procs: Vec<u32>) -> Self {
        assert!(
            procs.iter().all(|&p| p >= 1),
            "every task needs at least one processor"
        );
        Self { procs }
    }

    /// Processor count of task index `i`.
    #[inline]
    pub fn of_index(&self, i: usize) -> u32 {
        self.procs[i]
    }

    /// Processor count of task `t`.
    #[inline]
    pub fn of(&self, t: rats_dag::TaskId) -> u32 {
        self.procs[t.index()]
    }

    /// All counts, indexed by task.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.procs
    }

    /// Consumes the allocation into the raw per-task vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.procs
    }
}

/// A pessimistic single-flow bandwidth used to weigh edges inside the
/// allocation step's critical-path computation (redistribution end-points
/// are unknown until mapping, so a scalar stand-in is all CPA/HCPA can use).
pub(crate) fn reference_bandwidth(platform: &Platform) -> f64 {
    let p = platform.num_procs();
    if p < 2 {
        return f64::INFINITY;
    }
    // Worst pair: first and last processor (crosses cabinets when the
    // topology is hierarchical).
    platform.effective_bandwidth(0, p - 1)
}

/// Runs the CPA-family allocation procedure: start every task at one
/// processor, then repeatedly give one more processor to the critical-path
/// task that benefits the most, until the critical path `C∞` drops below
/// the average area `W` (both are lower bounds on the makespan; their
/// crossing is the optimal compromise).
pub fn allocate(dag: &TaskGraph, platform: &Platform, params: AllocParams) -> Allocation {
    let n = dag.num_tasks();
    assert!(n > 0, "cannot allocate an empty task graph");
    let p_total = platform.num_procs();
    let gflops = platform.gflops();
    let beta = reference_bandwidth(platform);

    let mut alloc = vec![1u32; n];
    let mut times: Vec<f64> = dag
        .task_ids()
        .map(|t| dag.task(t).cost.time(1, gflops))
        .collect();
    let edge_cost = |bytes: f64| {
        if params.cp_includes_comm {
            bytes / beta
        } else {
            0.0
        }
    };

    // Effective processor count for the average area.
    let p_eff = match params.policy {
        AreaPolicy::CpaClassic => p_total,
        AreaPolicy::Hcpa | AreaPolicy::Mcpa => p_total.min(n as u32),
    };

    // MCPA: per-task cap so each DAG level fits on the cluster concurrently.
    let level_cap: Option<Vec<u32>> = match params.policy {
        AreaPolicy::Mcpa => {
            let by_level = dag.tasks_by_level();
            let mut cap = vec![p_total; n];
            for level in &by_level {
                let per_task = (p_total / level.len() as u32).max(1);
                for &t in level {
                    cap[t.index()] = per_task;
                }
            }
            Some(cap)
        }
        _ => None,
    };
    let cap_of = |i: usize| level_cap.as_ref().map_or(p_total, |c| c[i]);

    let total_work = |alloc: &[u32]| -> f64 {
        dag.task_ids()
            .map(|t| dag.task(t).cost.work(alloc[t.index()], gflops))
            .sum()
    };

    loop {
        let c_inf = critical_path_length(dag, &times, |_, bytes| edge_cost(bytes));
        let w = total_work(&alloc) / f64::from(p_eff);
        if c_inf <= w {
            break;
        }
        // Give one more processor to the critical task that gains the most
        // execution time from it.
        let cp = critical_path(dag, &times, |_, bytes| edge_cost(bytes));
        let mut best: Option<(f64, usize)> = None;
        for t in cp {
            let i = t.index();
            if alloc[i] >= cap_of(i) {
                continue;
            }
            let gain = times[i] - dag.task(t).cost.time(alloc[i] + 1, gflops);
            let better = match best {
                None => true,
                Some((g, bi)) => gain > g || (gain == g && i < bi),
            };
            if better {
                best = Some((gain, i));
            }
        }
        let Some((gain, i)) = best else {
            break; // every critical task is saturated
        };
        if gain <= 0.0 {
            break; // nothing on the critical path benefits any more
        }
        alloc[i] += 1;
        times[i] = dag
            .task(rats_dag::TaskId::from_index(i))
            .cost
            .time(alloc[i], gflops);
    }

    Allocation { procs: alloc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::{fft_dag, layered_dag, strassen_dag, DagParams};
    use rats_model::{CostParams, TaskCost};
    use rats_platform::ClusterSpec;

    fn grillon() -> Platform {
        Platform::from_spec(&ClusterSpec::grillon())
    }

    #[test]
    fn single_task_gets_many_processors() {
        let mut g = TaskGraph::new();
        g.add_task("t", TaskCost::new(100_000_000, 512.0, 0.01));
        let p = grillon();
        let a = allocate(&g, &p, AllocParams::default());
        // One task: C∞ = T(t, a), W = work/1 = T·a → stop when T ≤ T·a,
        // i.e. immediately at a = 1? No: W uses p_eff = min(P, N) = 1, so
        // W = T(t,a)·a ≥ C∞ always — allocation stays 1.
        assert_eq!(a.of_index(0), 1);
    }

    #[test]
    fn chain_tasks_scale_up() {
        // A chain has no task parallelism: every processor should go to the
        // critical path (all tasks), bounded by W's growth.
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..5 {
            let t = g.add_task(format!("t{i}"), TaskCost::new(50_000_000, 256.0, 0.05));
            if let Some(p) = prev {
                g.add_edge(p, t, 8.0 * 50_000_000.0);
            }
            prev = Some(t);
        }
        let p = grillon();
        let a = allocate(&g, &p, AllocParams::default());
        for i in 0..5 {
            assert!(a.of_index(i) > 1, "chain task {i} stuck at 1 processor");
        }
    }

    #[test]
    fn wide_graphs_spread_processors() {
        // 16 independent tasks + entry/exit: allocations must stay small so
        // tasks can run concurrently.
        let mut g = TaskGraph::new();
        let entry = g.add_task("in", TaskCost::zero());
        let exit = g.add_task("out", TaskCost::zero());
        for i in 0..16 {
            let t = g.add_task(format!("t{i}"), TaskCost::new(20_000_000, 128.0, 0.1));
            g.add_edge(entry, t, 1e6);
            g.add_edge(t, exit, 1e6);
        }
        let p = grillon();
        let a = allocate(&g, &p, AllocParams::default());
        let max = (0..g.num_tasks()).map(|i| a.of_index(i)).max().unwrap();
        assert!(
            max <= p.num_procs() / 4,
            "wide graph should not hog the cluster (max = {max})"
        );
    }

    #[test]
    fn hcpa_allocates_no_more_than_cpa() {
        // HCPA's larger W stops allocation earlier (or at the same point)
        // whenever the cluster has more processors than the DAG has tasks.
        let g = strassen_dag(&CostParams::paper(), 3);
        let p = Platform::from_spec(&ClusterSpec::grelon()); // 120 > 25
        let cpa = allocate(
            &g,
            &p,
            AllocParams {
                policy: AreaPolicy::CpaClassic,
                ..AllocParams::default()
            },
        );
        let hcpa = allocate(&g, &p, AllocParams::default());
        let sum = |a: &Allocation| a.as_slice().iter().map(|&x| u64::from(x)).sum::<u64>();
        assert!(
            sum(&hcpa) <= sum(&cpa),
            "HCPA {} > CPA {}",
            sum(&hcpa),
            sum(&cpa)
        );
    }

    #[test]
    fn mcpa_respects_level_width() {
        let g = layered_dag(
            &DagParams::layered(50, 0.8, 0.8, 0.5),
            &CostParams::paper(),
            1,
        );
        let p = grillon();
        let a = allocate(
            &g,
            &p,
            AllocParams {
                policy: AreaPolicy::Mcpa,
                ..AllocParams::default()
            },
        );
        for level in g.tasks_by_level() {
            let per_task_cap = (p.num_procs() / level.len() as u32).max(1);
            for t in level {
                assert!(a.of(t) <= per_task_cap);
            }
        }
    }

    #[test]
    fn allocations_never_exceed_cluster() {
        for seed in 0..5 {
            let g = fft_dag(8, &CostParams::paper(), seed);
            let p = Platform::from_spec(&ClusterSpec::chti());
            let a = allocate(&g, &p, AllocParams::default());
            for i in 0..g.num_tasks() {
                let x = a.of_index(i);
                assert!(x >= 1 && x <= p.num_procs());
            }
        }
    }

    #[test]
    fn allocation_is_deterministic() {
        let g = fft_dag(16, &CostParams::paper(), 11);
        let p = grillon();
        let a = allocate(&g, &p, AllocParams::default());
        let b = allocate(&g, &p, AllocParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn stopping_criterion_holds() {
        // After allocation, C∞ ≤ W (or no task can grow any further).
        let g = fft_dag(8, &CostParams::paper(), 2);
        let p = grillon();
        let a = allocate(&g, &p, AllocParams::default());
        let gflops = p.gflops();
        let times: Vec<f64> = g
            .task_ids()
            .map(|t| g.task(t).cost.time(a.of(t), gflops))
            .collect();
        let c_inf = critical_path_length(&g, &times, |_, _| 0.0);
        let w: f64 = g
            .task_ids()
            .map(|t| g.task(t).cost.work(a.of(t), gflops))
            .sum::<f64>()
            / f64::from(p.num_procs().min(g.num_tasks() as u32));
        let saturated = g.task_ids().all(|t| a.of(t) >= p.num_procs());
        assert!(
            c_inf <= w * (1.0 + 1e-9) || saturated,
            "C∞ = {c_inf} > W = {w} without saturation"
        );
    }
}
