//! Two-step scheduling of mixed-parallel applications: CPA/HCPA allocation
//! plus the paper's **Redistribution Aware Two-Step (RATS)** mapping.
//!
//! Two-step schedulers first decide *how many* processors each moldable task
//! gets (**allocation**, [`allocate`]) and then *which* processors each task
//! runs on (**mapping**, [`Scheduler::schedule`]). The paper's contribution
//! is to let the mapping step *reconsider* the allocation of a ready task so
//! it can reuse a predecessor's exact processor set — eliminating the data
//! redistribution on that edge entirely:
//!
//! * **pack** — shrink the allocation to a smaller predecessor's set; the
//!   task runs longer but may start earlier and leaves room for concurrent
//!   tasks;
//! * **stretch** — grow the allocation to a larger predecessor's set; the
//!   task runs faster *and* avoids a redistribution, at the price of more
//!   work.
//!
//! Two tunable strategies decide when to do either
//! ([`MappingStrategy::RatsDelta`] and [`MappingStrategy::RatsTimeCost`]),
//! and matching secondary sorts order the ready list (section III-C).
//! [`MappingStrategy::Hcpa`] keeps allocations untouched, which is the
//! baseline the paper compares against.
//!
//! ```
//! use rats_daggen::{fft_dag, suite};
//! use rats_model::CostParams;
//! use rats_platform::{ClusterSpec, Platform};
//! use rats_sched::{MappingStrategy, Scheduler};
//!
//! let platform = Platform::from_spec(&ClusterSpec::grillon());
//! let dag = fft_dag(8, &CostParams::paper(), 42);
//! let schedule = Scheduler::new(&platform)
//!     .strategy(MappingStrategy::rats_time_cost(0.5, true))
//!     .schedule(&dag);
//! assert!(schedule.makespan_estimate() > 0.0);
//! schedule.validate(&dag, &platform).unwrap();
//! ```

mod allocation;
mod mapping;
mod schedule;
mod strategy;

pub use allocation::{allocate, AllocParams, Allocation, AreaPolicy};
pub use mapping::Scheduler;
pub use schedule::{Schedule, ScheduleEntry, ScheduleError};
pub use strategy::{
    CandidatePolicy, CombinedParams, DeltaParams, MappingStrategy, SecondarySort, TimeCostParams,
};
