//! Two-step scheduling of mixed-parallel applications: CPA/HCPA allocation
//! plus the paper's **Redistribution Aware Two-Step (RATS)** mapping,
//! behind an open policy interface.
//!
//! Two-step schedulers first decide *how many* processors each moldable task
//! gets (**allocation**, [`allocate`]) and then *which* processors each task
//! runs on (**mapping**, [`Scheduler::schedule`]). The paper's contribution
//! is to let the mapping step *reconsider* the allocation of a ready task so
//! it can reuse a predecessor's exact processor set — eliminating the data
//! redistribution on that edge entirely:
//!
//! * **pack** — shrink the allocation to a smaller predecessor's set; the
//!   task runs longer but may start earlier and leaves room for concurrent
//!   tasks;
//! * **stretch** — grow the allocation to a larger predecessor's set; the
//!   task runs faster *and* avoids a redistribution, at the price of more
//!   work.
//!
//! ## The policy interface
//!
//! The decision of *when* to pack or stretch is the open variation point:
//! every policy is an implementation of the object-safe [`MappingPolicy`]
//! trait, fed a read-only [`MapView`] of the in-progress mapping. Four
//! implementations ship with the crate — [`Hcpa`] (the non-adopting
//! baseline), [`DeltaPolicy`], [`TimeCostPolicy`] and [`CombinedPolicy`] —
//! and external crates can define their own (see the example in
//! [`policy`]). The closed [`MappingStrategy`] enum remains as a `Copy`
//! constructor layer for sweeps and serialized experiment specs; it
//! delegates to the trait impls, so both forms produce byte-identical
//! schedules.
//!
//! Invalid parameters are reported through [`StrategyError`] by the
//! `Result` constructors ([`DeltaParams::new`], [`TimeCostParams::new`],
//! [`CombinedParams::new`], and the policies' `new` functions).
//!
//! ## The incremental engine
//!
//! The mapping driver behind [`Scheduler::schedule`] is *incremental*:
//! readiness is maintained event-driven by a [`rats_dag::ReadyTracker`]
//! (newly ready tasks discovered in O(out-degree) at placement, not by
//! re-scanning the graph per round), redistribution arrival times come from
//! the streaming, memoizing [`rats_redist::RedistCache`] (no transfer
//! matrix is materialized per candidate evaluation), per-task `data_ready`
//! terms are cached per candidate-set fingerprint, ready-list sort keys are
//! computed once per round, and the earliest-k placement search uses O(P)
//! partial selection. None of this changes behavior: the pre-incremental
//! driver is retained under the `reference` cargo feature
//! ([`Scheduler::reference_schedule`] and
//! [`Scheduler::reference_schedule_with_allocation`], also compiled for
//! tests) and parity tests assert **byte-identical** schedules — entries,
//! processor rank orders, bit-level estimates and placement order — across
//! all shipped policies on the paper suite and random DAG/platform pairs.
//! The `mapping_engine` bench in `crates/bench` records the before/after
//! throughput (`BENCH_mapping.json`).
//!
//! ```
//! use rats_daggen::fft_dag;
//! use rats_model::CostParams;
//! use rats_platform::{ClusterSpec, Platform};
//! use rats_sched::{Scheduler, TimeCostPolicy};
//!
//! let platform = Platform::from_spec(&ClusterSpec::grillon());
//! let dag = fft_dag(8, &CostParams::paper(), 42);
//! let schedule = Scheduler::new(&platform)
//!     .policy(TimeCostPolicy::new(0.5, true)?)
//!     .schedule(&dag);
//! assert!(schedule.makespan_estimate() > 0.0);
//! schedule.validate(&dag, &platform).unwrap();
//! # Ok::<(), rats_sched::StrategyError>(())
//! ```

mod allocation;
mod mapping;
#[cfg(test)]
mod parity_tests;
pub mod policy;
#[cfg(any(test, feature = "reference"))]
mod reference;
mod schedule;
mod strategy;
pub mod telemetry;

pub use allocation::{allocate, AllocParams, Allocation, AreaPolicy};
pub use mapping::Scheduler;
pub use policy::{
    CombinedPolicy, DeltaPolicy, Hcpa, MapView, MappingDecision, MappingPolicy, Placement,
    TimeCostPolicy,
};
pub use schedule::{Schedule, ScheduleEntry, ScheduleError};
pub use strategy::{
    CandidatePolicy, CombinedParams, DeltaParams, MappingStrategy, SecondarySort, StrategyError,
    TimeCostParams,
};
