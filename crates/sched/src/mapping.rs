//! Step two: list-scheduling task mapping, with the RATS pack/stretch
//! reconsideration of allocations (paper, section III and Algorithm 1).

use rats_dag::{bottom_levels, TaskGraph, TaskId};
use rats_platform::{Platform, ProcSet};
use rats_redist::{align_for_self_comm, estimate_time, redistribute};

use crate::allocation::{allocate, reference_bandwidth, AllocParams, Allocation};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::strategy::{CandidatePolicy, MappingStrategy, SecondarySort};

/// Two-step scheduler: allocation (step one) + mapping (step two).
///
/// Built with a platform, an [`AllocParams`] (HCPA by default — the
/// allocation procedure RATS builds on) and a [`MappingStrategy`]
/// (plain HCPA mapping by default).
#[derive(Debug, Clone)]
pub struct Scheduler<'p> {
    platform: &'p Platform,
    alloc_params: AllocParams,
    strategy: MappingStrategy,
    candidates: CandidatePolicy,
}

impl<'p> Scheduler<'p> {
    /// A scheduler with the paper's defaults (HCPA allocation, HCPA
    /// mapping).
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            alloc_params: AllocParams::default(),
            strategy: MappingStrategy::Hcpa,
            candidates: CandidatePolicy::default(),
        }
    }

    /// Selects the allocation-step area policy.
    pub fn area_policy(mut self, policy: crate::allocation::AreaPolicy) -> Self {
        self.alloc_params.policy = policy;
        self
    }

    /// Selects the mapping strategy.
    pub fn strategy(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the default-mapping candidate policy (see
    /// [`CandidatePolicy`]; the default reproduces the paper's HCPA).
    pub fn candidate_policy(mut self, candidates: CandidatePolicy) -> Self {
        self.candidates = candidates;
        self
    }

    /// Runs both steps and returns the schedule.
    pub fn schedule(&self, dag: &TaskGraph) -> Schedule {
        let alloc = allocate(dag, self.platform, self.alloc_params);
        self.schedule_with_allocation(dag, &alloc)
    }

    /// Runs only the mapping step on a precomputed allocation — this is how
    /// the experiments compare HCPA and both RATS variants *on the same
    /// step-one output*, isolating the effect of the mapping strategy.
    pub fn schedule_with_allocation(&self, dag: &TaskGraph, alloc: &Allocation) -> Schedule {
        Mapper::new(
            dag,
            self.platform,
            alloc.as_slice().to_vec(),
            self.strategy,
            self.candidates,
        )
        .run()
    }
}

/// Outcome of a strategy's attempt to adopt a predecessor allocation.
enum Decision {
    /// Map onto this predecessor's processor set with these estimated
    /// times, consuming the predecessor's allocation (each parent's set can
    /// be adopted by at most one child — Algorithm 1's "recompute … only if
    /// they have been computed using this parent allocation" bookkeeping,
    /// without which all ready siblings would pile onto one parent's
    /// processors and serialize).
    Adopt {
        from_pred: TaskId,
        procs: ProcSet,
        start: f64,
        finish: f64,
    },
    /// Fall back to the default HCPA mapping (possibly already computed
    /// while evaluating the packing condition).
    Default(Option<(ProcSet, f64, f64)>),
}

struct Mapper<'a> {
    dag: &'a TaskGraph,
    platform: &'a Platform,
    strategy: MappingStrategy,
    candidates: CandidatePolicy,
    /// Current allocation; RATS rewrites entries when packing/stretching.
    alloc: Vec<u32>,
    /// Static priority: bottom level under the initial allocation.
    bottom: Vec<f64>,
    /// Next free time of every processor.
    proc_ready: Vec<f64>,
    entries: Vec<Option<ScheduleEntry>>,
    order: Vec<TaskId>,
    /// Tasks whose processor set has already been adopted by one child.
    adopted: Vec<bool>,
}

impl<'a> Mapper<'a> {
    fn new(
        dag: &'a TaskGraph,
        platform: &'a Platform,
        alloc: Vec<u32>,
        strategy: MappingStrategy,
        candidates: CandidatePolicy,
    ) -> Self {
        let gflops = platform.gflops();
        let beta = reference_bandwidth(platform);
        let times: Vec<f64> = dag
            .task_ids()
            .map(|t| dag.task(t).cost.time(alloc[t.index()], gflops))
            .collect();
        let bottom = bottom_levels(dag, &times, |e| dag.edge(e).bytes / beta);
        Self {
            dag,
            platform,
            strategy,
            candidates,
            alloc,
            bottom,
            proc_ready: vec![0.0; platform.num_procs() as usize],
            entries: vec![None; dag.num_tasks()],
            order: Vec::with_capacity(dag.num_tasks()),
            adopted: vec![false; dag.num_tasks()],
        }
    }

    #[inline]
    fn exec_time(&self, t: TaskId, p: u32) -> f64 {
        self.dag.task(t).cost.time(p, self.platform.gflops())
    }

    #[inline]
    fn work(&self, t: TaskId, p: u32) -> f64 {
        self.dag.task(t).cost.work(p, self.platform.gflops())
    }

    fn entry_of(&self, t: TaskId) -> &ScheduleEntry {
        self.entries[t.index()]
            .as_ref()
            .expect("predecessors are mapped before their successors")
    }

    /// Estimated (start, finish) of `t` on the candidate set `procs`:
    /// the task starts once every input redistribution has arrived
    /// (contention-free estimates) and all processors are free.
    fn estimate_on(&self, t: TaskId, procs: &ProcSet) -> (f64, f64) {
        let mut data_ready = 0.0f64;
        for (pred, e) in self.dag.predecessors(t) {
            let pe = self.entry_of(pred);
            let bytes = self.dag.edge(e).bytes;
            let r = redistribute(bytes, &pe.procs, procs);
            let arrival = pe.est_finish + estimate_time(&r, self.platform);
            data_ready = data_ready.max(arrival);
        }
        let proc_avail = procs
            .iter()
            .map(|p| self.proc_ready[p as usize])
            .fold(0.0f64, f64::max);
        let start = data_ready.max(proc_avail);
        (start, start + self.exec_time(t, procs.len()))
    }

    /// The heaviest input edge's predecessor (most data to move) — the
    /// parent worth aligning a fresh candidate set against.
    fn heaviest_pred(&self, t: TaskId) -> Option<TaskId> {
        self.dag
            .predecessors(t)
            .max_by(|(a, ea), (b, eb)| {
                let wa = self.dag.edge(*ea).bytes;
                let wb = self.dag.edge(*eb).bytes;
                wa.partial_cmp(&wb)
                    .expect("edge weights are finite")
                    .then(b.index().cmp(&a.index()))
            })
            .map(|(p, _)| p)
    }

    /// The `k` earliest-available processors (ties by id), rank-ordered for
    /// maximal self communication with the heaviest parent.
    fn earliest_k(&self, t: TaskId, k: u32) -> ProcSet {
        let mut procs: Vec<u32> = (0..self.platform.num_procs()).collect();
        procs.sort_by(|&a, &b| {
            self.proc_ready[a as usize]
                .partial_cmp(&self.proc_ready[b as usize])
                .expect("ready times are finite")
                .then(a.cmp(&b))
        });
        procs.truncate(k as usize);
        procs.sort_unstable(); // deterministic rank order before alignment
        let set = ProcSet::new(procs);
        match self.heaviest_pred(t) {
            Some(p) => align_for_self_comm(&self.entry_of(p).procs, &set),
            None => set,
        }
    }

    /// A candidate derived from predecessor `pred`'s set, resized to `k`:
    /// its prefix when shrinking, or the full set padded with the earliest
    /// other processors when growing.
    fn pred_candidate(&self, pred: TaskId, k: u32) -> ProcSet {
        let pp = &self.entry_of(pred).procs;
        if pp.len() >= k {
            pp.first_k(k)
        } else {
            let mut procs: Vec<u32> = pp.as_slice().to_vec();
            let mut others: Vec<u32> = (0..self.platform.num_procs())
                .filter(|p| !pp.contains(*p))
                .collect();
            others.sort_by(|&a, &b| {
                self.proc_ready[a as usize]
                    .partial_cmp(&self.proc_ready[b as usize])
                    .expect("ready times are finite")
                    .then(a.cmp(&b))
            });
            procs.extend(others.into_iter().take((k - pp.len()) as usize));
            ProcSet::new(procs)
        }
    }

    /// Default HCPA mapping: evaluate the candidate set(s) dictated by the
    /// [`CandidatePolicy`], pick the earliest estimated finish.
    fn default_mapping(&self, t: TaskId) -> (ProcSet, f64, f64) {
        let k = self.alloc[t.index()];
        let mut candidates = vec![self.earliest_k(t, k)];
        if self.candidates == CandidatePolicy::ParentAware {
            for (pred, _) in self.dag.predecessors(t) {
                candidates.push(self.pred_candidate(pred, k));
            }
        }
        let mut best: Option<(ProcSet, f64, f64)> = None;
        for c in candidates {
            let (s, f) = self.estimate_on(t, &c);
            let better = match &best {
                None => true,
                Some((_, bs, bf)) => f < *bf - 1e-15 || (f <= *bf + 1e-15 && s < *bs - 1e-15),
            };
            if better {
                best = Some((c, s, f));
            }
        }
        best.expect("at least the earliest-k candidate exists")
    }

    /// The delta strategy (section III-A/III-B, delta flavour): among the
    /// predecessors whose allocation is within the pack/stretch bounds,
    /// adopt the one needing the smallest modification |δ|; ties go to the
    /// heaviest input edge (the biggest avoided redistribution), then to
    /// the lowest predecessor id.
    fn try_delta(&self, t: TaskId, params: crate::strategy::DeltaParams) -> Decision {
        let k = self.alloc[t.index()];
        // (|δ|, edge bytes, pred) of the best qualifying predecessor.
        let mut chosen: Option<(u32, f64, TaskId)> = None;
        for (pred, e) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue; // this parent's allocation is already taken
            }
            let np = self.entry_of(pred).procs.len();
            let feasible = if np >= k {
                np - k <= params.delta_max(k)
            } else {
                k - np <= params.delta_min_magnitude(k)
            };
            if !feasible {
                continue;
            }
            let d = np.abs_diff(k);
            let bytes = self.dag.edge(e).bytes;
            let better = match chosen {
                None => true,
                Some((bd, bb, bp)) => {
                    d < bd || (d == bd && (bytes > bb + 1e-9 || (bytes >= bb - 1e-9 && pred < bp)))
                }
            };
            if better {
                chosen = Some((d, bytes, pred));
            }
        }
        let chosen = chosen.map(|(_, _, p)| p);
        match chosen {
            Some(pred) => {
                let procs = self.entry_of(pred).procs.clone();
                let (s, f) = self.estimate_on(t, &procs);
                Decision::Adopt {
                    from_pred: pred,
                    procs,
                    start: s,
                    finish: f,
                }
            }
            None => Decision::Default(None),
        }
    }

    /// The time-cost strategy: stretch when the work ratio stays above
    /// `minrho` *and* the estimated finish does not regress; pack when the
    /// estimated finish does not get worse.
    ///
    /// The finish-time guard on stretching is our reading of the paper's
    /// premise that the mapping procedure can "estimate accurately the
    /// respective finish time of a task using several modified allocations"
    /// (section III): adopting a busy parent set that *delays* the task
    /// would contradict the strategy's goal (and, empirically, inverts the
    /// paper's time-cost > delta > HCPA ranking).
    fn try_time_cost(&self, t: TaskId, params: crate::strategy::TimeCostParams) -> Decision {
        let k = self.alloc[t.index()];
        let own_work = self.work(t, k);
        let default = self.default_mapping(t);
        // Stretch (or adopt an equal-size predecessor, ρ = 1): among the
        // efficient enough candidates (ρ ≥ minrho), take the best finish.
        let mut best_stretch: Option<(TaskId, ProcSet, f64, f64)> = None;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            if np < k {
                continue;
            }
            let rho = if own_work == 0.0 {
                1.0
            } else {
                own_work / self.work(t, np)
            };
            if rho < params.minrho {
                continue;
            }
            let pp = &self.entry_of(pred).procs;
            let (s, f) = self.estimate_on(t, pp);
            if best_stretch
                .as_ref()
                .is_none_or(|(_, _, _, bf)| f < *bf - 1e-15)
            {
                best_stretch = Some((pred, pp.clone(), s, f));
            }
        }
        if let Some((pred, procs, s, f)) = best_stretch {
            if f <= default.2 + 1e-15 {
                return Decision::Adopt {
                    from_pred: pred,
                    procs,
                    start: s,
                    finish: f,
                };
            }
        }
        if !params.allow_packing {
            return Decision::Default(Some(default));
        }
        // Pack: adopt the smaller predecessor allocation with the best
        // estimated finish, but only if it beats the default mapping.
        let mut best_pack: Option<(TaskId, ProcSet, f64, f64)> = None;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let pp = &self.entry_of(pred).procs;
            if pp.len() >= k {
                continue;
            }
            let (s, f) = self.estimate_on(t, pp);
            if best_pack
                .as_ref()
                .is_none_or(|(_, _, _, bf)| f < *bf - 1e-15)
            {
                best_pack = Some((pred, pp.clone(), s, f));
            }
        }
        match best_pack {
            Some((pred, procs, s, f)) if f <= default.2 + 1e-15 => Decision::Adopt {
                from_pred: pred,
                procs,
                start: s,
                finish: f,
            },
            _ => Decision::Default(Some(default)),
        }
    }

    /// The combined strategy (extension): predecessors within the delta
    /// bounds are candidates; the best estimated finish wins, and the
    /// adoption must not regress versus the default mapping. Stretching
    /// additionally honours the `minrho` efficiency threshold.
    fn try_combined(&self, t: TaskId, params: crate::strategy::CombinedParams) -> Decision {
        let k = self.alloc[t.index()];
        let own_work = self.work(t, k);
        let default = self.default_mapping(t);
        let mut best: Option<(TaskId, ProcSet, f64, f64)> = None;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let pp = &self.entry_of(pred).procs;
            let np = pp.len();
            let feasible = if np >= k {
                let rho = if own_work == 0.0 {
                    1.0
                } else {
                    own_work / self.work(t, np)
                };
                np - k <= params.delta.delta_max(k) && rho >= params.minrho
            } else {
                k - np <= params.delta.delta_min_magnitude(k)
            };
            if !feasible {
                continue;
            }
            let (s, f) = self.estimate_on(t, pp);
            if best.as_ref().is_none_or(|(_, _, _, bf)| f < *bf - 1e-15) {
                best = Some((pred, pp.clone(), s, f));
            }
        }
        match best {
            Some((pred, procs, s, f)) if f <= default.2 + 1e-15 => Decision::Adopt {
                from_pred: pred,
                procs,
                start: s,
                finish: f,
            },
            _ => Decision::Default(Some(default)),
        }
    }

    /// δ(t) for the ready-list secondary sort: the smallest allocation
    /// modification that would adopt any predecessor's set.
    fn delta_key(&self, t: TaskId) -> f64 {
        let k = self.alloc[t.index()];
        let mut best = f64::INFINITY;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            best = best.min(f64::from(np.abs_diff(k)));
        }
        best
    }

    /// gain(t) for the ready-list secondary sort: the largest execution-time
    /// reduction any predecessor's set offers.
    fn gain_key(&self, t: TaskId) -> f64 {
        let k = self.alloc[t.index()];
        let own = self.exec_time(t, k);
        let mut best = f64::NEG_INFINITY;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            best = best.max(own - self.exec_time(t, np));
        }
        best
    }

    /// Sorts ready tasks by decreasing bottom level, then by the strategy's
    /// stable secondary criterion, then by id (full determinism).
    fn sort_ready(&self, ready: &mut [TaskId]) {
        let secondary = self.strategy.secondary_sort();
        ready.sort_by(|&a, &b| {
            let bl = self.bottom[b.index()]
                .partial_cmp(&self.bottom[a.index()])
                .expect("bottom levels are finite");
            let sec = match secondary {
                SecondarySort::None => std::cmp::Ordering::Equal,
                SecondarySort::DeltaAscending => self
                    .delta_key(a)
                    .partial_cmp(&self.delta_key(b))
                    .expect("delta keys are not NaN"),
                SecondarySort::GainDescending => self
                    .gain_key(b)
                    .partial_cmp(&self.gain_key(a))
                    .expect("gain keys are not NaN"),
            };
            bl.then(sec).then(a.index().cmp(&b.index()))
        });
    }

    fn place(&mut self, t: TaskId, procs: ProcSet, start: f64, finish: f64) {
        for p in procs.iter() {
            self.proc_ready[p as usize] = finish;
        }
        self.alloc[t.index()] = procs.len();
        self.entries[t.index()] = Some(ScheduleEntry {
            task: t,
            procs,
            est_start: start,
            est_finish: finish,
        });
        self.order.push(t);
    }

    /// Algorithm 1: repeatedly sort and drain the ready list, letting the
    /// strategy adopt predecessor allocations where its conditions hold.
    ///
    /// Estimates are evaluated lazily at pop time, which subsumes the
    /// algorithm's "recompute … only if they have been computed using this
    /// parent allocation" bookkeeping: every decision sees the platform
    /// state left by all previously mapped tasks.
    fn run(mut self) -> Schedule {
        let n = self.dag.num_tasks();
        let mut num_mapped = 0usize;
        while num_mapped < n {
            let mut ready: Vec<TaskId> = self
                .dag
                .task_ids()
                .filter(|&t| {
                    self.entries[t.index()].is_none()
                        && self
                            .dag
                            .predecessors(t)
                            .all(|(p, _)| self.entries[p.index()].is_some())
                })
                .collect();
            assert!(!ready.is_empty(), "acyclic graph always has ready tasks");
            self.sort_ready(&mut ready);
            for t in ready {
                let decision = match self.strategy {
                    MappingStrategy::Hcpa => Decision::Default(None),
                    MappingStrategy::RatsDelta(p) => self.try_delta(t, p),
                    MappingStrategy::RatsTimeCost(p) => self.try_time_cost(t, p),
                    MappingStrategy::RatsCombined(p) => self.try_combined(t, p),
                };
                let (procs, start, finish) = match decision {
                    Decision::Adopt {
                        from_pred,
                        procs,
                        start,
                        finish,
                    } => {
                        self.adopted[from_pred.index()] = true;
                        (procs, start, finish)
                    }
                    Decision::Default(Some(d)) => d,
                    Decision::Default(None) => self.default_mapping(t),
                };
                self.place(t, procs, start, finish);
                num_mapped += 1;
            }
        }
        Schedule {
            entries: self
                .entries
                .into_iter()
                .map(|e| e.expect("all tasks mapped"))
                .collect(),
            order: self.order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AreaPolicy;
    use rats_daggen::{fft_dag, strassen_dag, suite};
    use rats_model::{CostParams, TaskCost};
    use rats_platform::ClusterSpec;

    fn grillon() -> Platform {
        Platform::from_spec(&ClusterSpec::grillon())
    }

    fn all_strategies() -> Vec<MappingStrategy> {
        vec![
            MappingStrategy::Hcpa,
            MappingStrategy::rats_delta(0.5, 0.5),
            MappingStrategy::rats_time_cost(0.5, true),
        ]
    }

    #[test]
    fn every_strategy_produces_valid_schedules() {
        let p = grillon();
        for scenario in suite::mini_suite(&CostParams::paper(), 5) {
            for strat in all_strategies() {
                let s = Scheduler::new(&p).strategy(strat).schedule(&scenario.dag);
                s.validate(&scenario.dag, &p)
                    .unwrap_or_else(|e| panic!("{} / {}: {e}", scenario.name, strat.name()));
                assert!(s.makespan_estimate() > 0.0);
            }
        }
    }

    #[test]
    fn scheduling_is_deterministic() {
        let p = grillon();
        let dag = fft_dag(8, &CostParams::paper(), 3);
        for strat in all_strategies() {
            let a = Scheduler::new(&p).strategy(strat).schedule(&dag);
            let b = Scheduler::new(&p).strategy(strat).schedule(&dag);
            assert_eq!(a.makespan_estimate(), b.makespan_estimate());
            for (x, y) in a.entries.iter().zip(&b.entries) {
                assert_eq!(x.procs, y.procs);
            }
        }
    }

    #[test]
    fn chain_with_equal_allocations_reuses_processor_sets() {
        // In a chain, every strategy should keep reusing the predecessor's
        // set (the redistribution-free choice) once allocations match.
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..4 {
            let t = g.add_task(format!("t{i}"), TaskCost::new(50_000_000, 256.0, 0.05));
            if let Some(p) = prev {
                g.add_edge(p, t, 4e8);
            }
            prev = Some(t);
        }
        let p = grillon();
        // RATS strategies adopt the predecessor's exact set along the chain.
        for strat in [
            MappingStrategy::rats_delta(0.5, 0.5),
            MappingStrategy::rats_time_cost(0.5, true),
        ] {
            let s = Scheduler::new(&p).strategy(strat).schedule(&g);
            let first = &s.entries[0].procs;
            for e in &s.entries[1..] {
                assert!(
                    e.procs.same_members(first),
                    "{}: chain broke processor reuse",
                    strat.name()
                );
            }
        }
        // Plain HCPA with the paper-era earliest-k placement hops to idle
        // processors and pays the redistribution — the paper's motivating
        // flaw. The stronger parent-aware ablation policy reuses the sets.
        let s = Scheduler::new(&p)
            .candidate_policy(CandidatePolicy::ParentAware)
            .schedule(&g);
        for w in s.entries.windows(2) {
            let (a, b) = (&w[0].procs, &w[1].procs);
            let min_len = a.len().min(b.len());
            assert!(
                a.overlap_count(b) >= min_len / 2,
                "parent-aware chain overlap collapsed: {} of {min_len}",
                a.overlap_count(b)
            );
        }
        let s = Scheduler::new(&p).schedule(&g);
        s.validate(&g, &p).unwrap();
    }

    #[test]
    fn time_cost_stretches_onto_larger_parent() {
        // a is hand-allocated 8 procs, b 4: with a permissive minrho, b must
        // adopt a's full set.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.02));
        let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.02));
        g.add_edge(a, b, 6.4e8);
        let p = grillon();
        let alloc = Allocation::from_counts(vec![8, 4]);
        let s = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_time_cost(0.2, true))
            .schedule_with_allocation(&g, &alloc);
        assert_eq!(s.entries[b.index()].procs.len(), 8);
        assert!(s.entries[b.index()]
            .procs
            .same_members(&s.entries[a.index()].procs));
    }

    #[test]
    fn strict_rho_prevents_stretching() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.25));
        let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.25));
        g.add_edge(a, b, 6.4e8);
        let p = grillon();
        let alloc = Allocation::from_counts(vec![16, 2]);
        // α = 0.25 at 2 → 16 procs wastes a lot of work: ρ is far below 1.
        let s = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_time_cost(1.0, false))
            .schedule_with_allocation(&g, &alloc);
        assert_eq!(s.entries[b.index()].procs.len(), 2);
    }

    #[test]
    fn delta_bounds_gate_adoption() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.02));
        let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.02));
        g.add_edge(a, b, 6.4e8);
        let p = grillon();
        let alloc = Allocation::from_counts(vec![8, 4]);
        // maxdelta = 0.5 → δmax = 2 < 4: adoption forbidden.
        let strict = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_delta(0.0, 0.5))
            .schedule_with_allocation(&g, &alloc);
        assert_eq!(strict.entries[b.index()].procs.len(), 4);
        // maxdelta = 1.0 → δmax = 4: adoption allowed.
        let loose = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_delta(0.0, 1.0))
            .schedule_with_allocation(&g, &alloc);
        assert_eq!(loose.entries[b.index()].procs.len(), 8);
    }

    #[test]
    fn delta_packs_onto_smaller_parent() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.02));
        let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.02));
        g.add_edge(a, b, 6.4e8);
        let p = grillon();
        let alloc = Allocation::from_counts(vec![4, 6]);
        let s = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_delta(0.5, 0.0))
            .schedule_with_allocation(&g, &alloc);
        // |δ⁻| = 2 ≤ ⌊0.5·6⌋ = 3 → packed onto a's 4 processors.
        assert_eq!(s.entries[b.index()].procs.len(), 4);
    }

    #[test]
    fn hcpa_never_changes_allocation_sizes() {
        let p = grillon();
        let dag = strassen_dag(&CostParams::paper(), 7);
        let alloc = allocate(&dag, &p, AllocParams::default());
        let s = Scheduler::new(&p).schedule_with_allocation(&dag, &alloc);
        for t in dag.task_ids() {
            assert_eq!(s.entries[t.index()].procs.len(), alloc.of(t));
        }
    }

    #[test]
    fn rats_makespan_estimate_not_catastrophically_worse() {
        // Sanity guard (the real comparison runs in rats-experiments): on a
        // mini suite, each RATS variant's estimated makespan should stay
        // within 2× of HCPA's.
        let p = grillon();
        for scenario in suite::mini_suite(&CostParams::paper(), 11) {
            let alloc = allocate(&scenario.dag, &p, AllocParams::default());
            let base = Scheduler::new(&p)
                .schedule_with_allocation(&scenario.dag, &alloc)
                .makespan_estimate();
            for strat in [
                MappingStrategy::rats_delta(0.5, 0.5),
                MappingStrategy::rats_time_cost(0.5, true),
            ] {
                let m = Scheduler::new(&p)
                    .strategy(strat)
                    .schedule_with_allocation(&scenario.dag, &alloc)
                    .makespan_estimate();
                assert!(
                    m <= base * 2.0 + 1e-9,
                    "{} on {}: {m} vs HCPA {base}",
                    strat.name(),
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn combined_strategy_is_valid_and_never_regresses_estimates() {
        let p = grillon();
        for scenario in suite::mini_suite(&CostParams::paper(), 31) {
            let alloc = allocate(&scenario.dag, &p, AllocParams::default());
            let base = Scheduler::new(&p)
                .schedule_with_allocation(&scenario.dag, &alloc);
            let combined = Scheduler::new(&p)
                .strategy(MappingStrategy::rats_combined(0.5, 1.0, 0.4))
                .schedule_with_allocation(&scenario.dag, &alloc);
            combined.validate(&scenario.dag, &p).unwrap();
            // Every adoption is estimate-gated, so the estimated makespan
            // can only drift through placement interactions — it must stay
            // in the baseline's neighbourhood.
            assert!(
                combined.makespan_estimate() <= base.makespan_estimate() * 1.5 + 1e-9,
                "{}: combined {} vs HCPA {}",
                scenario.name,
                combined.makespan_estimate(),
                base.makespan_estimate()
            );
        }
    }

    #[test]
    fn combined_adopts_equal_size_parents() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(50_000_000, 256.0, 0.05));
        let b = g.add_task("b", TaskCost::new(50_000_000, 256.0, 0.05));
        g.add_edge(a, b, 4e8);
        let p = grillon();
        let alloc = Allocation::from_counts(vec![6, 6]);
        let s = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_combined(0.0, 0.0, 1.0))
            .schedule_with_allocation(&g, &alloc);
        assert!(s.entries[b.index()]
            .procs
            .same_members(&s.entries[a.index()].procs));
    }

    #[test]
    fn mcpa_policy_also_schedules() {
        let p = grillon();
        let dag = fft_dag(8, &CostParams::paper(), 1);
        let s = Scheduler::new(&p)
            .area_policy(AreaPolicy::Mcpa)
            .schedule(&dag);
        s.validate(&dag, &p).unwrap();
    }
}
