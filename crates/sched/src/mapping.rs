//! Step two: list-scheduling task mapping, driven by a pluggable
//! [`MappingPolicy`] (paper, section III and Algorithm 1).
//!
//! The driver ([`Mapper`]) owns the mechanics every policy shares — ready
//! lists, bottom-level priorities, processor availability, candidate
//! placement and finish-time estimation — and delegates the per-task
//! adopt/pack/stretch verdict to the policy through a read-only
//! [`MapView`].
//!
//! # The incremental engine
//!
//! The driver is the hot path of every experiment, so its mechanics are
//! incremental rather than re-derived per round, and its state is laid out
//! as dense arrays with no per-task heap allocation in steady state:
//!
//! * **task state** — a struct-of-arrays [`TaskTable`] (allocation sizes,
//!   bottom levels, adoption flags, placed entries) replaces per-field
//!   vectors scattered across the driver; the per-task predecessor arrival
//!   bounds live in one contiguous CSR arena ([`MapCache::bitems`]) bump-
//!   filled on first use instead of a boxed slice per task;
//! * **readiness** — a [`rats_dag::ReadyTracker`] (in-degree counters over
//!   a flattened successor view) discovers newly ready tasks in
//!   O(out-degree) when a task is placed, replacing the per-round
//!   full-graph O(n²) re-scan; the round batch and sort-key buffers are
//!   reused across rounds ([`Scratch`]);
//! * **estimates** — redistribution times come from the streaming
//!   [`rats_redist::RedistCache`]: no transfer matrix is materialized, and
//!   arrival times are memoized per (producer entry, payload,
//!   candidate-set) — sound because a placed producer's set and finish time
//!   are immutable. On top, the driver memoizes each task's `data_ready`
//!   term per candidate-set fingerprint;
//! * **bound pruning** — `data_ready` is a max over predecessor arrivals,
//!   and `f64::max` over non-negative values is exact, so sound
//!   upper/lower bounds prune most exact evaluations bit-identically:
//!   per-task descending bound lists stop the arrival walk early; when the
//!   processors only come free after the task's arrival upper bound, no
//!   redistribution estimate is evaluated at all; and candidate blocks are
//!   min-reduced through cheap finish lower bounds before any exact
//!   estimate runs ([`Mapper::estimate_if_better`]);
//! * **ready ordering** — sort keys (bottom level, δ, gain) are computed
//!   once per task per round instead of inside the comparator;
//! * **placement search** — `earliest_k` selects the k earliest-available
//!   processors by partial selection (O(P)) in a reused scratch buffer
//!   instead of sorting all P in a fresh vector;
//! * **small DAGs** — below [`SMALL_DAG_TASKS`] tasks the memo tables and
//!   bound arenas never pay for themselves, so the driver skips their setup
//!   and evaluates `data_ready` directly (bit-identical: the memoized path
//!   computes the same max over the same arrivals).
//!
//! The engine is *behavior-preserving*: the pre-incremental driver is
//! retained verbatim (under `#[cfg(test)]` / the `reference` feature, see
//! [`reference`](crate::Scheduler)) and parity tests assert byte-identical
//! schedules between the two across all shipped policies.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use rats_dag::{bottom_levels, ReadyTracker, TaskGraph, TaskId};
use rats_platform::{Platform, ProcSet, SetMemo};
use rats_redist::{align_for_self_comm, RedistCache};

use crate::allocation::{allocate, reference_bandwidth, AllocParams, Allocation};
use crate::policy::{Hcpa, MapView, MappingDecision, MappingPolicy};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::strategy::{CandidatePolicy, MappingStrategy, SecondarySort};

/// Below this many tasks the driver skips memo/arena setup entirely and
/// evaluates estimates directly — at small sizes the setup dominates the
/// run (pinned by the `small_dag_fast_path_parity` test spanning the
/// threshold).
pub(crate) const SMALL_DAG_TASKS: usize = 64;

/// Two-step scheduler: allocation (step one) + mapping (step two).
///
/// Built with a platform, an [`AllocParams`] (HCPA by default — the
/// allocation procedure RATS builds on) and a mapping policy (plain HCPA
/// mapping by default). The policy is either one of the shipped
/// [`MappingStrategy`] variants or any external [`MappingPolicy`]
/// implementation:
///
/// ```
/// use rats_daggen::fft_dag;
/// use rats_model::CostParams;
/// use rats_platform::{ClusterSpec, Platform};
/// use rats_sched::{MappingStrategy, Scheduler, TimeCostPolicy};
///
/// let platform = Platform::from_spec(&ClusterSpec::grillon());
/// let dag = fft_dag(4, &CostParams::tiny(), 42);
/// // Closed enum and open trait forms of the same policy:
/// let a = Scheduler::new(&platform)
///     .strategy(MappingStrategy::rats_time_cost(0.5, true))
///     .schedule(&dag);
/// let b = Scheduler::new(&platform)
///     .policy(TimeCostPolicy::new(0.5, true).unwrap())
///     .schedule(&dag);
/// assert_eq!(a.makespan_estimate(), b.makespan_estimate());
/// ```
#[derive(Clone)]
pub struct Scheduler<'p> {
    platform: &'p Platform,
    alloc_params: AllocParams,
    policy: Arc<dyn MappingPolicy>,
    candidates: CandidatePolicy,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("platform", &self.platform.name())
            .field("alloc_params", &self.alloc_params)
            .field("policy", &self.policy.name())
            .field("candidates", &self.candidates)
            .finish()
    }
}

impl<'p> Scheduler<'p> {
    /// A scheduler with the paper's defaults (HCPA allocation, HCPA
    /// mapping).
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            alloc_params: AllocParams::default(),
            policy: Arc::new(Hcpa),
            candidates: CandidatePolicy::default(),
        }
    }

    /// Selects the allocation-step parameters.
    pub fn allocator(mut self, params: AllocParams) -> Self {
        self.alloc_params = params;
        self
    }

    /// Selects the allocation-step area policy.
    pub fn area_policy(mut self, policy: crate::allocation::AreaPolicy) -> Self {
        self.alloc_params.policy = policy;
        self
    }

    /// Selects the mapping policy from the closed strategy enum
    /// (backward-compatible short-hand for [`Self::policy`]).
    pub fn strategy(self, strategy: MappingStrategy) -> Self {
        self.policy(strategy)
    }

    /// Selects the mapping policy. Accepts any [`MappingPolicy`]
    /// implementation — the shipped ones, a [`MappingStrategy`] value, or a
    /// third-party type (by value or already boxed).
    pub fn policy(mut self, policy: impl Into<Box<dyn MappingPolicy>>) -> Self {
        self.policy = Arc::from(policy.into());
        self
    }

    /// Selects an already-shared mapping policy without re-boxing it
    /// (used by façades that hold one policy across many schedulers).
    pub fn shared_policy(mut self, policy: Arc<dyn MappingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The active policy's display name (recorded in provenance).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Selects the default-mapping candidate policy (see
    /// [`CandidatePolicy`]; the default reproduces the paper's HCPA).
    pub fn candidate_policy(mut self, candidates: CandidatePolicy) -> Self {
        self.candidates = candidates;
        self
    }

    /// Runs both steps and returns the schedule.
    pub fn schedule(&self, dag: &TaskGraph) -> Schedule {
        let alloc = {
            let _span = rats_telemetry::span(&crate::telemetry::ALLOC_SECONDS);
            allocate(dag, self.platform, self.alloc_params)
        };
        self.schedule_with_allocation(dag, &alloc)
    }

    /// Runs only the mapping step on a precomputed allocation — this is how
    /// the experiments compare HCPA and both RATS variants *on the same
    /// step-one output*, isolating the effect of the mapping policy.
    pub fn schedule_with_allocation(&self, dag: &TaskGraph, alloc: &Allocation) -> Schedule {
        Mapper::new(
            dag,
            self.platform,
            alloc.as_slice().to_vec(),
            &*self.policy,
            self.candidates,
        )
        .run()
    }

    /// Runs both steps with the retained **naive reference engine** (the
    /// pre-incremental driver: full readiness re-scans, comparator-time sort
    /// keys, matrix-materializing estimates). The parity oracle for the
    /// incremental engine and the "before" side of the mapping benches.
    #[cfg(any(test, feature = "reference"))]
    pub fn reference_schedule(&self, dag: &TaskGraph) -> Schedule {
        let alloc = allocate(dag, self.platform, self.alloc_params);
        self.reference_schedule_with_allocation(dag, &alloc)
    }

    /// Mapping-only counterpart of [`Self::reference_schedule`] (see
    /// [`Self::schedule_with_allocation`]).
    #[cfg(any(test, feature = "reference"))]
    pub fn reference_schedule_with_allocation(
        &self,
        dag: &TaskGraph,
        alloc: &Allocation,
    ) -> Schedule {
        Mapper::new(
            dag,
            self.platform,
            alloc.as_slice().to_vec(),
            &*self.policy,
            self.candidates,
        )
        .into_naive()
        .run()
    }
}

/// Dense struct-of-arrays per-task state of one mapping run. Grouping the
/// parallel arrays in one place keeps their headers on the same cache lines
/// and makes the per-task state explicit: every array is indexed by
/// `TaskId::index()`.
#[repr(align(64))]
pub(crate) struct TaskTable {
    /// Current allocation; adopting policies rewrite entries when
    /// packing/stretching.
    pub(crate) alloc: Vec<u32>,
    /// Static priority: bottom level under the initial allocation.
    pub(crate) bottom: Vec<f64>,
    /// Tasks whose processor set has already been adopted by one child.
    pub(crate) adopted: Vec<bool>,
    /// Estimated finish of every placed task (dense mirror of
    /// `entries[t].est_finish`): the bound walks touch one f64 per
    /// predecessor instead of dragging whole entries through the cache.
    pub(crate) finish: Vec<f64>,
    /// Execution time of every task at its *current* allocation size —
    /// the value `exec_time(t, alloc[t])` would compute. Refreshed by
    /// [`Mapper::place`] when an adopting decision rewrites the size.
    pub(crate) exec: Vec<f64>,
    /// First (lowest-rank) processor of every placed task's set. Together
    /// with `alloc` this reconstructs singleton placements — the common
    /// case — without touching the schedule-entry table.
    pub(crate) placed_first: Vec<u32>,
    pub(crate) entries: Vec<Option<ScheduleEntry>>,
}

/// The candidate-independent bound scalars of one task, computed once from
/// its (immutable) placed predecessors. Cheap to build — one predecessor
/// pass, no sorting, no arena traffic — because every estimate needs them,
/// including the many that the bounds then prune.
#[derive(Clone, Copy)]
struct BoundScalars {
    /// Max over predecessors of `finish + cost_upper_bound(bytes)` — an
    /// **upper** bound on `data_ready`. `NaN` = not computed yet.
    bound_max: f64,
    /// Max predecessor finish — an exact **lower** bound on `data_ready`
    /// (every arrival is at least its producer's finish). Seeds the arrival
    /// walk and the candidate finish lower bounds.
    finish_max: f64,
}

const UNBUILT: u32 = u32::MAX;

const UNBUILT_SCALARS: BoundScalars = BoundScalars {
    bound_max: f64::NAN,
    finish_max: 0.0,
};

/// Memoized estimate state of one mapping run. Interior-mutable because the
/// policies observe the driver through the read-only [`MapView`] while the
/// caches warm up underneath.
///
/// Everything here is sound for one reason: every predecessor of a ready
/// task is placed, and placed entries are immutable.
struct MapCache {
    /// Streaming redistribution estimates, memoized per (producer entry,
    /// payload, candidate).
    redist: RedistCache,
    /// `data_ready` per task, keyed by candidate set (slot = consumer
    /// task).
    data_ready: SetMemo<f64>,
    /// Per-task CSR range (`bstart`, `blen`) into the `bitems` arena —
    /// built later and more rarely than the scalars, on the first estimate
    /// the scalar bound does *not* short-circuit. `bstart == u32::MAX` =
    /// not built.
    bstart: Vec<u32>,
    blen: Vec<u32>,
    /// `(arrival bound, pred, payload bytes)` triples of all built tasks,
    /// descending by bound per task, bump-appended back to back (capacity =
    /// edge count, so steady-state fills never reallocate). Walking a
    /// task's range in order allows breaking at the first bound that cannot
    /// beat the running max — every later one is smaller still.
    bitems: Vec<(f64, u32, f64)>,
}

/// Tournament tree over processor ready times: O(1) argmin by
/// `(ready, id)` with O(log P) updates, replacing the O(P) scan
/// `earliest_k` paid per singleton placement. Ready times only grow, so
/// the tree is update-only — no removals.
struct ArgminTree {
    /// Leaf count (next power of two ≥ P); leaves at `tree[leaves..]` hold
    /// proc ids (`u32::MAX` pads), internal nodes the winning leaf's id.
    leaves: usize,
    tree: Vec<u32>,
}

impl ArgminTree {
    fn new(p: u32) -> Self {
        let leaves = (p.max(1) as usize).next_power_of_two();
        let mut tree = vec![u32::MAX; 2 * leaves];
        for i in 0..p as usize {
            tree[leaves + i] = i as u32;
        }
        // All ready times start equal (0), so the lowest id wins every
        // match — seed internal nodes with the left child.
        for i in (1..leaves).rev() {
            tree[i] = tree[2 * i];
        }
        Self { leaves, tree }
    }

    /// `(ready, id)`-minimum of two entries; `u32::MAX` always loses.
    #[inline]
    fn win(a: u32, b: u32, ready: &[f64]) -> u32 {
        if b == u32::MAX {
            return a;
        }
        if a == u32::MAX {
            return b;
        }
        let (ra, rb) = (ready[a as usize], ready[b as usize]);
        // Total order on (ready, id): ids are distinct, times finite.
        if rb < ra || (rb == ra && b < a) {
            b
        } else {
            a
        }
    }

    /// Re-plays proc `p`'s matches after its ready time grew.
    fn update(&mut self, p: u32, ready: &[f64]) {
        let mut i = (self.leaves + p as usize) / 2;
        while i >= 1 {
            self.tree[i] = Self::win(self.tree[2 * i], self.tree[2 * i + 1], ready);
            i /= 2;
        }
    }

    /// The processor with the least `(ready, id)`.
    #[inline]
    fn min(&self) -> u32 {
        self.tree[1]
    }
}

/// Reused scratch buffers of one mapping run — cleared and refilled per
/// use, never reallocated in steady state. Split into independent
/// `RefCell`s because the buffers are live across nested `&self` calls
/// (e.g. the candidate block while each candidate is estimated).
struct Scratch {
    /// Processor id staging for `earliest_k` / `pred_candidate`.
    procs: RefCell<Vec<u32>>,
    /// Second staging buffer (`pred_candidate` pads from non-members).
    procs2: RefCell<Vec<u32>>,
    /// The candidate block of one `default_mapping` evaluation, with each
    /// candidate's finish lower bound.
    cands: RefCell<Vec<(ProcSet, f64)>>,
    /// Ready-list sort keys of one round.
    keyed: RefCell<Vec<(TaskId, f64)>>,
    /// Singleton adoption candidates already estimated for the task in
    /// `seen_task` (id + 1): a later predecessor placed on the same single
    /// processor yields the identical estimate, which can never *strictly*
    /// beat the incumbent the first one set — skipping it is a no-op (the
    /// policy loops replace only on `finish < best - 1e-15`).
    seen_task: std::cell::Cell<u32>,
    seen_firsts: RefCell<Vec<u32>>,
    /// Same idea for the `default_mapping` candidate block (its own scope:
    /// the adoption loops legitimately re-estimate sets the block already
    /// evaluated, so the two seen-lists must not bleed into each other).
    seen_cands: RefCell<Vec<u32>>,
}

/// The mapping driver: shared list-scheduling state and mechanics, with the
/// adopt/pack/stretch verdicts delegated to a [`MappingPolicy`].
pub(crate) struct Mapper<'a> {
    pub(crate) dag: &'a TaskGraph,
    pub(crate) platform: &'a Platform,
    policy: &'a dyn MappingPolicy,
    candidates: CandidatePolicy,
    /// Struct-of-arrays per-task state.
    /// `(seq_time, alpha)` of every task, unpacked from [`rats_model::TaskCost`]
    /// into one dense array so `exec_time` needs no task-node lookup.
    costs: Vec<(f64, f64)>,
    pub(crate) tasks: TaskTable,
    /// Next free time of every processor.
    pub(crate) proc_ready: Vec<f64>,
    /// Argmin-by-`(ready, id)` index over `proc_ready`, kept in step by
    /// [`Self::place`].
    proc_argmin: ArgminTree,
    /// Per-task bound scalars, computed on the first estimate of the task.
    /// `Cell`s rather than a `RefCell` table: the scalars gate *every*
    /// candidate estimate, and most of those are pruned right here — the
    /// fast path must not pay a borrow-flag round trip.
    bound: Vec<Cell<BoundScalars>>,
    /// `(latency, inverse capacity)` of the redistribution upper bound,
    /// copied out of the estimator so bound passes touch no cache.
    ub: (f64, f64),
    order: Vec<TaskId>,
    cache: RefCell<MapCache>,
    scratch: Scratch,
    /// Small-DAG fast path: skip memo/bound machinery entirely.
    small: bool,
    /// Single-estimate policy ([`MappingPolicy::repeats_estimates`] is
    /// `false`): every task is estimated once, so cached bounds cannot
    /// amortize — estimates run as one fused pass over the predecessors.
    single: bool,
    /// `data_ready` memoization on (see
    /// [`MappingPolicy::memoize_data_ready`]).
    memo: bool,
    /// Per-run telemetry tally (plain cells, flushed once per run —
    /// observational only, never read back by the engine).
    tally: crate::telemetry::RunTally,
    /// Run the retained pre-incremental engine instead (parity oracle).
    #[cfg(any(test, feature = "reference"))]
    pub(crate) naive: bool,
}

impl<'a> Mapper<'a> {
    fn new(
        dag: &'a TaskGraph,
        platform: &'a Platform,
        alloc: Vec<u32>,
        policy: &'a dyn MappingPolicy,
        candidates: CandidatePolicy,
    ) -> Self {
        let gflops = platform.gflops();
        let beta = reference_bandwidth(platform);
        // Unpack the cost model once: `time(p) = seq_time · (α + (1−α)/p)`,
        // reproduced operation-for-operation by `exec_time`, so the dense
        // table is bit-identical to going through `TaskCost`.
        let costs: Vec<(f64, f64)> = dag
            .task_ids()
            .map(|t| {
                let c = &dag.task(t).cost;
                (c.seq_time(gflops), c.alpha())
            })
            .collect();
        let times: Vec<f64> = costs
            .iter()
            .zip(alloc.as_slice())
            .map(|(&(seq, alpha), &p)| seq * (alpha + (1.0 - alpha) / f64::from(p)))
            .collect();
        let bottom = bottom_levels(dag, &times, |_, bytes| bytes / beta);
        let n = dag.num_tasks();
        let small = n < SMALL_DAG_TASKS;
        let single = !policy.repeats_estimates();
        let memo = !small && !single && policy.memoize_data_ready();
        Self {
            dag,
            platform,
            policy,
            candidates,
            costs,
            tasks: TaskTable {
                alloc,
                bottom,
                adopted: vec![false; n],
                finish: vec![0.0; n],
                exec: times,
                placed_first: vec![u32::MAX; n],
                entries: vec![None; n],
            },
            proc_ready: vec![0.0; platform.num_procs() as usize],
            proc_argmin: ArgminTree::new(platform.num_procs()),
            bound: if small || single {
                Vec::new()
            } else {
                vec![Cell::new(UNBUILT_SCALARS); n]
            },
            ub: RedistCache::new(platform, 0).upper_bound_coeffs(),
            order: Vec::with_capacity(n),
            cache: RefCell::new(MapCache {
                // One slot per task: slot t caches arrivals of data produced
                // by placed task t, shared by all of t's consumers.
                redist: RedistCache::new(platform, n),
                data_ready: SetMemo::new(if memo { n } else { 0 }),
                bstart: if small || single {
                    Vec::new()
                } else {
                    vec![UNBUILT; n]
                },
                blen: if small || single {
                    Vec::new()
                } else {
                    vec![0; n]
                },
                bitems: if small || single {
                    Vec::new()
                } else {
                    Vec::with_capacity(dag.num_edges())
                },
            }),
            scratch: Scratch {
                procs: RefCell::new(Vec::new()),
                procs2: RefCell::new(Vec::new()),
                cands: RefCell::new(Vec::new()),
                keyed: RefCell::new(Vec::new()),
                seen_task: std::cell::Cell::new(0),
                seen_firsts: RefCell::new(Vec::new()),
                seen_cands: RefCell::new(Vec::new()),
            },
            small,
            single,
            memo,
            tally: crate::telemetry::RunTally::default(),
            #[cfg(any(test, feature = "reference"))]
            naive: false,
        }
    }

    /// Switches this driver to the retained naive reference engine.
    #[cfg(any(test, feature = "reference"))]
    fn into_naive(mut self) -> Self {
        self.naive = true;
        self
    }

    /// The policy's secondary ready-list sort (for the reference engine,
    /// whose sort lives in another module).
    #[cfg(any(test, feature = "reference"))]
    pub(crate) fn policy_secondary_sort(&self) -> SecondarySort {
        self.policy.secondary_sort()
    }

    #[inline]
    pub(crate) fn exec_time(&self, t: TaskId, p: u32) -> f64 {
        debug_assert!(p > 0, "a task must run on at least one processor");
        let (seq, alpha) = self.costs[t.index()];
        seq * (alpha + (1.0 - alpha) / f64::from(p))
    }

    #[inline]
    pub(crate) fn work(&self, t: TaskId, p: u32) -> f64 {
        self.exec_time(t, p) * f64::from(p)
    }

    /// `exec_time(t, p)`, skipping the arithmetic when `p` is the task's
    /// current allocation size (the overwhelmingly common candidate size).
    #[inline]
    fn exec_on(&self, t: TaskId, p: u32) -> f64 {
        if p == self.tasks.alloc[t.index()] {
            self.tasks.exec[t.index()]
        } else {
            self.exec_time(t, p)
        }
    }

    pub(crate) fn entry_of(&self, t: TaskId) -> &ScheduleEntry {
        self.tasks.entries[t.index()]
            .as_ref()
            .expect("predecessors are mapped before their successors")
    }

    /// Max ready time over a candidate's processors.
    #[inline]
    fn proc_avail(&self, procs: &ProcSet) -> f64 {
        let mut avail = 0.0f64;
        for &p in procs.as_slice() {
            avail = avail.max(self.proc_ready[p as usize]);
        }
        avail
    }

    /// The task's bound scalars, computed on first use: one cheap pass over
    /// the predecessors, no arena traffic.
    fn bound_scalars(&self, t: TaskId) -> BoundScalars {
        let cell = &self.bound[t.index()];
        let sc = cell.get();
        if !sc.bound_max.is_nan() {
            return sc;
        }
        let (lat, inv) = self.ub;
        let mut bound_max = 0.0f64;
        let mut finish_max = 0.0f64;
        for a in self.dag.preds_flat(t) {
            let finish = self.tasks.finish[a.task.index()];
            finish_max = finish_max.max(finish);
            // Mirrors `RedistCache::cost_upper_bound` operation for
            // operation (see `upper_bound_coeffs`).
            bound_max = bound_max.max(finish + (lat + a.bytes * inv));
        }
        let sc = BoundScalars {
            bound_max,
            finish_max,
        };
        cell.set(sc);
        sc
    }

    /// The task's CSR bound-item range, built on the first estimate the
    /// scalar bound does not short-circuit: one predecessor pass bump-fills
    /// the arena, then the range is sorted descending by arrival bound.
    fn bound_items(&self, cache: &mut MapCache, t: TaskId) -> (u32, u32) {
        let start = cache.bstart[t.index()];
        if start != UNBUILT {
            return (start, cache.blen[t.index()]);
        }
        let start = cache.bitems.len();
        for a in self.dag.preds_flat(t) {
            let bound = self.tasks.finish[a.task.index()] + cache.redist.cost_upper_bound(a.bytes);
            cache.bitems.push((bound, a.task.index() as u32, a.bytes));
        }
        // Tiny ranges are the common case; a handwritten swap beats the
        // general small-sort machinery there.
        let range = &mut cache.bitems[start..];
        match range.len() {
            0 | 1 => {}
            2 => {
                if range[0].0 < range[1].0 {
                    range.swap(0, 1);
                }
            }
            _ => range.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("bounds are finite")),
        }
        let len = (cache.bitems.len() - start) as u32;
        cache.bstart[t.index()] = start as u32;
        cache.blen[t.index()] = len;
        (start as u32, len)
    }

    /// The time every input of `t` has arrived on the candidate set `procs`
    /// (contention-free streaming estimates, memoized per task and
    /// candidate).
    ///
    /// `data_ready` is a **max** over predecessor arrivals, and `f64::max`
    /// over non-negative values is exact — so predecessors whose *sound
    /// upper bound* (finish + [`RedistCache::cost_upper_bound`]) cannot
    /// exceed the running max contribute nothing, bit-identically. The
    /// bounds are candidate-independent, so they are computed and sorted
    /// descending once per task; each evaluation walks them in order and
    /// stops at the first bound the running max already dominates.
    fn data_ready(
        &self,
        cache: &mut MapCache,
        t: TaskId,
        procs: &ProcSet,
        sc: BoundScalars,
    ) -> f64 {
        if self.memo {
            if let Some(v) = cache.data_ready.get(t.index(), procs, |_| true) {
                crate::telemetry::bump(&self.tally.memo_hits);
                return v;
            }
            crate::telemetry::bump(&self.tally.memo_misses);
        }
        let (start, len) = self.bound_items(cache, t);
        let MapCache {
            redist,
            data_ready,
            bitems,
            ..
        } = cache;
        // Seeding the running max with the latest predecessor finish only
        // removes evaluations whose arrival could not have raised the max —
        // the result is bit-identical.
        let mut ready = sc.finish_max;
        for &(bound, pred, bytes) in &bitems[start as usize..(start + len) as usize] {
            if bound <= ready {
                break; // every later bound is smaller still
            }
            // Singleton producers — the common case — are reconstructed
            // from the dense columns; only wider sets load the entry.
            let arrival = if self.tasks.alloc[pred as usize] == 1 {
                let first = self.tasks.placed_first[pred as usize];
                if procs.len() == 1 && procs.as_slice()[0] == first {
                    // Self-communication only — exactly zero cost (see the
                    // fused walk in `estimate_core`).
                    self.tasks.finish[pred as usize]
                } else {
                    let src = ProcSet::from_slice(&[first]);
                    redist.arrival(
                        pred as usize,
                        bytes,
                        &src,
                        self.tasks.finish[pred as usize],
                        procs,
                        self.platform,
                    )
                }
            } else {
                let pe = self.tasks.entries[pred as usize]
                    .as_ref()
                    .expect("predecessors are mapped before their successors");
                redist.arrival(
                    pred as usize,
                    bytes,
                    &pe.procs,
                    pe.est_finish,
                    procs,
                    self.platform,
                )
            };
            ready = ready.max(arrival);
        }
        if self.memo {
            data_ready.insert(t.index(), procs, ready);
        }
        ready
    }

    /// Small-DAG `data_ready`: the same max over the same arrivals, without
    /// memo tables or bound arenas (their setup dominates at a few dozen
    /// tasks). Bit-identical because `f64::max` over a fixed multiset of
    /// values is order-independent and exact.
    fn data_ready_small(&self, cache: &mut MapCache, t: TaskId, procs: &ProcSet) -> f64 {
        let mut ready = 0.0f64;
        for a in self.dag.preds_flat(t) {
            let pe = self.tasks.entries[a.task.index()]
                .as_ref()
                .expect("predecessors are mapped before their successors");
            let arrival = cache.redist.arrival(
                a.task.index(),
                a.bytes,
                &pe.procs,
                pe.est_finish,
                procs,
                self.platform,
            );
            ready = ready.max(arrival);
        }
        ready
    }

    /// Estimated (start, finish) of `t` on the candidate set `procs`:
    /// the task starts once every input redistribution has arrived
    /// (contention-free estimates) and all processors are free.
    ///
    /// When the processors only come free at or after the task-level
    /// `data_ready` upper bound, the start is the processor availability
    /// *exactly* and no redistribution estimate needs to be evaluated.
    pub(crate) fn estimate_on(&self, t: TaskId, procs: &ProcSet) -> (f64, f64) {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.estimate_on_naive(t, procs);
        }
        self.estimate_core(t, procs, None)
            .expect("estimate without a beat bound never prunes")
    }

    /// [`Self::estimate_on`], short-circuited through a sound finish lower
    /// bound: returns `None` — without evaluating any redistribution
    /// estimate — when the candidate provably cannot satisfy
    /// `finish < beat - 1e-15`, the strict improvement test every policy
    /// loop applies against its current best. The bound is
    /// `max(proc_avail, max predecessor finish) + exec_time`, which never
    /// exceeds the exact finish, so pruned candidates are exactly those the
    /// caller would have rejected — selection is bit-identical.
    ///
    /// In naive (reference) mode every candidate is evaluated exactly.
    /// Estimate adopting `pred`'s placed processor set for `t`.
    ///
    /// `None` means the candidate provably cannot *strictly* beat `beat` —
    /// either by the [`Self::estimate_if_better`] bound pruning, or because
    /// an identical candidate set was already estimated for `t` (its result
    /// is already the incumbent or lost to it; an equal finish never
    /// replaces). Singleton sets are reconstructed from the dense task
    /// table — the overwhelmingly common case — so the candidate loops stay
    /// off the schedule-entry table.
    pub(crate) fn estimate_adoption(
        &self,
        t: TaskId,
        pred: TaskId,
        beat: Option<f64>,
    ) -> Option<(ProcSet, f64, f64)> {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            let procs = self.entry_of(pred).procs.clone();
            let (start, finish) = self.estimate_on_naive(t, &procs);
            return Some((procs, start, finish));
        }
        let np = self.tasks.alloc[pred.index()];
        if let Some(beat) = beat {
            // The predecessor's processors stay busy until it finishes, so
            // the start is at least its finish; and every placement of `t`
            // starts no earlier than its latest predecessor finish
            // (`finish_max`, already cached by the default estimate).
            // Prune before touching the set or the seen-list (sound for
            // the same reason as the scalar bound in `estimate_core`;
            // later duplicates face an equal-or-smaller `beat` and prune
            // identically).
            let mut lb = self.tasks.finish[pred.index()];
            if !self.small && !self.single {
                let sc = self.bound[t.index()].get();
                if !sc.bound_max.is_nan() {
                    lb = lb.max(sc.finish_max);
                }
            }
            if lb + self.exec_on(t, np) >= beat - 1e-15 {
                crate::telemetry::bump(&self.tally.pruned);
                return None;
            }
        }
        let procs = if np == 1 {
            let first = self.tasks.placed_first[pred.index()];
            // Duplicate singleton candidates for the same task are no-ops:
            // the estimate is identical to the first occurrence's, and equal
            // finishes never replace the incumbent.
            let marker = t.index() as u32 + 1;
            let mut seen = self.scratch.seen_firsts.borrow_mut();
            if self.scratch.seen_task.get() != marker {
                self.scratch.seen_task.set(marker);
                seen.clear();
            }
            if seen.contains(&first) {
                crate::telemetry::bump(&self.tally.pruned);
                return None;
            }
            seen.push(first);
            ProcSet::from_slice(&[first])
        } else {
            self.entry_of(pred).procs.clone()
        };
        let (start, finish) = self.estimate_core(t, &procs, beat)?;
        Some((procs, start, finish))
    }

    pub(crate) fn estimate_if_better(
        &self,
        t: TaskId,
        procs: &ProcSet,
        beat: Option<f64>,
    ) -> Option<(f64, f64)> {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return Some(self.estimate_on_naive(t, procs));
        }
        self.estimate_core(t, procs, beat)
    }

    /// One estimate under one cache borrow: availability and execution time
    /// are computed once and shared between the lower-bound test and the
    /// exact estimate it guards.
    fn estimate_core(&self, t: TaskId, procs: &ProcSet, beat: Option<f64>) -> Option<(f64, f64)> {
        let result = self.estimate_core_inner(t, procs, beat);
        crate::telemetry::bump(match result {
            Some(_) => &self.tally.estimates,
            None => &self.tally.pruned,
        });
        result
    }

    fn estimate_core_inner(
        &self,
        t: TaskId,
        procs: &ProcSet,
        beat: Option<f64>,
    ) -> Option<(f64, f64)> {
        let proc_avail = self.proc_avail(procs);
        let exec = self.exec_on(t, procs.len());
        if self.dag.in_degree(t) == 0 {
            // Entry task: `data_ready` is 0, the start is the availability.
            return Some((proc_avail, proc_avail + exec));
        }
        if self.small {
            // Small DAGs skip bounds too: estimates are few and cheap.
            let cache = &mut *self.cache.borrow_mut();
            let start = self.data_ready_small(cache, t, procs).max(proc_avail);
            return Some((start, start + exec));
        }
        if self.single {
            // Single-estimate policies visit each task once, so neither the
            // cached bound scalars nor the sorted bound arena can amortize.
            // One fused pass folds availability, predecessor finishes and
            // the arrivals that can still raise the running max. Skipping
            // an arrival whose upper bound cannot exceed the running start
            // drops only values that cannot change it, and `f64::max` over
            // non-negative values is exact and order-independent — the
            // result is bit-identical to the two-pass scheme.
            let cache = &mut *self.cache.borrow_mut();
            let redist = &mut cache.redist;
            let mut start = proc_avail;
            for a in self.dag.preds_flat(t) {
                let pred = a.task.index();
                let finish = self.tasks.finish[pred];
                start = start.max(finish);
                if finish + redist.cost_upper_bound(a.bytes) <= start {
                    continue;
                }
                let arrival = if self.tasks.alloc[pred] == 1 {
                    let first = self.tasks.placed_first[pred];
                    if procs.len() == 1 && procs.as_slice()[0] == first {
                        // Same single processor: pure self-communication,
                        // which the estimator prices at exactly zero — the
                        // arrival is the producer's finish.
                        finish
                    } else {
                        let src = ProcSet::from_slice(&[first]);
                        redist.arrival(pred, a.bytes, &src, finish, procs, self.platform)
                    }
                } else {
                    let pe = self.tasks.entries[pred]
                        .as_ref()
                        .expect("predecessors are mapped before their successors");
                    redist.arrival(
                        pred,
                        a.bytes,
                        &pe.procs,
                        pe.est_finish,
                        procs,
                        self.platform,
                    )
                };
                start = start.max(arrival);
            }
            if let Some(beat) = beat {
                if start + exec >= beat - 1e-15 {
                    return None;
                }
            }
            return Some((start, start + exec));
        }
        let sc = self.bound_scalars(t);
        if let Some(beat) = beat {
            // Sound: the start is at least max(proc_avail, finish_max) in
            // both estimate branches (`data_ready` never undercuts the
            // latest predecessor finish), and the execution time is exact.
            if proc_avail.max(sc.finish_max) + exec >= beat - 1e-15 {
                return None;
            }
        }
        let start = if proc_avail >= sc.bound_max {
            // No arrival can land after the processors come free: the
            // start is the availability *exactly*, no estimate needed.
            proc_avail
        } else {
            let cache = &mut *self.cache.borrow_mut();
            self.data_ready(cache, t, procs, sc).max(proc_avail)
        };
        Some((start, start + exec))
    }

    /// A sound lower bound on `estimate_on(t, procs).1` (see the bound
    /// argument in [`Self::estimate_core`]); used to min-reduce candidate
    /// blocks before any exact estimate runs.
    fn finish_lower_bound(&self, t: TaskId, procs: &ProcSet) -> f64 {
        let proc_avail = self.proc_avail(procs);
        let exec = self.exec_on(t, procs.len());
        if self.small || self.dag.in_degree(t) == 0 {
            return proc_avail + exec;
        }
        let sc = self.bound_scalars(t);
        proc_avail.max(sc.finish_max) + exec
    }

    /// The heaviest input edge's predecessor (most data to move) — the
    /// parent worth aligning a fresh candidate set against. Ties on equal
    /// byte counts deterministically go to the predecessor with the
    /// **lowest** task id, consistent with `DeltaPolicy`'s tie-break
    /// (pinned by the `heaviest_pred_tie_breaks_to_lowest_id` test).
    pub(crate) fn heaviest_pred(&self, t: TaskId) -> Option<TaskId> {
        self.dag
            .preds_flat(t)
            .iter()
            .max_by(|a, b| {
                // More bytes wins; on equal bytes the *lower* id must
                // compare greater, hence the reversed id comparison.
                a.bytes
                    .partial_cmp(&b.bytes)
                    .expect("edge weights are finite")
                    .then_with(|| b.task.index().cmp(&a.task.index()))
            })
            .map(|a| a.task)
    }

    /// The `k` earliest-available processors (ties by id), rank-ordered for
    /// maximal self communication with the heaviest parent. The k-smallest
    /// selection is O(P) partial selection in a reused scratch buffer, not
    /// a full sort; the selected set is identical because the
    /// (ready time, id) order is total.
    fn earliest_k(&self, t: TaskId, k: u32) -> ProcSet {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.earliest_k_naive(t, k);
        }
        if k == 1 && self.platform.num_procs() > 0 {
            // Argmin by (ready time, id) — the full selection machinery and
            // the (trivial) singleton alignment collapse to one O(1) read
            // of the maintained tournament tree.
            return ProcSet::from_slice(&[self.proc_argmin.min()]);
        }
        let set = {
            let mut procs = self.scratch.procs.borrow_mut();
            procs.clear();
            procs.extend(0..self.platform.num_procs());
            let k = (k as usize).min(procs.len());
            if k < procs.len() {
                procs.select_nth_unstable_by(k, |&a, &b| {
                    self.proc_ready[a as usize]
                        .partial_cmp(&self.proc_ready[b as usize])
                        .expect("ready times are finite")
                        .then(a.cmp(&b))
                });
            }
            procs.truncate(k);
            procs.sort_unstable(); // deterministic rank order before alignment
            ProcSet::from_slice(&procs)
        };
        match self.heaviest_pred(t) {
            Some(p) => align_for_self_comm(&self.entry_of(p).procs, &set),
            None => set,
        }
    }

    /// A candidate derived from predecessor `pred`'s set, resized to `k`:
    /// its prefix when shrinking, or the full set padded with the earliest
    /// other processors when growing.
    fn pred_candidate(&self, pred: TaskId, k: u32) -> ProcSet {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.pred_candidate_naive(pred, k);
        }
        if k == 1 {
            // `first_k(1)` of any non-empty placed set is its first member,
            // which the dense `placed_first` column already holds.
            return ProcSet::from_slice(&[self.tasks.placed_first[pred.index()]]);
        }
        let pp = &self.entry_of(pred).procs;
        if pp.len() >= k {
            pp.first_k(k)
        } else {
            let mut procs = self.scratch.procs.borrow_mut();
            let mut others = self.scratch.procs2.borrow_mut();
            procs.clear();
            procs.extend_from_slice(pp.as_slice());
            others.clear();
            others.extend((0..self.platform.num_procs()).filter(|p| !pp.contains(*p)));
            let cmp = |a: &u32, b: &u32| {
                self.proc_ready[*a as usize]
                    .partial_cmp(&self.proc_ready[*b as usize])
                    .expect("ready times are finite")
                    .then(a.cmp(b))
            };
            let need = (k - pp.len()) as usize;
            if need < others.len() {
                others.select_nth_unstable_by(need, cmp);
                others.truncate(need);
            }
            // Padding order is rank order: restore the (ready, id) order a
            // full sort would have produced among the selected few.
            others.sort_by(cmp);
            procs.extend_from_slice(&others);
            ProcSet::from_slice(&procs)
        }
    }

    /// Default HCPA mapping: evaluate the candidate set(s) dictated by the
    /// [`CandidatePolicy`], pick the earliest estimated finish.
    ///
    /// With parent-aware candidates, the whole block's finish lower bounds
    /// are computed first; candidates whose bound cannot beat the running
    /// best skip the exact estimator entirely (a batched min-reduction —
    /// bit-identical, because a pruned candidate's exact finish could never
    /// have won the tolerance comparison either).
    pub(crate) fn default_mapping(&self, t: TaskId) -> (ProcSet, f64, f64) {
        let k = self.tasks.alloc[t.index()];
        let first = self.earliest_k(t, k);
        if self.candidates == CandidatePolicy::EarliestK {
            let (s, f) = self.estimate_on(t, &first);
            return (first, s, f);
        }
        #[cfg(any(test, feature = "reference"))]
        let prune = !self.naive;
        #[cfg(not(any(test, feature = "reference")))]
        let prune = true;
        let mut cands = self.scratch.cands.borrow_mut();
        cands.clear();
        let lb = |c: &ProcSet| {
            if prune {
                self.finish_lower_bound(t, c)
            } else {
                f64::NEG_INFINITY
            }
        };
        // Singleton allocations (the common case) draw every predecessor
        // candidate from one processor id, so duplicates abound — and each
        // duplicate that is not lower-bound-pruned pays a full exact
        // estimate. Identical sets yield identical estimates and the
        // selection below replaces only on strict improvement, so skipping
        // repeats is a no-op on the outcome.
        let mut seen = self.scratch.seen_cands.borrow_mut();
        let dedup = prune && k == 1;
        if dedup {
            seen.clear();
            seen.push(first.as_slice()[0]);
        }
        let b = lb(&first);
        cands.push((first, b));
        for a in self.dag.preds_flat(t) {
            if dedup {
                // `pred_candidate(pred, 1)` is exactly the singleton of the
                // predecessor's first placed processor.
                let p0 = self.tasks.placed_first[a.task.index()];
                if seen.contains(&p0) {
                    continue;
                }
                seen.push(p0);
                let c = ProcSet::from_slice(&[p0]);
                let b = lb(&c);
                cands.push((c, b));
                continue;
            }
            let c = self.pred_candidate(a.task, k);
            let b = lb(&c);
            cands.push((c, b));
        }
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, (c, lb_f)) in cands.iter().enumerate() {
            if let Some((_, bs, bf)) = best {
                // A candidate whose finish provably exceeds `bf + 1e-15`
                // fails both clauses of the tolerance comparison below.
                if *lb_f > bf + 1e-15 {
                    continue;
                }
                let (s, f) = self.estimate_on(t, c);
                if f < bf - 1e-15 || (f <= bf + 1e-15 && s < bs - 1e-15) {
                    best = Some((i, s, f));
                }
            } else {
                let (s, f) = self.estimate_on(t, c);
                best = Some((i, s, f));
            }
        }
        let (i, s, f) = best.expect("at least the earliest-k candidate exists");
        (std::mem::replace(&mut cands[i].0, ProcSet::empty()), s, f)
    }

    /// δ(t) for the ready-list secondary sort: the smallest allocation
    /// modification that would adopt any predecessor's set.
    pub(crate) fn delta_key(&self, t: TaskId) -> f64 {
        let k = self.tasks.alloc[t.index()];
        let mut best = f64::INFINITY;
        for a in self.dag.preds_flat(t) {
            if self.tasks.adopted[a.task.index()] {
                continue;
            }
            // A placed task's `alloc` is its placed set size (see `place`).
            let np = self.tasks.alloc[a.task.index()];
            best = best.min(f64::from(np.abs_diff(k)));
        }
        best
    }

    /// gain(t) for the ready-list secondary sort: the largest execution-time
    /// reduction any predecessor's set offers.
    pub(crate) fn gain_key(&self, t: TaskId) -> f64 {
        let own = self.tasks.exec[t.index()];
        let mut best = f64::NEG_INFINITY;
        // Runs of predecessors share the same allocation size (most are
        // sequential); one remembered `exec_time` covers them all.
        let mut last: (u32, f64) = (0, 0.0);
        for a in self.dag.preds_flat(t) {
            if self.tasks.adopted[a.task.index()] {
                continue;
            }
            let np = self.tasks.alloc[a.task.index()];
            if np != last.0 {
                last = (np, self.exec_time(t, np));
            }
            best = best.max(own - last.1);
        }
        best
    }

    /// Sorts ready tasks by decreasing bottom level, then by the policy's
    /// stable secondary criterion, then by id (full determinism). Secondary
    /// keys are computed once per task up front into a reused buffer — they
    /// are pure functions of the pre-round state, so hoisting them out of
    /// the comparator changes nothing but the cost.
    fn sort_ready(&self, ready: &mut [TaskId]) {
        let secondary = self.policy.secondary_sort();
        // Both comparators end in the task-id tiebreak, i.e. they are total
        // orders — an unstable sort produces the identical permutation
        // without the stable sort's scratch allocation.
        if secondary == SecondarySort::None {
            ready.sort_unstable_by(|&a, &b| {
                self.tasks.bottom[b.index()]
                    .partial_cmp(&self.tasks.bottom[a.index()])
                    .expect("bottom levels are finite")
                    .then(a.index().cmp(&b.index()))
            });
            return;
        }
        let mut keyed = self.scratch.keyed.borrow_mut();
        keyed.clear();
        keyed.extend(ready.iter().map(|&t| {
            let key = match secondary {
                SecondarySort::None => unreachable!("handled above"),
                SecondarySort::DeltaAscending => self.delta_key(t),
                SecondarySort::GainDescending => self.gain_key(t),
            };
            (t, key)
        }));
        keyed.sort_unstable_by(|&(a, ka), &(b, kb)| {
            let bl = self.tasks.bottom[b.index()]
                .partial_cmp(&self.tasks.bottom[a.index()])
                .expect("bottom levels are finite");
            let sec = match secondary {
                SecondarySort::None => unreachable!("handled above"),
                SecondarySort::DeltaAscending => {
                    ka.partial_cmp(&kb).expect("delta keys are not NaN")
                }
                SecondarySort::GainDescending => {
                    kb.partial_cmp(&ka).expect("gain keys are not NaN")
                }
            };
            bl.then(sec).then(a.index().cmp(&b.index()))
        });
        for (slot, &(t, _)) in ready.iter_mut().zip(keyed.iter()) {
            *slot = t;
        }
    }

    pub(crate) fn place(&mut self, t: TaskId, procs: ProcSet, start: f64, finish: f64) {
        for &p in procs.as_slice() {
            self.proc_ready[p as usize] = finish;
            self.proc_argmin.update(p, &self.proc_ready);
            crate::telemetry::bump(&self.tally.argmin_updates);
        }
        if procs.len() != self.tasks.alloc[t.index()] {
            // An adopting decision rewrote the allocation size: keep the
            // cached execution time in step.
            self.tasks.exec[t.index()] = self.exec_time(t, procs.len());
            self.tasks.alloc[t.index()] = procs.len();
        }
        self.tasks.finish[t.index()] = finish;
        self.tasks.placed_first[t.index()] = procs.as_slice()[0];
        self.tasks.entries[t.index()] = Some(ScheduleEntry {
            task: t,
            procs,
            est_start: start,
            est_finish: finish,
        });
        self.order.push(t);
    }

    /// One policy verdict, validated and resolved to a placement.
    pub(crate) fn decide(&mut self, t: TaskId) -> (ProcSet, f64, f64) {
        let decision = self.policy.decide(&MapView { mapper: self }, t);
        match decision {
            MappingDecision::Adopt {
                from_pred,
                placement,
            } => {
                // Hard check even in release: external policies are
                // exactly the callers that can get this wrong, and
                // a silent double-adoption corrupts the schedule.
                // O(in-degree), negligible next to the estimates.
                assert!(
                    self.dag.predecessors(t).any(|(p, _)| p == from_pred)
                        && !self.tasks.adopted[from_pred.index()],
                    "policy {:?} adopted {from_pred:?} for {t:?}, which is not \
                     an unconsumed predecessor",
                    self.policy.name()
                );
                self.tasks.adopted[from_pred.index()] = true;
                (placement.procs, placement.start, placement.finish)
            }
            MappingDecision::Default(Some(p)) => (p.procs, p.start, p.finish),
            MappingDecision::Default(None) => self.default_mapping(t),
        }
    }

    /// Algorithm 1: repeatedly sort and drain the ready list, letting the
    /// policy adopt predecessor allocations where its conditions hold.
    ///
    /// Estimates are evaluated lazily at pop time, which subsumes the
    /// algorithm's "recompute … only if they have been computed using this
    /// parent allocation" bookkeeping: every decision sees the platform
    /// state left by all previously mapped tasks.
    ///
    /// Rounds are event-driven: the tasks that became ready while draining
    /// round *r* form round *r + 1*'s batch (see
    /// [`rats_dag::ReadyTracker`]) — exactly the set a full readiness
    /// re-scan would find, because a round drains every ready task. One
    /// batch buffer ping-pongs with the tracker across all rounds.
    fn run(mut self) -> Schedule {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.run_naive();
        }
        let _map_span = rats_telemetry::span(&crate::telemetry::MAP_SECONDS);
        let mut tracker = ReadyTracker::new(self.dag);
        let n = self.dag.num_tasks();
        let mut num_mapped = 0usize;
        let mut ready: Vec<TaskId> = Vec::new();
        while num_mapped < n {
            let _round_span = rats_telemetry::span(&crate::telemetry::ROUND_SECONDS);
            crate::telemetry::bump(&self.tally.rounds);
            tracker.take_batch_into(&mut ready);
            assert!(!ready.is_empty(), "acyclic graph always has ready tasks");
            self.sort_ready(&mut ready);
            for &t in &ready {
                let (procs, start, finish) = self.decide(t);
                self.place(t, procs, start, finish);
                tracker.complete(t);
                num_mapped += 1;
            }
        }
        let (redist_hits, redist_misses) = self.cache.borrow().redist.hit_stats();
        self.tally.flush(n as u64, redist_hits, redist_misses);
        self.into_schedule()
    }

    pub(crate) fn into_schedule(self) -> Schedule {
        Schedule {
            entries: self
                .tasks
                .entries
                .into_iter()
                .map(|e| e.expect("all tasks mapped"))
                .collect(),
            order: self.order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_model::TaskCost;
    use rats_platform::ClusterSpec;

    /// Pins the documented `heaviest_pred` tie-break: equal byte counts go
    /// to the predecessor with the lowest task id.
    #[test]
    fn heaviest_pred_tie_breaks_to_lowest_id() {
        let cost = TaskCost::new(50_000_000, 256.0, 0.05);
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost);
        let b = g.add_task("b", cost);
        let c = g.add_task("c", cost);
        let d = g.add_task("d", cost);
        // Equal-byte edges into c (insertion order b first, then a: the
        // tie-break must not depend on iteration order), and a strictly
        // heavier edge into d.
        g.add_edge(b, c, 1e6);
        g.add_edge(a, c, 1e6);
        g.add_edge(a, d, 1.0);
        g.add_edge(b, d, 2.0);
        let platform = Platform::from_spec(&ClusterSpec::grillon());
        let policy = Hcpa;
        let mapper = Mapper::new(
            &g,
            &platform,
            vec![2, 2, 2, 2],
            &policy,
            CandidatePolicy::default(),
        );
        assert_eq!(
            mapper.heaviest_pred(c),
            Some(a),
            "tie goes to the lowest id"
        );
        assert_eq!(mapper.heaviest_pred(d), Some(b), "more bytes beat ids");
        assert_eq!(mapper.heaviest_pred(a), None, "entry tasks have no parent");
    }
}
