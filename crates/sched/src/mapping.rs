//! Step two: list-scheduling task mapping, driven by a pluggable
//! [`MappingPolicy`] (paper, section III and Algorithm 1).
//!
//! The driver ([`Mapper`]) owns the mechanics every policy shares — ready
//! lists, bottom-level priorities, processor availability, candidate
//! placement and finish-time estimation — and delegates the per-task
//! adopt/pack/stretch verdict to the policy through a read-only
//! [`MapView`].

use std::sync::Arc;

use rats_dag::{bottom_levels, TaskGraph, TaskId};
use rats_platform::{Platform, ProcSet};
use rats_redist::{align_for_self_comm, estimate_time, redistribute};

use crate::allocation::{allocate, reference_bandwidth, AllocParams, Allocation};
use crate::policy::{Hcpa, MapView, MappingDecision, MappingPolicy};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::strategy::{CandidatePolicy, MappingStrategy, SecondarySort};

/// Two-step scheduler: allocation (step one) + mapping (step two).
///
/// Built with a platform, an [`AllocParams`] (HCPA by default — the
/// allocation procedure RATS builds on) and a mapping policy (plain HCPA
/// mapping by default). The policy is either one of the shipped
/// [`MappingStrategy`] variants or any external [`MappingPolicy`]
/// implementation:
///
/// ```
/// use rats_daggen::fft_dag;
/// use rats_model::CostParams;
/// use rats_platform::{ClusterSpec, Platform};
/// use rats_sched::{MappingStrategy, Scheduler, TimeCostPolicy};
///
/// let platform = Platform::from_spec(&ClusterSpec::grillon());
/// let dag = fft_dag(4, &CostParams::tiny(), 42);
/// // Closed enum and open trait forms of the same policy:
/// let a = Scheduler::new(&platform)
///     .strategy(MappingStrategy::rats_time_cost(0.5, true))
///     .schedule(&dag);
/// let b = Scheduler::new(&platform)
///     .policy(TimeCostPolicy::new(0.5, true).unwrap())
///     .schedule(&dag);
/// assert_eq!(a.makespan_estimate(), b.makespan_estimate());
/// ```
#[derive(Clone)]
pub struct Scheduler<'p> {
    platform: &'p Platform,
    alloc_params: AllocParams,
    policy: Arc<dyn MappingPolicy>,
    candidates: CandidatePolicy,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("platform", &self.platform.name())
            .field("alloc_params", &self.alloc_params)
            .field("policy", &self.policy.name())
            .field("candidates", &self.candidates)
            .finish()
    }
}

impl<'p> Scheduler<'p> {
    /// A scheduler with the paper's defaults (HCPA allocation, HCPA
    /// mapping).
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            alloc_params: AllocParams::default(),
            policy: Arc::new(Hcpa),
            candidates: CandidatePolicy::default(),
        }
    }

    /// Selects the allocation-step parameters.
    pub fn allocator(mut self, params: AllocParams) -> Self {
        self.alloc_params = params;
        self
    }

    /// Selects the allocation-step area policy.
    pub fn area_policy(mut self, policy: crate::allocation::AreaPolicy) -> Self {
        self.alloc_params.policy = policy;
        self
    }

    /// Selects the mapping policy from the closed strategy enum
    /// (backward-compatible short-hand for [`Self::policy`]).
    pub fn strategy(self, strategy: MappingStrategy) -> Self {
        self.policy(strategy)
    }

    /// Selects the mapping policy. Accepts any [`MappingPolicy`]
    /// implementation — the shipped ones, a [`MappingStrategy`] value, or a
    /// third-party type (by value or already boxed).
    pub fn policy(mut self, policy: impl Into<Box<dyn MappingPolicy>>) -> Self {
        self.policy = Arc::from(policy.into());
        self
    }

    /// Selects an already-shared mapping policy without re-boxing it
    /// (used by façades that hold one policy across many schedulers).
    pub fn shared_policy(mut self, policy: Arc<dyn MappingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The active policy's display name (recorded in provenance).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Selects the default-mapping candidate policy (see
    /// [`CandidatePolicy`]; the default reproduces the paper's HCPA).
    pub fn candidate_policy(mut self, candidates: CandidatePolicy) -> Self {
        self.candidates = candidates;
        self
    }

    /// Runs both steps and returns the schedule.
    pub fn schedule(&self, dag: &TaskGraph) -> Schedule {
        let alloc = allocate(dag, self.platform, self.alloc_params);
        self.schedule_with_allocation(dag, &alloc)
    }

    /// Runs only the mapping step on a precomputed allocation — this is how
    /// the experiments compare HCPA and both RATS variants *on the same
    /// step-one output*, isolating the effect of the mapping policy.
    pub fn schedule_with_allocation(&self, dag: &TaskGraph, alloc: &Allocation) -> Schedule {
        Mapper::new(
            dag,
            self.platform,
            alloc.as_slice().to_vec(),
            &*self.policy,
            self.candidates,
        )
        .run()
    }
}

/// The mapping driver: shared list-scheduling state and mechanics, with the
/// adopt/pack/stretch verdicts delegated to a [`MappingPolicy`].
pub(crate) struct Mapper<'a> {
    pub(crate) dag: &'a TaskGraph,
    pub(crate) platform: &'a Platform,
    policy: &'a dyn MappingPolicy,
    candidates: CandidatePolicy,
    /// Current allocation; adopting policies rewrite entries when
    /// packing/stretching.
    pub(crate) alloc: Vec<u32>,
    /// Static priority: bottom level under the initial allocation.
    bottom: Vec<f64>,
    /// Next free time of every processor.
    proc_ready: Vec<f64>,
    entries: Vec<Option<ScheduleEntry>>,
    order: Vec<TaskId>,
    /// Tasks whose processor set has already been adopted by one child.
    pub(crate) adopted: Vec<bool>,
}

impl<'a> Mapper<'a> {
    fn new(
        dag: &'a TaskGraph,
        platform: &'a Platform,
        alloc: Vec<u32>,
        policy: &'a dyn MappingPolicy,
        candidates: CandidatePolicy,
    ) -> Self {
        let gflops = platform.gflops();
        let beta = reference_bandwidth(platform);
        let times: Vec<f64> = dag
            .task_ids()
            .map(|t| dag.task(t).cost.time(alloc[t.index()], gflops))
            .collect();
        let bottom = bottom_levels(dag, &times, |e| dag.edge(e).bytes / beta);
        Self {
            dag,
            platform,
            policy,
            candidates,
            alloc,
            bottom,
            proc_ready: vec![0.0; platform.num_procs() as usize],
            entries: vec![None; dag.num_tasks()],
            order: Vec::with_capacity(dag.num_tasks()),
            adopted: vec![false; dag.num_tasks()],
        }
    }

    #[inline]
    pub(crate) fn exec_time(&self, t: TaskId, p: u32) -> f64 {
        self.dag.task(t).cost.time(p, self.platform.gflops())
    }

    #[inline]
    pub(crate) fn work(&self, t: TaskId, p: u32) -> f64 {
        self.dag.task(t).cost.work(p, self.platform.gflops())
    }

    pub(crate) fn entry_of(&self, t: TaskId) -> &ScheduleEntry {
        self.entries[t.index()]
            .as_ref()
            .expect("predecessors are mapped before their successors")
    }

    /// Estimated (start, finish) of `t` on the candidate set `procs`:
    /// the task starts once every input redistribution has arrived
    /// (contention-free estimates) and all processors are free.
    pub(crate) fn estimate_on(&self, t: TaskId, procs: &ProcSet) -> (f64, f64) {
        let mut data_ready = 0.0f64;
        for (pred, e) in self.dag.predecessors(t) {
            let pe = self.entry_of(pred);
            let bytes = self.dag.edge(e).bytes;
            let r = redistribute(bytes, &pe.procs, procs);
            let arrival = pe.est_finish + estimate_time(&r, self.platform);
            data_ready = data_ready.max(arrival);
        }
        let proc_avail = procs
            .iter()
            .map(|p| self.proc_ready[p as usize])
            .fold(0.0f64, f64::max);
        let start = data_ready.max(proc_avail);
        (start, start + self.exec_time(t, procs.len()))
    }

    /// The heaviest input edge's predecessor (most data to move) — the
    /// parent worth aligning a fresh candidate set against.
    fn heaviest_pred(&self, t: TaskId) -> Option<TaskId> {
        self.dag
            .predecessors(t)
            .max_by(|(a, ea), (b, eb)| {
                let wa = self.dag.edge(*ea).bytes;
                let wb = self.dag.edge(*eb).bytes;
                wa.partial_cmp(&wb)
                    .expect("edge weights are finite")
                    .then(b.index().cmp(&a.index()))
            })
            .map(|(p, _)| p)
    }

    /// The `k` earliest-available processors (ties by id), rank-ordered for
    /// maximal self communication with the heaviest parent.
    fn earliest_k(&self, t: TaskId, k: u32) -> ProcSet {
        let mut procs: Vec<u32> = (0..self.platform.num_procs()).collect();
        procs.sort_by(|&a, &b| {
            self.proc_ready[a as usize]
                .partial_cmp(&self.proc_ready[b as usize])
                .expect("ready times are finite")
                .then(a.cmp(&b))
        });
        procs.truncate(k as usize);
        procs.sort_unstable(); // deterministic rank order before alignment
        let set = ProcSet::new(procs);
        match self.heaviest_pred(t) {
            Some(p) => align_for_self_comm(&self.entry_of(p).procs, &set),
            None => set,
        }
    }

    /// A candidate derived from predecessor `pred`'s set, resized to `k`:
    /// its prefix when shrinking, or the full set padded with the earliest
    /// other processors when growing.
    fn pred_candidate(&self, pred: TaskId, k: u32) -> ProcSet {
        let pp = &self.entry_of(pred).procs;
        if pp.len() >= k {
            pp.first_k(k)
        } else {
            let mut procs: Vec<u32> = pp.as_slice().to_vec();
            let mut others: Vec<u32> = (0..self.platform.num_procs())
                .filter(|p| !pp.contains(*p))
                .collect();
            others.sort_by(|&a, &b| {
                self.proc_ready[a as usize]
                    .partial_cmp(&self.proc_ready[b as usize])
                    .expect("ready times are finite")
                    .then(a.cmp(&b))
            });
            procs.extend(others.into_iter().take((k - pp.len()) as usize));
            ProcSet::new(procs)
        }
    }

    /// Default HCPA mapping: evaluate the candidate set(s) dictated by the
    /// [`CandidatePolicy`], pick the earliest estimated finish.
    pub(crate) fn default_mapping(&self, t: TaskId) -> (ProcSet, f64, f64) {
        let k = self.alloc[t.index()];
        let mut candidates = vec![self.earliest_k(t, k)];
        if self.candidates == CandidatePolicy::ParentAware {
            for (pred, _) in self.dag.predecessors(t) {
                candidates.push(self.pred_candidate(pred, k));
            }
        }
        let mut best: Option<(ProcSet, f64, f64)> = None;
        for c in candidates {
            let (s, f) = self.estimate_on(t, &c);
            let better = match &best {
                None => true,
                Some((_, bs, bf)) => f < *bf - 1e-15 || (f <= *bf + 1e-15 && s < *bs - 1e-15),
            };
            if better {
                best = Some((c, s, f));
            }
        }
        best.expect("at least the earliest-k candidate exists")
    }

    /// δ(t) for the ready-list secondary sort: the smallest allocation
    /// modification that would adopt any predecessor's set.
    fn delta_key(&self, t: TaskId) -> f64 {
        let k = self.alloc[t.index()];
        let mut best = f64::INFINITY;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            best = best.min(f64::from(np.abs_diff(k)));
        }
        best
    }

    /// gain(t) for the ready-list secondary sort: the largest execution-time
    /// reduction any predecessor's set offers.
    fn gain_key(&self, t: TaskId) -> f64 {
        let k = self.alloc[t.index()];
        let own = self.exec_time(t, k);
        let mut best = f64::NEG_INFINITY;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            best = best.max(own - self.exec_time(t, np));
        }
        best
    }

    /// Sorts ready tasks by decreasing bottom level, then by the policy's
    /// stable secondary criterion, then by id (full determinism).
    fn sort_ready(&self, ready: &mut [TaskId]) {
        let secondary = self.policy.secondary_sort();
        ready.sort_by(|&a, &b| {
            let bl = self.bottom[b.index()]
                .partial_cmp(&self.bottom[a.index()])
                .expect("bottom levels are finite");
            let sec = match secondary {
                SecondarySort::None => std::cmp::Ordering::Equal,
                SecondarySort::DeltaAscending => self
                    .delta_key(a)
                    .partial_cmp(&self.delta_key(b))
                    .expect("delta keys are not NaN"),
                SecondarySort::GainDescending => self
                    .gain_key(b)
                    .partial_cmp(&self.gain_key(a))
                    .expect("gain keys are not NaN"),
            };
            bl.then(sec).then(a.index().cmp(&b.index()))
        });
    }

    fn place(&mut self, t: TaskId, procs: ProcSet, start: f64, finish: f64) {
        for p in procs.iter() {
            self.proc_ready[p as usize] = finish;
        }
        self.alloc[t.index()] = procs.len();
        self.entries[t.index()] = Some(ScheduleEntry {
            task: t,
            procs,
            est_start: start,
            est_finish: finish,
        });
        self.order.push(t);
    }

    /// Algorithm 1: repeatedly sort and drain the ready list, letting the
    /// policy adopt predecessor allocations where its conditions hold.
    ///
    /// Estimates are evaluated lazily at pop time, which subsumes the
    /// algorithm's "recompute … only if they have been computed using this
    /// parent allocation" bookkeeping: every decision sees the platform
    /// state left by all previously mapped tasks.
    fn run(mut self) -> Schedule {
        let n = self.dag.num_tasks();
        let mut num_mapped = 0usize;
        while num_mapped < n {
            let mut ready: Vec<TaskId> = self
                .dag
                .task_ids()
                .filter(|&t| {
                    self.entries[t.index()].is_none()
                        && self
                            .dag
                            .predecessors(t)
                            .all(|(p, _)| self.entries[p.index()].is_some())
                })
                .collect();
            assert!(!ready.is_empty(), "acyclic graph always has ready tasks");
            self.sort_ready(&mut ready);
            for t in ready {
                let decision = self.policy.decide(&MapView { mapper: &self }, t);
                let (procs, start, finish) = match decision {
                    MappingDecision::Adopt {
                        from_pred,
                        placement,
                    } => {
                        // Hard check even in release: external policies are
                        // exactly the callers that can get this wrong, and
                        // a silent double-adoption corrupts the schedule.
                        // O(in-degree), negligible next to the estimates.
                        assert!(
                            self.dag.predecessors(t).any(|(p, _)| p == from_pred)
                                && !self.adopted[from_pred.index()],
                            "policy {:?} adopted {from_pred:?} for {t:?}, which is not \
                             an unconsumed predecessor",
                            self.policy.name()
                        );
                        self.adopted[from_pred.index()] = true;
                        (placement.procs, placement.start, placement.finish)
                    }
                    MappingDecision::Default(Some(p)) => (p.procs, p.start, p.finish),
                    MappingDecision::Default(None) => self.default_mapping(t),
                };
                self.place(t, procs, start, finish);
                num_mapped += 1;
            }
        }
        Schedule {
            entries: self
                .entries
                .into_iter()
                .map(|e| e.expect("all tasks mapped"))
                .collect(),
            order: self.order,
        }
    }
}
