//! Step two: list-scheduling task mapping, driven by a pluggable
//! [`MappingPolicy`] (paper, section III and Algorithm 1).
//!
//! The driver ([`Mapper`]) owns the mechanics every policy shares — ready
//! lists, bottom-level priorities, processor availability, candidate
//! placement and finish-time estimation — and delegates the per-task
//! adopt/pack/stretch verdict to the policy through a read-only
//! [`MapView`].
//!
//! # The incremental engine
//!
//! The driver is the hot path of every experiment, so its mechanics are
//! incremental rather than re-derived per round:
//!
//! * **readiness** — a [`rats_dag::ReadyTracker`] (in-degree counters over
//!   a flattened successor view) discovers newly ready tasks in
//!   O(out-degree) when a task is placed, replacing the per-round
//!   full-graph O(n²) re-scan;
//! * **estimates** — redistribution times come from the streaming
//!   [`rats_redist::RedistCache`]: no transfer matrix is materialized, and
//!   arrival times are memoized per (producer entry, payload,
//!   candidate-set) — sound because a placed producer's set and finish time
//!   are immutable. On top, the driver memoizes each task's `data_ready`
//!   term per candidate-set fingerprint;
//! * **bound pruning** — `data_ready` is a max over predecessor arrivals,
//!   and `f64::max` over non-negative values is exact, so sound
//!   upper/lower bounds prune most exact evaluations bit-identically:
//!   per-task descending bound lists stop the arrival walk early, and when
//!   the processors only come free after the task's arrival upper bound,
//!   no redistribution estimate is evaluated at all;
//! * **ready ordering** — sort keys (bottom level, δ, gain) are computed
//!   once per task per round instead of inside the comparator;
//! * **placement search** — `earliest_k` selects the k earliest-available
//!   processors by partial selection (O(P)) instead of sorting all P.
//!
//! The engine is *behavior-preserving*: the pre-incremental driver is
//! retained verbatim (under `#[cfg(test)]` / the `reference` feature, see
//! [`reference`](crate::Scheduler)) and parity tests assert byte-identical
//! schedules between the two across all shipped policies.

use std::cell::RefCell;
use std::sync::Arc;

use rats_dag::{bottom_levels, ReadyTracker, TaskGraph, TaskId};
use rats_platform::{Platform, ProcSet, SetMemo};
use rats_redist::{align_for_self_comm, RedistCache};

use crate::allocation::{allocate, reference_bandwidth, AllocParams, Allocation};
use crate::policy::{Hcpa, MapView, MappingDecision, MappingPolicy};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::strategy::{CandidatePolicy, MappingStrategy, SecondarySort};

/// Two-step scheduler: allocation (step one) + mapping (step two).
///
/// Built with a platform, an [`AllocParams`] (HCPA by default — the
/// allocation procedure RATS builds on) and a mapping policy (plain HCPA
/// mapping by default). The policy is either one of the shipped
/// [`MappingStrategy`] variants or any external [`MappingPolicy`]
/// implementation:
///
/// ```
/// use rats_daggen::fft_dag;
/// use rats_model::CostParams;
/// use rats_platform::{ClusterSpec, Platform};
/// use rats_sched::{MappingStrategy, Scheduler, TimeCostPolicy};
///
/// let platform = Platform::from_spec(&ClusterSpec::grillon());
/// let dag = fft_dag(4, &CostParams::tiny(), 42);
/// // Closed enum and open trait forms of the same policy:
/// let a = Scheduler::new(&platform)
///     .strategy(MappingStrategy::rats_time_cost(0.5, true))
///     .schedule(&dag);
/// let b = Scheduler::new(&platform)
///     .policy(TimeCostPolicy::new(0.5, true).unwrap())
///     .schedule(&dag);
/// assert_eq!(a.makespan_estimate(), b.makespan_estimate());
/// ```
#[derive(Clone)]
pub struct Scheduler<'p> {
    platform: &'p Platform,
    alloc_params: AllocParams,
    policy: Arc<dyn MappingPolicy>,
    candidates: CandidatePolicy,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("platform", &self.platform.name())
            .field("alloc_params", &self.alloc_params)
            .field("policy", &self.policy.name())
            .field("candidates", &self.candidates)
            .finish()
    }
}

impl<'p> Scheduler<'p> {
    /// A scheduler with the paper's defaults (HCPA allocation, HCPA
    /// mapping).
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            alloc_params: AllocParams::default(),
            policy: Arc::new(Hcpa),
            candidates: CandidatePolicy::default(),
        }
    }

    /// Selects the allocation-step parameters.
    pub fn allocator(mut self, params: AllocParams) -> Self {
        self.alloc_params = params;
        self
    }

    /// Selects the allocation-step area policy.
    pub fn area_policy(mut self, policy: crate::allocation::AreaPolicy) -> Self {
        self.alloc_params.policy = policy;
        self
    }

    /// Selects the mapping policy from the closed strategy enum
    /// (backward-compatible short-hand for [`Self::policy`]).
    pub fn strategy(self, strategy: MappingStrategy) -> Self {
        self.policy(strategy)
    }

    /// Selects the mapping policy. Accepts any [`MappingPolicy`]
    /// implementation — the shipped ones, a [`MappingStrategy`] value, or a
    /// third-party type (by value or already boxed).
    pub fn policy(mut self, policy: impl Into<Box<dyn MappingPolicy>>) -> Self {
        self.policy = Arc::from(policy.into());
        self
    }

    /// Selects an already-shared mapping policy without re-boxing it
    /// (used by façades that hold one policy across many schedulers).
    pub fn shared_policy(mut self, policy: Arc<dyn MappingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The active policy's display name (recorded in provenance).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Selects the default-mapping candidate policy (see
    /// [`CandidatePolicy`]; the default reproduces the paper's HCPA).
    pub fn candidate_policy(mut self, candidates: CandidatePolicy) -> Self {
        self.candidates = candidates;
        self
    }

    /// Runs both steps and returns the schedule.
    pub fn schedule(&self, dag: &TaskGraph) -> Schedule {
        let alloc = allocate(dag, self.platform, self.alloc_params);
        self.schedule_with_allocation(dag, &alloc)
    }

    /// Runs only the mapping step on a precomputed allocation — this is how
    /// the experiments compare HCPA and both RATS variants *on the same
    /// step-one output*, isolating the effect of the mapping policy.
    pub fn schedule_with_allocation(&self, dag: &TaskGraph, alloc: &Allocation) -> Schedule {
        Mapper::new(
            dag,
            self.platform,
            alloc.as_slice().to_vec(),
            &*self.policy,
            self.candidates,
        )
        .run()
    }

    /// Runs both steps with the retained **naive reference engine** (the
    /// pre-incremental driver: full readiness re-scans, comparator-time sort
    /// keys, matrix-materializing estimates). The parity oracle for the
    /// incremental engine and the "before" side of the mapping benches.
    #[cfg(any(test, feature = "reference"))]
    pub fn reference_schedule(&self, dag: &TaskGraph) -> Schedule {
        let alloc = allocate(dag, self.platform, self.alloc_params);
        self.reference_schedule_with_allocation(dag, &alloc)
    }

    /// Mapping-only counterpart of [`Self::reference_schedule`] (see
    /// [`Self::schedule_with_allocation`]).
    #[cfg(any(test, feature = "reference"))]
    pub fn reference_schedule_with_allocation(
        &self,
        dag: &TaskGraph,
        alloc: &Allocation,
    ) -> Schedule {
        Mapper::new(
            dag,
            self.platform,
            alloc.as_slice().to_vec(),
            &*self.policy,
            self.candidates,
        )
        .into_naive()
        .run()
    }
}

/// One task's sorted predecessor arrival bounds plus its max predecessor
/// finish (see `MapCache::bounds`).
type PredBounds = (Box<[(f64, u32, u32)]>, f64);

/// Memoized estimate state of one mapping run. Interior-mutable because the
/// policies observe the driver through the read-only [`MapView`] while the
/// caches warm up underneath.
///
/// Everything here is sound for one reason: every predecessor of a ready
/// task is placed, and placed entries are immutable.
struct MapCache {
    /// Streaming redistribution estimates, memoized per (producer entry,
    /// payload, candidate).
    redist: RedistCache,
    /// `data_ready` per task, keyed by candidate set (slot = consumer
    /// task).
    data_ready: SetMemo<f64>,
    /// Per task: max over predecessors of `finish + cost_upper_bound(bytes)`
    /// — a candidate-independent upper bound on `data_ready`. NaN = not yet
    /// computed.
    bound_max: Vec<f64>,
    /// Per task: `(arrival bound, pred, edge)` descending by bound plus the
    /// max predecessor finish, built lazily on the first exact `data_ready`
    /// evaluation. Walking the list in order allows breaking at the first
    /// bound that cannot beat the running max (every later one is smaller
    /// still); the max finish is an exact *lower* bound on `data_ready`
    /// that seeds the running max.
    bounds: Vec<Option<PredBounds>>,
}

/// The mapping driver: shared list-scheduling state and mechanics, with the
/// adopt/pack/stretch verdicts delegated to a [`MappingPolicy`].
pub(crate) struct Mapper<'a> {
    pub(crate) dag: &'a TaskGraph,
    pub(crate) platform: &'a Platform,
    policy: &'a dyn MappingPolicy,
    candidates: CandidatePolicy,
    /// Current allocation; adopting policies rewrite entries when
    /// packing/stretching.
    pub(crate) alloc: Vec<u32>,
    /// Static priority: bottom level under the initial allocation.
    pub(crate) bottom: Vec<f64>,
    /// Next free time of every processor.
    pub(crate) proc_ready: Vec<f64>,
    pub(crate) entries: Vec<Option<ScheduleEntry>>,
    order: Vec<TaskId>,
    /// Tasks whose processor set has already been adopted by one child.
    pub(crate) adopted: Vec<bool>,
    cache: RefCell<MapCache>,
    /// Run the retained pre-incremental engine instead (parity oracle).
    #[cfg(any(test, feature = "reference"))]
    pub(crate) naive: bool,
}

impl<'a> Mapper<'a> {
    fn new(
        dag: &'a TaskGraph,
        platform: &'a Platform,
        alloc: Vec<u32>,
        policy: &'a dyn MappingPolicy,
        candidates: CandidatePolicy,
    ) -> Self {
        let gflops = platform.gflops();
        let beta = reference_bandwidth(platform);
        let times: Vec<f64> = dag
            .task_ids()
            .map(|t| dag.task(t).cost.time(alloc[t.index()], gflops))
            .collect();
        let bottom = bottom_levels(dag, &times, |e| dag.edge(e).bytes / beta);
        Self {
            dag,
            platform,
            policy,
            candidates,
            alloc,
            bottom,
            proc_ready: vec![0.0; platform.num_procs() as usize],
            entries: vec![None; dag.num_tasks()],
            order: Vec::with_capacity(dag.num_tasks()),
            adopted: vec![false; dag.num_tasks()],
            cache: RefCell::new(MapCache {
                // One slot per task: slot t caches arrivals of data produced
                // by placed task t, shared by all of t's consumers.
                redist: RedistCache::new(platform, dag.num_tasks()),
                data_ready: SetMemo::new(dag.num_tasks()),
                bound_max: vec![f64::NAN; dag.num_tasks()],
                bounds: vec![None; dag.num_tasks()],
            }),
            #[cfg(any(test, feature = "reference"))]
            naive: false,
        }
    }

    /// Switches this driver to the retained naive reference engine.
    #[cfg(any(test, feature = "reference"))]
    fn into_naive(mut self) -> Self {
        self.naive = true;
        self
    }

    /// The policy's secondary ready-list sort (for the reference engine,
    /// whose sort lives in another module).
    #[cfg(any(test, feature = "reference"))]
    pub(crate) fn policy_secondary_sort(&self) -> SecondarySort {
        self.policy.secondary_sort()
    }

    #[inline]
    pub(crate) fn exec_time(&self, t: TaskId, p: u32) -> f64 {
        self.dag.task(t).cost.time(p, self.platform.gflops())
    }

    #[inline]
    pub(crate) fn work(&self, t: TaskId, p: u32) -> f64 {
        self.dag.task(t).cost.work(p, self.platform.gflops())
    }

    pub(crate) fn entry_of(&self, t: TaskId) -> &ScheduleEntry {
        self.entries[t.index()]
            .as_ref()
            .expect("predecessors are mapped before their successors")
    }

    /// The candidate-independent upper bound on `data_ready(t, ·)`:
    /// max over predecessors of `finish + cost_upper_bound(bytes)`
    /// (computed once per task; 0 for entry tasks).
    fn data_ready_bound(&self, t: TaskId) -> f64 {
        let mut cache = self.cache.borrow_mut();
        let cached = cache.bound_max[t.index()];
        if !cached.is_nan() {
            return cached;
        }
        let mut bound = 0.0f64;
        for (pred, e) in self.dag.predecessors(t) {
            let pe = self.entries[pred.index()]
                .as_ref()
                .expect("predecessors are mapped before their successors");
            let b = pe.est_finish + cache.redist.cost_upper_bound(self.dag.edge(e).bytes);
            bound = bound.max(b);
        }
        cache.bound_max[t.index()] = bound;
        bound
    }

    /// The time every input of `t` has arrived on the candidate set `procs`
    /// (contention-free streaming estimates, memoized per task and
    /// candidate).
    ///
    /// `data_ready` is a **max** over predecessor arrivals, and `f64::max`
    /// over non-negative values is exact — so predecessors whose *sound
    /// upper bound* (finish + [`RedistCache::cost_upper_bound`]) cannot
    /// exceed the running max contribute nothing, bit-identically. The
    /// bounds are candidate-independent, so they are computed and sorted
    /// descending once per task; each evaluation walks them in order and
    /// stops at the first bound the running max already dominates.
    fn data_ready(&self, t: TaskId, procs: &ProcSet) -> f64 {
        if self.dag.in_degree(t) == 0 {
            return 0.0;
        }
        let mut cache = self.cache.borrow_mut();
        if let Some(v) = cache.data_ready.get(t.index(), procs, |_| true) {
            return v;
        }
        if cache.bounds[t.index()].is_none() {
            let mut finish_max = 0.0f64;
            let mut v: Vec<(f64, u32, u32)> = self
                .dag
                .predecessors(t)
                .map(|(pred, e)| {
                    let pe = self.entries[pred.index()]
                        .as_ref()
                        .expect("predecessors are mapped before their successors");
                    finish_max = finish_max.max(pe.est_finish);
                    let bound =
                        pe.est_finish + cache.redist.cost_upper_bound(self.dag.edge(e).bytes);
                    (bound, pred.index() as u32, e.index() as u32)
                })
                .collect();
            v.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("bounds are finite"));
            cache.bounds[t.index()] = Some((v.into_boxed_slice(), finish_max));
        }
        let MapCache {
            redist,
            data_ready,
            bounds,
            ..
        } = &mut *cache;
        let (sorted, finish_max) = bounds[t.index()].as_ref().expect("just built");
        // `data_ready` can never undercut the latest predecessor finish
        // (every arrival is at least its producer's finish), so seeding the
        // running max with it only removes evaluations whose arrival could
        // not have raised the max — the result is bit-identical.
        let mut ready = *finish_max;
        for &(bound, pred, e) in sorted.iter() {
            if bound <= ready {
                break; // every later bound is smaller still
            }
            let pe = self.entries[pred as usize]
                .as_ref()
                .expect("predecessors are mapped before their successors");
            let arrival = redist.arrival(
                pred as usize,
                self.dag
                    .edge(rats_dag::EdgeId::from_index(e as usize))
                    .bytes,
                &pe.procs,
                pe.est_finish,
                procs,
                self.platform,
            );
            ready = ready.max(arrival);
        }
        data_ready.insert(t.index(), procs, ready);
        ready
    }

    /// Estimated (start, finish) of `t` on the candidate set `procs`:
    /// the task starts once every input redistribution has arrived
    /// (contention-free estimates) and all processors are free.
    ///
    /// When the processors only come free at or after the task-level
    /// `data_ready` upper bound, the start is the processor availability
    /// *exactly* and no redistribution estimate needs to be evaluated.
    pub(crate) fn estimate_on(&self, t: TaskId, procs: &ProcSet) -> (f64, f64) {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.estimate_on_naive(t, procs);
        }
        let proc_avail = procs
            .iter()
            .map(|p| self.proc_ready[p as usize])
            .fold(0.0f64, f64::max);
        let start = if proc_avail >= self.data_ready_bound(t) {
            proc_avail
        } else {
            self.data_ready(t, procs).max(proc_avail)
        };
        (start, start + self.exec_time(t, procs.len()))
    }

    /// The heaviest input edge's predecessor (most data to move) — the
    /// parent worth aligning a fresh candidate set against. Ties on equal
    /// byte counts deterministically go to the predecessor with the
    /// **lowest** task id, consistent with `DeltaPolicy`'s tie-break
    /// (pinned by the `heaviest_pred_tie_breaks_to_lowest_id` test).
    pub(crate) fn heaviest_pred(&self, t: TaskId) -> Option<TaskId> {
        self.dag
            .predecessors(t)
            .max_by(|(a, ea), (b, eb)| {
                let wa = self.dag.edge(*ea).bytes;
                let wb = self.dag.edge(*eb).bytes;
                // More bytes wins; on equal bytes the *lower* id must
                // compare greater, hence the reversed id comparison.
                wa.partial_cmp(&wb)
                    .expect("edge weights are finite")
                    .then_with(|| b.index().cmp(&a.index()))
            })
            .map(|(p, _)| p)
    }

    /// The `k` earliest-available processors (ties by id), rank-ordered for
    /// maximal self communication with the heaviest parent. The k-smallest
    /// selection is O(P) partial selection, not a full sort; the selected
    /// set is identical because the (ready time, id) order is total.
    fn earliest_k(&self, t: TaskId, k: u32) -> ProcSet {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.earliest_k_naive(t, k);
        }
        if k == 1 && self.platform.num_procs() > 0 {
            // Argmin by (ready time, id) — the full selection machinery and
            // the (trivial) singleton alignment collapse to one scan.
            let mut best = 0u32;
            for p in 1..self.platform.num_procs() {
                if self.proc_ready[p as usize] < self.proc_ready[best as usize] {
                    best = p;
                }
            }
            return ProcSet::new(vec![best]);
        }
        let mut procs: Vec<u32> = (0..self.platform.num_procs()).collect();
        let k = (k as usize).min(procs.len());
        if k < procs.len() {
            procs.select_nth_unstable_by(k, |&a, &b| {
                self.proc_ready[a as usize]
                    .partial_cmp(&self.proc_ready[b as usize])
                    .expect("ready times are finite")
                    .then(a.cmp(&b))
            });
        }
        procs.truncate(k);
        procs.sort_unstable(); // deterministic rank order before alignment
        let set = ProcSet::new(procs);
        match self.heaviest_pred(t) {
            Some(p) => align_for_self_comm(&self.entry_of(p).procs, &set),
            None => set,
        }
    }

    /// A candidate derived from predecessor `pred`'s set, resized to `k`:
    /// its prefix when shrinking, or the full set padded with the earliest
    /// other processors when growing.
    fn pred_candidate(&self, pred: TaskId, k: u32) -> ProcSet {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.pred_candidate_naive(pred, k);
        }
        let pp = &self.entry_of(pred).procs;
        if pp.len() >= k {
            pp.first_k(k)
        } else {
            let mut procs: Vec<u32> = pp.as_slice().to_vec();
            let mut others: Vec<u32> = (0..self.platform.num_procs())
                .filter(|p| !pp.contains(*p))
                .collect();
            let cmp = |a: &u32, b: &u32| {
                self.proc_ready[*a as usize]
                    .partial_cmp(&self.proc_ready[*b as usize])
                    .expect("ready times are finite")
                    .then(a.cmp(b))
            };
            let need = (k - pp.len()) as usize;
            if need < others.len() {
                others.select_nth_unstable_by(need, cmp);
                others.truncate(need);
            }
            // Padding order is rank order: restore the (ready, id) order a
            // full sort would have produced among the selected few.
            others.sort_by(cmp);
            procs.extend(others);
            ProcSet::new(procs)
        }
    }

    /// Default HCPA mapping: evaluate the candidate set(s) dictated by the
    /// [`CandidatePolicy`], pick the earliest estimated finish.
    pub(crate) fn default_mapping(&self, t: TaskId) -> (ProcSet, f64, f64) {
        let k = self.alloc[t.index()];
        let mut candidates = vec![self.earliest_k(t, k)];
        if self.candidates == CandidatePolicy::ParentAware {
            for (pred, _) in self.dag.predecessors(t) {
                candidates.push(self.pred_candidate(pred, k));
            }
        }
        let mut best: Option<(ProcSet, f64, f64)> = None;
        for c in candidates {
            let (s, f) = self.estimate_on(t, &c);
            let better = match &best {
                None => true,
                Some((_, bs, bf)) => f < *bf - 1e-15 || (f <= *bf + 1e-15 && s < *bs - 1e-15),
            };
            if better {
                best = Some((c, s, f));
            }
        }
        best.expect("at least the earliest-k candidate exists")
    }

    /// δ(t) for the ready-list secondary sort: the smallest allocation
    /// modification that would adopt any predecessor's set.
    pub(crate) fn delta_key(&self, t: TaskId) -> f64 {
        let k = self.alloc[t.index()];
        let mut best = f64::INFINITY;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            best = best.min(f64::from(np.abs_diff(k)));
        }
        best
    }

    /// gain(t) for the ready-list secondary sort: the largest execution-time
    /// reduction any predecessor's set offers.
    pub(crate) fn gain_key(&self, t: TaskId) -> f64 {
        let k = self.alloc[t.index()];
        let own = self.exec_time(t, k);
        let mut best = f64::NEG_INFINITY;
        for (pred, _) in self.dag.predecessors(t) {
            if self.adopted[pred.index()] {
                continue;
            }
            let np = self.entry_of(pred).procs.len();
            best = best.max(own - self.exec_time(t, np));
        }
        best
    }

    /// Sorts ready tasks by decreasing bottom level, then by the policy's
    /// stable secondary criterion, then by id (full determinism). Secondary
    /// keys are computed once per task up front — they are pure functions of
    /// the pre-round state, so hoisting them out of the comparator changes
    /// nothing but the cost.
    fn sort_ready(&self, ready: &mut [TaskId]) {
        let secondary = self.policy.secondary_sort();
        if secondary == SecondarySort::None {
            ready.sort_by(|&a, &b| {
                self.bottom[b.index()]
                    .partial_cmp(&self.bottom[a.index()])
                    .expect("bottom levels are finite")
                    .then(a.index().cmp(&b.index()))
            });
            return;
        }
        let mut keyed: Vec<(TaskId, f64)> = ready
            .iter()
            .map(|&t| {
                let key = match secondary {
                    SecondarySort::None => unreachable!("handled above"),
                    SecondarySort::DeltaAscending => self.delta_key(t),
                    SecondarySort::GainDescending => self.gain_key(t),
                };
                (t, key)
            })
            .collect();
        keyed.sort_by(|&(a, ka), &(b, kb)| {
            let bl = self.bottom[b.index()]
                .partial_cmp(&self.bottom[a.index()])
                .expect("bottom levels are finite");
            let sec = match secondary {
                SecondarySort::None => unreachable!("handled above"),
                SecondarySort::DeltaAscending => {
                    ka.partial_cmp(&kb).expect("delta keys are not NaN")
                }
                SecondarySort::GainDescending => {
                    kb.partial_cmp(&ka).expect("gain keys are not NaN")
                }
            };
            bl.then(sec).then(a.index().cmp(&b.index()))
        });
        for (slot, (t, _)) in ready.iter_mut().zip(keyed) {
            *slot = t;
        }
    }

    pub(crate) fn place(&mut self, t: TaskId, procs: ProcSet, start: f64, finish: f64) {
        for p in procs.iter() {
            self.proc_ready[p as usize] = finish;
        }
        self.alloc[t.index()] = procs.len();
        self.entries[t.index()] = Some(ScheduleEntry {
            task: t,
            procs,
            est_start: start,
            est_finish: finish,
        });
        self.order.push(t);
    }

    /// One policy verdict, validated and resolved to a placement.
    pub(crate) fn decide(&mut self, t: TaskId) -> (ProcSet, f64, f64) {
        let decision = self.policy.decide(&MapView { mapper: self }, t);
        match decision {
            MappingDecision::Adopt {
                from_pred,
                placement,
            } => {
                // Hard check even in release: external policies are
                // exactly the callers that can get this wrong, and
                // a silent double-adoption corrupts the schedule.
                // O(in-degree), negligible next to the estimates.
                assert!(
                    self.dag.predecessors(t).any(|(p, _)| p == from_pred)
                        && !self.adopted[from_pred.index()],
                    "policy {:?} adopted {from_pred:?} for {t:?}, which is not \
                     an unconsumed predecessor",
                    self.policy.name()
                );
                self.adopted[from_pred.index()] = true;
                (placement.procs, placement.start, placement.finish)
            }
            MappingDecision::Default(Some(p)) => (p.procs, p.start, p.finish),
            MappingDecision::Default(None) => self.default_mapping(t),
        }
    }

    /// Algorithm 1: repeatedly sort and drain the ready list, letting the
    /// policy adopt predecessor allocations where its conditions hold.
    ///
    /// Estimates are evaluated lazily at pop time, which subsumes the
    /// algorithm's "recompute … only if they have been computed using this
    /// parent allocation" bookkeeping: every decision sees the platform
    /// state left by all previously mapped tasks.
    ///
    /// Rounds are event-driven: the tasks that became ready while draining
    /// round *r* form round *r + 1*'s batch (see
    /// [`rats_dag::ReadyTracker`]) — exactly the set a full readiness
    /// re-scan would find, because a round drains every ready task.
    fn run(mut self) -> Schedule {
        #[cfg(any(test, feature = "reference"))]
        if self.naive {
            return self.run_naive();
        }
        let mut tracker = ReadyTracker::new(self.dag);
        let n = self.dag.num_tasks();
        let mut num_mapped = 0usize;
        while num_mapped < n {
            let mut ready = tracker.take_batch();
            assert!(!ready.is_empty(), "acyclic graph always has ready tasks");
            self.sort_ready(&mut ready);
            for t in ready {
                let (procs, start, finish) = self.decide(t);
                self.place(t, procs, start, finish);
                tracker.complete(t);
                num_mapped += 1;
            }
        }
        self.into_schedule()
    }

    pub(crate) fn into_schedule(self) -> Schedule {
        Schedule {
            entries: self
                .entries
                .into_iter()
                .map(|e| e.expect("all tasks mapped"))
                .collect(),
            order: self.order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_model::TaskCost;
    use rats_platform::ClusterSpec;

    /// Pins the documented `heaviest_pred` tie-break: equal byte counts go
    /// to the predecessor with the lowest task id.
    #[test]
    fn heaviest_pred_tie_breaks_to_lowest_id() {
        let cost = TaskCost::new(50_000_000, 256.0, 0.05);
        let mut g = TaskGraph::new();
        let a = g.add_task("a", cost);
        let b = g.add_task("b", cost);
        let c = g.add_task("c", cost);
        let d = g.add_task("d", cost);
        // Equal-byte edges into c (insertion order b first, then a: the
        // tie-break must not depend on iteration order), and a strictly
        // heavier edge into d.
        g.add_edge(b, c, 1e6);
        g.add_edge(a, c, 1e6);
        g.add_edge(a, d, 1.0);
        g.add_edge(b, d, 2.0);
        let platform = Platform::from_spec(&ClusterSpec::grillon());
        let policy = Hcpa;
        let mapper = Mapper::new(
            &g,
            &platform,
            vec![2, 2, 2, 2],
            &policy,
            CandidatePolicy::default(),
        );
        assert_eq!(
            mapper.heaviest_pred(c),
            Some(a),
            "tie goes to the lowest id"
        );
        assert_eq!(mapper.heaviest_pred(d), Some(b), "more bytes beat ids");
        assert_eq!(mapper.heaviest_pred(a), None, "entry tasks have no parent");
    }
}
