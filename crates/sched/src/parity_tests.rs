//! Engine parity: the incremental mapping engine must produce
//! **byte-identical** schedules to the retained naive reference driver
//! (`reference.rs`) — same entries, same processor rank orders, same
//! bit-level start/finish estimates, same placement order — for every
//! shipped policy, on the paper's scenario suite and on random DAG /
//! platform pairs.

use proptest::prelude::*;

use rats_dag::TaskGraph;
use rats_daggen::suite::mini_suite;
use rats_daggen::{fft_dag, irregular_dag, layered_dag, strassen_dag, DagParams};
use rats_model::CostParams;
use rats_platform::{ClusterSpec, Platform};

use crate::allocation::{allocate, AllocParams};
use crate::mapping::Scheduler;
use crate::strategy::{CandidatePolicy, MappingStrategy};

/// Every shipped policy, pack/stretch parameters chosen to exercise all
/// adoption branches.
fn all_policies() -> Vec<MappingStrategy> {
    vec![
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_delta(0.75, 1.0),
        MappingStrategy::rats_time_cost(0.5, true),
        MappingStrategy::rats_time_cost(0.8, false),
        MappingStrategy::rats_combined(0.5, 1.0, 0.4),
    ]
}

/// Asserts bit-for-bit schedule equality (entries, rank orders, estimate
/// bits, placement order).
fn assert_identical(label: &str, incremental: &crate::Schedule, reference: &crate::Schedule) {
    assert_eq!(
        incremental.order, reference.order,
        "{label}: placement order diverged"
    );
    assert_eq!(
        incremental.entries.len(),
        reference.entries.len(),
        "{label}: entry count diverged"
    );
    for (a, b) in incremental.entries.iter().zip(&reference.entries) {
        assert_eq!(a.task, b.task, "{label}: task order diverged");
        assert_eq!(
            a.procs.as_slice(),
            b.procs.as_slice(),
            "{label}: {} mapped on different ordered sets",
            a.task
        );
        assert_eq!(
            a.est_start.to_bits(),
            b.est_start.to_bits(),
            "{label}: {} start {} != {}",
            a.task,
            a.est_start,
            b.est_start
        );
        assert_eq!(
            a.est_finish.to_bits(),
            b.est_finish.to_bits(),
            "{label}: {} finish {} != {}",
            a.task,
            a.est_finish,
            b.est_finish
        );
    }
    assert_eq!(
        incremental.makespan_estimate().to_bits(),
        reference.makespan_estimate().to_bits(),
        "{label}: makespan diverged"
    );
}

fn check_parity(dag: &TaskGraph, platform: &Platform, label: &str) {
    let alloc = allocate(dag, platform, AllocParams::default());
    for strategy in all_policies() {
        for candidates in [CandidatePolicy::EarliestK, CandidatePolicy::ParentAware] {
            let scheduler = Scheduler::new(platform)
                .strategy(strategy)
                .candidate_policy(candidates);
            let incremental = scheduler.schedule_with_allocation(dag, &alloc);
            let reference = scheduler.reference_schedule_with_allocation(dag, &alloc);
            assert_identical(
                &format!("{label}/{}/{candidates:?}", strategy.name()),
                &incremental,
                &reference,
            );
        }
    }
}

#[test]
fn paper_suite_parity_on_all_clusters() {
    for spec in [
        ClusterSpec::chti(),
        ClusterSpec::grillon(),
        ClusterSpec::grelon(),
    ] {
        let platform = Platform::from_spec(&spec);
        for scenario in mini_suite(&CostParams::paper(), 17) {
            check_parity(
                &scenario.dag,
                &platform,
                &format!("{}/{}", platform.name(), scenario.name),
            );
        }
    }
}

#[test]
fn structured_families_parity() {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    for (name, dag) in [
        ("fft16", fft_dag(16, &CostParams::paper(), 5)),
        ("strassen", strassen_dag(&CostParams::paper(), 6)),
        (
            "layered",
            layered_dag(
                &DagParams::layered(60, 0.5, 0.6, 0.6),
                &CostParams::paper(),
                7,
            ),
        ),
    ] {
        check_parity(&dag, &platform, name);
    }
}

#[test]
fn parity_holds_with_telemetry_spans_active() {
    // Telemetry is observational only: with wall-time capture enabled
    // process-wide (spans recording, tallies flushing), every policy must
    // still match the reference engine bit for bit. Exercises both the
    // small-DAG fast path and the full memo/bound machinery. The flag is
    // global; other tests in this process are unaffected because metrics
    // are never read back by the engine.
    rats_telemetry::set_enabled(true);
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    for (name, dag) in [
        ("telemetry/fft16", fft_dag(16, &CostParams::paper(), 5)),
        (
            "telemetry/layered",
            layered_dag(
                &DagParams::layered(120, 0.5, 0.6, 0.6),
                &CostParams::paper(),
                11,
            ),
        ),
    ] {
        check_parity(&dag, &platform, name);
    }
    rats_telemetry::set_enabled(false);
    // And the run actually recorded: placements flushed into the tally.
    assert!(crate::telemetry::TASKS.get() > 0);
    assert!(crate::telemetry::MAP_SECONDS.count() > 0);
}

#[test]
fn small_dag_fast_path_parity_across_threshold() {
    // DAG sizes straddling `SMALL_DAG_TASKS`: the memo-free small-DAG path
    // and the full arena/memo machinery sit on either side of the switch,
    // and both must agree with the reference bit for bit.
    use crate::mapping::SMALL_DAG_TASKS;
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let threshold = SMALL_DAG_TASKS as u32;
    let (mut below, mut at_or_above) = (false, false);
    for n in threshold - 2..=threshold + 2 {
        let params = DagParams {
            n,
            width: 0.5,
            regularity: 0.5,
            density: 0.5,
            jump: 2,
        };
        let dag = irregular_dag(&params, &CostParams::paper(), 0xBEEF + u64::from(n));
        if dag.num_tasks() < SMALL_DAG_TASKS {
            below = true;
        } else {
            at_or_above = true;
        }
        check_parity(&dag, &platform, &format!("threshold(n={n})"));
    }
    assert!(
        below && at_or_above,
        "test sizes failed to straddle the small-DAG threshold"
    );
}

#[test]
fn parity_on_platforms_spanning_procset_tiers() {
    // 64/65/256/257 processors put the largest processor id at
    // 63/64/255/256 — exactly straddling the ProcSet mask tiers (single
    // word `< 64`, four-word array `< 256`, spilled beyond). Every policy
    // must agree with the reference on all three representations.
    let params = DagParams {
        n: 90,
        width: 0.5,
        regularity: 0.5,
        density: 0.5,
        jump: 2,
    };
    for procs in [64u32, 65, 256, 257] {
        let platform = Platform::from_spec(&ClusterSpec::flat(format!("flat{procs}"), procs, 2.0));
        let dag = irregular_dag(&params, &CostParams::paper(), 0xD00D + u64::from(procs));
        check_parity(&dag, &platform, &format!("procset-tier(p={procs})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAG shapes × random platforms: the engines never diverge.
    #[test]
    fn random_dag_platform_parity(
        n in 10u32..70,
        width in 1u32..10,
        density in 0u32..10,
        jump in 1u32..4,
        seed in 0u64..10_000,
        cluster in 0u32..3,
    ) {
        let params = DagParams {
            n,
            width: f64::from(width) / 10.0,
            regularity: 0.5,
            density: f64::from(density) / 10.0,
            jump,
        };
        let dag = irregular_dag(&params, &CostParams::paper(), seed);
        let spec = match cluster {
            0 => ClusterSpec::chti(),
            1 => ClusterSpec::grillon(),
            _ => ClusterSpec::grelon(),
        };
        let platform = Platform::from_spec(&spec);
        check_parity(&dag, &platform, &format!("random(n={n},seed={seed})"));
    }
}
