//! The open mapping-policy interface: step two's per-task adopt/pack/stretch
//! decision as an object-safe trait.
//!
//! The paper fixes a two-step skeleton — HCPA allocation, then list-mapping
//! with optional *adoption* of a predecessor's processor set, then
//! contention simulation — and varies only the policy that decides **when**
//! to adopt. [`MappingPolicy`] is that variation point. The four paper(-ish)
//! policies ship as [`Hcpa`], [`DeltaPolicy`], [`TimeCostPolicy`] and
//! [`CombinedPolicy`]; external crates can plug in their own policy without
//! touching this crate:
//!
//! ```
//! use rats_sched::{MapView, MappingDecision, MappingPolicy, Scheduler};
//! use rats_daggen::{fft_dag};
//! use rats_model::CostParams;
//! use rats_platform::{ClusterSpec, Platform};
//! use rats_dag::TaskId;
//!
//! /// Adopt the heaviest-input predecessor's set whenever it is free.
//! #[derive(Debug)]
//! struct GreedyAdopt;
//!
//! impl MappingPolicy for GreedyAdopt {
//!     fn name(&self) -> &str {
//!         "greedy-adopt"
//!     }
//!
//!     fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision {
//!         let heaviest = view
//!             .adoptable_predecessors(task)
//!             .max_by(|&(_, a), &(_, b)| {
//!                 view.edge_bytes(a).total_cmp(&view.edge_bytes(b))
//!             });
//!         match heaviest {
//!             Some((pred, _)) => {
//!                 let procs = view.placement(pred).procs.clone();
//!                 let placement = view.estimate_on(task, procs);
//!                 MappingDecision::Adopt {
//!                     from_pred: pred,
//!                     placement,
//!                 }
//!             }
//!             None => MappingDecision::Default(None),
//!         }
//!     }
//! }
//!
//! let platform = Platform::from_spec(&ClusterSpec::grillon());
//! let dag = fft_dag(4, &CostParams::tiny(), 7);
//! let schedule = Scheduler::new(&platform).policy(GreedyAdopt).schedule(&dag);
//! schedule.validate(&dag, &platform).unwrap();
//! ```

use rats_dag::{EdgeId, TaskId};
use rats_platform::ProcSet;

use crate::mapping::Mapper;
use crate::schedule::ScheduleEntry;
use crate::strategy::{
    CombinedParams, DeltaParams, MappingStrategy, SecondarySort, StrategyError, TimeCostParams,
};

/// A fully-evaluated placement candidate: a processor set plus the
/// contention-free (start, finish) estimate of running the task there.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The processors the task would run on.
    pub procs: ProcSet,
    /// Estimated start time (data ready and processors free).
    pub start: f64,
    /// Estimated finish time.
    pub finish: f64,
}

/// A policy's verdict for one ready task.
#[derive(Debug, Clone)]
pub enum MappingDecision {
    /// Adopt predecessor `from_pred`'s exact processor set (the
    /// redistribution on that edge becomes free). The predecessor is
    /// consumed: each parent's set can be adopted by at most one child, the
    /// bookkeeping without which all ready siblings would pile onto one
    /// parent's processors and serialize.
    Adopt {
        /// The predecessor whose placement is being reused.
        from_pred: TaskId,
        /// The adopted placement (as returned by [`MapView::estimate_on`]).
        placement: Placement,
    },
    /// Fall back to the scheduler's default mapping; pass a placement back
    /// if the policy already computed [`MapView::default_mapping`] so the
    /// driver does not evaluate it twice.
    Default(Option<Placement>),
}

/// Read-only view of the in-progress mapping, handed to
/// [`MappingPolicy::decide`] for each ready task.
///
/// All estimates are *contention-free* (section III): redistribution times
/// come from [`rats_redist::estimate_time`], and processor availability is
/// the driver's per-processor ready time after every previously mapped
/// task.
pub struct MapView<'v, 'a> {
    pub(crate) mapper: &'v Mapper<'a>,
}

impl<'a> MapView<'_, 'a> {
    /// The task graph being mapped.
    pub fn dag(&self) -> &'a rats_dag::TaskGraph {
        self.mapper.dag
    }

    /// The target platform.
    pub fn platform(&self) -> &'a rats_platform::Platform {
        self.mapper.platform
    }

    /// The task's current allocation size (step one's output, possibly
    /// already rewritten by earlier pack/stretch decisions of this run).
    pub fn allocated(&self, t: TaskId) -> u32 {
        self.mapper.tasks.alloc[t.index()]
    }

    /// The placement of an already-mapped task.
    ///
    /// # Panics
    /// Panics if `t` has not been mapped yet; predecessors of the task
    /// under decision always have been.
    pub fn placement(&self, t: TaskId) -> &ScheduleEntry {
        self.mapper.entry_of(t)
    }

    /// Whether `t`'s processor set has already been adopted by a child
    /// (an adopted set is consumed and cannot be adopted again).
    pub fn is_adopted(&self, t: TaskId) -> bool {
        self.mapper.tasks.adopted[t.index()]
    }

    /// The predecessors of `t` whose placements are still available for
    /// adoption, with the connecting edge.
    pub fn adoptable_predecessors(&self, t: TaskId) -> impl Iterator<Item = (TaskId, EdgeId)> + '_ {
        self.mapper
            .dag
            .preds_flat(t)
            .iter()
            .filter(|a| !self.mapper.tasks.adopted[a.task.index()])
            .map(|a| (a.task, a.edge))
    }

    /// The placed processor-set size of an already-mapped task — equal to
    /// `placement(t).procs.len()`, read from the engine's dense per-task
    /// state instead of the schedule entry.
    pub fn placed_size(&self, t: TaskId) -> u32 {
        debug_assert!(self.mapper.tasks.entries[t.index()].is_some());
        self.mapper.tasks.alloc[t.index()]
    }

    /// Payload of edge `e` in bytes.
    pub fn edge_bytes(&self, e: EdgeId) -> f64 {
        self.mapper.dag.edge(e).bytes
    }

    /// Estimated placement of `t` on the candidate set `procs`: the task
    /// starts once every input redistribution has arrived and all the
    /// processors are free.
    pub fn estimate_on(&self, t: TaskId, procs: ProcSet) -> Placement {
        let (start, finish) = self.mapper.estimate_on(t, &procs);
        Placement {
            procs,
            start,
            finish,
        }
    }

    /// [`Self::estimate_on`], short-circuited through a sound finish-time
    /// lower bound: returns `None` — without evaluating any redistribution
    /// estimate — when the candidate provably cannot satisfy
    /// `finish < beat - 1e-15` (the strict improvement test of a
    /// best-candidate loop). Candidate selection is bit-identical to
    /// estimating every candidate, because every pruned candidate would
    /// have failed that test; the processor set is cloned only for the
    /// survivors. Pass `beat = None` (or use [`Self::estimate_on`]) when
    /// there is no incumbent yet.
    pub fn estimate_if_better(
        &self,
        t: TaskId,
        procs: &ProcSet,
        beat: Option<f64>,
    ) -> Option<Placement> {
        let (start, finish) = self.mapper.estimate_if_better(t, procs, beat)?;
        Some(Placement {
            procs: procs.clone(),
            start,
            finish,
        })
    }

    /// Estimated placement of `t` on `pred`'s placed processor set, pruned
    /// by `beat` like [`estimate_if_better`](Self::estimate_if_better) —
    /// the adoption loops' fast path: the engine rebuilds singleton sets
    /// from its dense task table instead of loading the schedule entry.
    pub fn estimate_adoption(
        &self,
        t: TaskId,
        pred: TaskId,
        beat: Option<f64>,
    ) -> Option<Placement> {
        let (procs, start, finish) = self.mapper.estimate_adoption(t, pred, beat)?;
        Some(Placement {
            procs,
            start,
            finish,
        })
    }

    /// Execution time of `t` on `procs` processors (Amdahl model).
    pub fn exec_time(&self, t: TaskId, procs: u32) -> f64 {
        self.mapper.exec_time(t, procs)
    }

    /// Work (time × processors) of `t` on `procs` processors.
    pub fn work(&self, t: TaskId, procs: u32) -> f64 {
        self.mapper.work(t, procs)
    }

    /// The scheduler's default (non-adopting) mapping for `t`, following
    /// the configured [`crate::CandidatePolicy`].
    pub fn default_mapping(&self, t: TaskId) -> Placement {
        let (procs, start, finish) = self.mapper.default_mapping(t);
        Placement {
            procs,
            start,
            finish,
        }
    }
}

/// A step-two mapping policy: decides, per ready task, whether to adopt a
/// predecessor's processor set (pack/stretch) or fall back to the default
/// list-scheduling placement.
///
/// The trait is object safe; [`Scheduler::policy`](crate::Scheduler::policy)
/// accepts any implementation, so new strategies can live outside this
/// crate. Implementations must be `Send + Sync` (campaigns evaluate many
/// scenarios in parallel with a shared policy).
pub trait MappingPolicy: Send + Sync {
    /// Short display name used by experiment tables and provenance records.
    fn name(&self) -> &str;

    /// The ready-list secondary sort this policy wants (section III-C).
    fn secondary_sort(&self) -> SecondarySort {
        SecondarySort::None
    }

    /// `true` if the policy may evaluate the same (task, candidate set)
    /// estimate more than once per run. Policies that adopt or pack search
    /// several candidates and revisit the default placement, so the engine
    /// caches per-task bound scalars and arrival bounds across candidates;
    /// a policy that only ever takes the single default estimate (HCPA)
    /// opts out, and the driver evaluates each task as one fused
    /// predecessor pass with no cached-bound machinery at all.
    fn repeats_estimates(&self) -> bool {
        true
    }

    /// Whether the driver should memoize `data_ready` per (task, candidate
    /// set). Worth it only when a policy re-estimates many *identical*
    /// non-singleton sets per task — the driver already skips duplicate
    /// singleton candidates outright. Ignored for single-estimate policies.
    fn memoize_data_ready(&self) -> bool {
        true
    }

    /// The verdict for one ready task.
    fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision;
}

impl<P: MappingPolicy + 'static> From<P> for Box<dyn MappingPolicy> {
    fn from(policy: P) -> Self {
        Box::new(policy)
    }
}

/// The HCPA baseline: allocations untouched, default placement only
/// (redistribution costs are accounted for in the estimates, but no
/// redistribution-avoiding alternative is searched — the gap RATS closes).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hcpa;

impl MappingPolicy for Hcpa {
    fn name(&self) -> &str {
        "HCPA"
    }

    fn repeats_estimates(&self) -> bool {
        false
    }

    fn decide(&self, _view: &MapView<'_, '_>, _task: TaskId) -> MappingDecision {
        MappingDecision::Default(None)
    }
}

/// The **delta** strategy (section III-A/III-B): among the predecessors
/// whose allocation is within the structural pack/stretch bounds, adopt the
/// one needing the smallest modification |δ|; ties go to the heaviest input
/// edge (the biggest avoided redistribution), then to the lowest
/// predecessor id.
#[derive(Debug, Clone, Copy)]
pub struct DeltaPolicy {
    params: DeltaParams,
}

impl DeltaPolicy {
    /// Validated constructor; `mindelta` may be given as the paper's
    /// negative value or as a magnitude — the sign is dropped.
    pub fn new(mindelta: f64, maxdelta: f64) -> Result<Self, StrategyError> {
        Ok(Self {
            params: DeltaParams::new(mindelta, maxdelta)?,
        })
    }

    /// Wraps already-validated parameters.
    pub fn from_params(params: DeltaParams) -> Self {
        Self { params }
    }

    /// The policy's parameters.
    pub fn params(&self) -> DeltaParams {
        self.params
    }
}

impl MappingPolicy for DeltaPolicy {
    fn name(&self) -> &str {
        "delta"
    }

    fn secondary_sort(&self) -> SecondarySort {
        SecondarySort::DeltaAscending
    }

    fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision {
        let k = view.allocated(task);
        // (|δ|, edge bytes, pred) of the best qualifying predecessor.
        let mut chosen: Option<(u32, f64, TaskId)> = None;
        for (pred, e) in view.adoptable_predecessors(task) {
            let np = view.placed_size(pred);
            let feasible = if np >= k {
                np - k <= self.params.delta_max(k)
            } else {
                k - np <= self.params.delta_min_magnitude(k)
            };
            if !feasible {
                continue;
            }
            let d = np.abs_diff(k);
            let bytes = view.edge_bytes(e);
            let better = match chosen {
                None => true,
                Some((bd, bb, bp)) => {
                    d < bd || (d == bd && (bytes > bb + 1e-9 || (bytes >= bb - 1e-9 && pred < bp)))
                }
            };
            if better {
                chosen = Some((d, bytes, pred));
            }
        }
        match chosen {
            Some((_, _, pred)) => {
                let procs = view.placement(pred).procs.clone();
                MappingDecision::Adopt {
                    from_pred: pred,
                    placement: view.estimate_on(task, procs),
                }
            }
            None => MappingDecision::Default(None),
        }
    }
}

/// The **time-cost** strategy: stretch when the work ratio stays above
/// `minrho` *and* the estimated finish does not regress; pack when the
/// estimated finish does not get worse.
///
/// The finish-time guard on stretching is our reading of the paper's
/// premise that the mapping procedure can "estimate accurately the
/// respective finish time of a task using several modified allocations"
/// (section III): adopting a busy parent set that *delays* the task would
/// contradict the strategy's goal (and, empirically, inverts the paper's
/// time-cost > delta > HCPA ranking).
#[derive(Debug, Clone, Copy)]
pub struct TimeCostPolicy {
    params: TimeCostParams,
}

impl TimeCostPolicy {
    /// Validated constructor.
    pub fn new(minrho: f64, allow_packing: bool) -> Result<Self, StrategyError> {
        Ok(Self {
            params: TimeCostParams::new(minrho, allow_packing)?,
        })
    }

    /// Wraps already-validated parameters.
    pub fn from_params(params: TimeCostParams) -> Self {
        Self { params }
    }

    /// The policy's parameters.
    pub fn params(&self) -> TimeCostParams {
        self.params
    }
}

impl MappingPolicy for TimeCostPolicy {
    fn name(&self) -> &str {
        "time-cost"
    }

    fn memoize_data_ready(&self) -> bool {
        // Measured on dense 10k-task DAGs: the adoption-candidate dedup
        // leaves the memo a <5% hit rate — two set hashes per miss cost
        // more than the rare rebuilt walk saves.
        false
    }

    fn secondary_sort(&self) -> SecondarySort {
        SecondarySort::GainDescending
    }

    fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision {
        let k = view.allocated(task);
        let own_work = view.work(task, k);
        let default = view.default_mapping(task);
        // Stretch (or adopt an equal-size predecessor, ρ = 1): among the
        // efficient enough candidates (ρ ≥ minrho), take the best finish.
        let mut best_stretch: Option<(TaskId, Placement)> = None;
        // ρ is a pure function of the candidate size np, and runs of
        // predecessors share a size (most are singletons) — remember the
        // last (np, ρ) instead of re-dividing per predecessor.
        let mut last_rho: Option<(u32, f64)> = None;
        for (pred, _) in view.adoptable_predecessors(task) {
            let np = view.placed_size(pred);
            if np < k {
                continue;
            }
            let rho = if own_work == 0.0 {
                1.0
            } else {
                match last_rho {
                    Some((n, r)) if n == np => r,
                    _ => {
                        let r = own_work / view.work(task, np);
                        last_rho = Some((np, r));
                        r
                    }
                }
            };
            if rho < self.params.minrho {
                continue;
            }
            let beat = best_stretch.as_ref().map(|(_, b)| b.finish);
            let Some(p) = view.estimate_adoption(task, pred, beat) else {
                continue; // provably cannot beat the incumbent
            };
            if best_stretch
                .as_ref()
                .is_none_or(|(_, b)| p.finish < b.finish - 1e-15)
            {
                best_stretch = Some((pred, p));
            }
        }
        if let Some((pred, placement)) = best_stretch {
            if placement.finish <= default.finish + 1e-15 {
                return MappingDecision::Adopt {
                    from_pred: pred,
                    placement,
                };
            }
        }
        if !self.params.allow_packing || k == 1 {
            // No predecessor can be placed on fewer than one processor, so
            // single-processor allocations have nothing to pack onto.
            return MappingDecision::Default(Some(default));
        }
        // Pack: adopt the smaller predecessor allocation with the best
        // estimated finish, but only if it beats the default mapping.
        let mut best_pack: Option<(TaskId, Placement)> = None;
        for (pred, _) in view.adoptable_predecessors(task) {
            let np = view.placed_size(pred);
            if np >= k {
                continue;
            }
            let beat = best_pack.as_ref().map(|(_, b)| b.finish);
            let Some(p) = view.estimate_adoption(task, pred, beat) else {
                continue;
            };
            if best_pack
                .as_ref()
                .is_none_or(|(_, b)| p.finish < b.finish - 1e-15)
            {
                best_pack = Some((pred, p));
            }
        }
        match best_pack {
            Some((pred, placement)) if placement.finish <= default.finish + 1e-15 => {
                MappingDecision::Adopt {
                    from_pred: pred,
                    placement,
                }
            }
            _ => MappingDecision::Default(Some(default)),
        }
    }
}

/// The **combined** strategy (extension beyond the paper, in the direction
/// of its future-work "automatic tuning"): predecessors within the delta
/// bounds are candidates; the best estimated finish wins, and the adoption
/// must not regress versus the default mapping. Stretching additionally
/// honours the `minrho` efficiency threshold.
#[derive(Debug, Clone, Copy)]
pub struct CombinedPolicy {
    params: CombinedParams,
}

impl CombinedPolicy {
    /// Validated constructor (`mindelta` sign is dropped, as in
    /// [`DeltaPolicy::new`]).
    pub fn new(mindelta: f64, maxdelta: f64, minrho: f64) -> Result<Self, StrategyError> {
        Ok(Self {
            params: CombinedParams::new(DeltaParams::new(mindelta, maxdelta)?, minrho)?,
        })
    }

    /// Wraps already-validated parameters.
    pub fn from_params(params: CombinedParams) -> Self {
        Self { params }
    }

    /// The policy's parameters.
    pub fn params(&self) -> CombinedParams {
        self.params
    }
}

impl MappingPolicy for CombinedPolicy {
    fn name(&self) -> &str {
        "combined"
    }

    fn secondary_sort(&self) -> SecondarySort {
        SecondarySort::DeltaAscending
    }

    fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision {
        let k = view.allocated(task);
        let own_work = view.work(task, k);
        let default = view.default_mapping(task);
        let mut best: Option<(TaskId, Placement)> = None;
        let mut last_rho: Option<(u32, f64)> = None;
        for (pred, _) in view.adoptable_predecessors(task) {
            let np = view.placed_size(pred);
            let feasible = if np >= k {
                let rho = if own_work == 0.0 {
                    1.0
                } else {
                    match last_rho {
                        Some((n, r)) if n == np => r,
                        _ => {
                            let r = own_work / view.work(task, np);
                            last_rho = Some((np, r));
                            r
                        }
                    }
                };
                np - k <= self.params.delta.delta_max(k) && rho >= self.params.minrho
            } else {
                k - np <= self.params.delta.delta_min_magnitude(k)
            };
            if !feasible {
                continue;
            }
            let beat = best.as_ref().map(|(_, b)| b.finish);
            let Some(p) = view.estimate_adoption(task, pred, beat) else {
                continue;
            };
            if best
                .as_ref()
                .is_none_or(|(_, b)| p.finish < b.finish - 1e-15)
            {
                best = Some((pred, p));
            }
        }
        match best {
            Some((pred, placement)) if placement.finish <= default.finish + 1e-15 => {
                MappingDecision::Adopt {
                    from_pred: pred,
                    placement,
                }
            }
            _ => MappingDecision::Default(Some(default)),
        }
    }
}

/// The closed strategy enum doubles as a policy: it delegates to the
/// matching trait impl, so `Scheduler::strategy(...)` and
/// `Scheduler::policy(...)` produce byte-identical schedules (asserted by
/// the `policy_parity` integration tests).
impl MappingPolicy for MappingStrategy {
    fn name(&self) -> &str {
        MappingStrategy::name(self)
    }

    fn secondary_sort(&self) -> SecondarySort {
        MappingStrategy::secondary_sort(self)
    }

    fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision {
        match *self {
            MappingStrategy::Hcpa => Hcpa.decide(view, task),
            MappingStrategy::RatsDelta(p) => DeltaPolicy::from_params(p).decide(view, task),
            MappingStrategy::RatsTimeCost(p) => TimeCostPolicy::from_params(p).decide(view, task),
            MappingStrategy::RatsCombined(p) => CombinedPolicy::from_params(p).decide(view, task),
        }
    }
}
