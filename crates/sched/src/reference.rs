//! The retained **naive reference engine**: the mapping driver exactly as
//! it was before the incremental refactor.
//!
//! Kept verbatim so that (a) parity tests can assert the incremental engine
//! in [`crate::mapping`] produces byte-identical schedules, and (b) the
//! mapping benches can measure before/after throughput in the same run.
//! Compiled only for tests and under the `reference` cargo feature — it
//! never ships in a default build.
//!
//! Differences to the incremental engine (each one a cost, none a behavior
//! change):
//!
//! * readiness is re-derived per round by scanning **all** tasks
//!   (O(n · in-degree) per round);
//! * ready-list sort keys (δ, gain) are recomputed inside the comparator
//!   (O(in-degree) per comparison);
//! * `estimate_on` materializes a full [`rats_redist::redistribute`]
//!   transfer matrix per (task, candidate) pair and reduces it with
//!   [`rats_redist::estimate_time`] — no memoization;
//! * `earliest_k` / `pred_candidate` fully sort all P processors per task.

use rats_dag::TaskId;
use rats_platform::ProcSet;
use rats_redist::{align_for_self_comm, estimate_time, redistribute};

use crate::mapping::Mapper;
use crate::schedule::Schedule;
use crate::strategy::SecondarySort;

impl Mapper<'_> {
    /// Naive `estimate_on`: one transfer matrix per predecessor edge.
    pub(crate) fn estimate_on_naive(&self, t: TaskId, procs: &ProcSet) -> (f64, f64) {
        let mut data_ready = 0.0f64;
        for (pred, e) in self.dag.predecessors(t) {
            let pe = self.entry_of(pred);
            let bytes = self.dag.edge(e).bytes;
            let r = redistribute(bytes, &pe.procs, procs);
            let arrival = pe.est_finish + estimate_time(&r, self.platform);
            data_ready = data_ready.max(arrival);
        }
        let proc_avail = procs
            .iter()
            .map(|p| self.proc_ready[p as usize])
            .fold(0.0f64, f64::max);
        let start = data_ready.max(proc_avail);
        (start, start + self.exec_time(t, procs.len()))
    }

    /// Naive `earliest_k`: full sort of all P processors.
    pub(crate) fn earliest_k_naive(&self, t: TaskId, k: u32) -> ProcSet {
        let mut procs: Vec<u32> = (0..self.platform.num_procs()).collect();
        procs.sort_by(|&a, &b| {
            self.proc_ready[a as usize]
                .partial_cmp(&self.proc_ready[b as usize])
                .expect("ready times are finite")
                .then(a.cmp(&b))
        });
        procs.truncate(k as usize);
        procs.sort_unstable(); // deterministic rank order before alignment
        let set = ProcSet::new(procs);
        match self.heaviest_pred(t) {
            Some(p) => align_for_self_comm(&self.entry_of(p).procs, &set),
            None => set,
        }
    }

    /// Naive `pred_candidate`: full sort of the non-member processors.
    pub(crate) fn pred_candidate_naive(&self, pred: TaskId, k: u32) -> ProcSet {
        let pp = &self.entry_of(pred).procs;
        if pp.len() >= k {
            pp.first_k(k)
        } else {
            let mut procs: Vec<u32> = pp.as_slice().to_vec();
            let mut others: Vec<u32> = (0..self.platform.num_procs())
                .filter(|p| !pp.contains(*p))
                .collect();
            others.sort_by(|&a, &b| {
                self.proc_ready[a as usize]
                    .partial_cmp(&self.proc_ready[b as usize])
                    .expect("ready times are finite")
                    .then(a.cmp(&b))
            });
            procs.extend(others.into_iter().take((k - pp.len()) as usize));
            ProcSet::new(procs)
        }
    }

    /// Naive ready-list sort: secondary keys recomputed per comparison.
    fn sort_ready_naive(&self, ready: &mut [TaskId]) {
        let secondary = self.policy_secondary_sort();
        ready.sort_by(|&a, &b| {
            let bl = self.tasks.bottom[b.index()]
                .partial_cmp(&self.tasks.bottom[a.index()])
                .expect("bottom levels are finite");
            let sec = match secondary {
                SecondarySort::None => std::cmp::Ordering::Equal,
                SecondarySort::DeltaAscending => self
                    .delta_key(a)
                    .partial_cmp(&self.delta_key(b))
                    .expect("delta keys are not NaN"),
                SecondarySort::GainDescending => self
                    .gain_key(b)
                    .partial_cmp(&self.gain_key(a))
                    .expect("gain keys are not NaN"),
            };
            bl.then(sec).then(a.index().cmp(&b.index()))
        });
    }

    /// Naive Algorithm 1 driver: per-round full readiness re-scan.
    pub(crate) fn run_naive(mut self) -> Schedule {
        let n = self.dag.num_tasks();
        let mut num_mapped = 0usize;
        while num_mapped < n {
            let mut ready: Vec<TaskId> = self
                .dag
                .task_ids()
                .filter(|&t| {
                    self.tasks.entries[t.index()].is_none()
                        && self
                            .dag
                            .predecessors(t)
                            .all(|(p, _)| self.tasks.entries[p.index()].is_some())
                })
                .collect();
            assert!(!ready.is_empty(), "acyclic graph always has ready tasks");
            self.sort_ready_naive(&mut ready);
            for t in ready {
                let (procs, start, finish) = self.decide(t);
                self.place(t, procs, start, finish);
                num_mapped += 1;
            }
        }
        self.into_schedule()
    }
}
