//! Schedule representation, validation and derived metrics.

use std::fmt;

use rats_dag::{TaskGraph, TaskId};
use rats_platform::{Platform, ProcSet};

/// The placement of one task: its processor set and the mapper's estimated
/// start/finish times (the *estimates* assume contention-free
/// redistributions; `rats-sim` replays the schedule with contention).
#[derive(Debug, Clone)]
pub struct ScheduleEntry {
    /// The placed task.
    pub task: TaskId,
    /// The ordered processor set the task runs on (rank order = block
    /// distribution order).
    pub procs: ProcSet,
    /// Estimated start time (s).
    pub est_start: f64,
    /// Estimated finish time (s).
    pub est_finish: f64,
}

/// Problems detected by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A task has an empty processor set.
    EmptyAllocation(TaskId),
    /// A task references a processor outside the platform.
    UnknownProcessor(TaskId, u32),
    /// A task is estimated to start before a predecessor finishes.
    StartsBeforePredecessor {
        /// The offending task.
        task: TaskId,
        /// The predecessor it overtakes.
        pred: TaskId,
    },
    /// Two tasks overlap in time on a shared processor.
    ProcessorOverlap {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
        /// The doubly-booked processor.
        proc: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::EmptyAllocation(t) => write!(f, "task {t} has no processors"),
            ScheduleError::UnknownProcessor(t, p) => {
                write!(f, "task {t} uses unknown processor {p}")
            }
            ScheduleError::StartsBeforePredecessor { task, pred } => {
                write!(f, "task {task} starts before predecessor {pred} finishes")
            }
            ScheduleError::ProcessorOverlap { a, b, proc } => {
                write!(f, "tasks {a} and {b} overlap on processor {proc}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete mapping of a task graph onto a platform.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// One entry per task, indexed by [`TaskId::index`].
    pub entries: Vec<ScheduleEntry>,
    /// The order in which the mapper placed tasks (per-processor execution
    /// follows this order in the simulator).
    pub order: Vec<TaskId>,
}

impl Schedule {
    /// The entry of task `t`.
    #[inline]
    pub fn entry(&self, t: TaskId) -> &ScheduleEntry {
        &self.entries[t.index()]
    }

    /// The mapper's estimated makespan: the latest estimated finish time.
    pub fn makespan_estimate(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.est_finish)
            .fold(0.0, f64::max)
    }

    /// The schedule's total *work* `Σ T(t, Np(t)) · Np(t)` in
    /// processor-seconds — the paper's resource-consumption metric
    /// (independent of contention, so it is exact, not an estimate).
    pub fn total_work(&self, dag: &TaskGraph, platform: &Platform) -> f64 {
        self.entries
            .iter()
            .map(|e| dag.task(e.task).cost.work(e.procs.len(), platform.gflops()))
            .sum()
    }

    /// Checks structural sanity: every allocation non-empty and on-platform,
    /// estimated precedences respected, no processor double-booked.
    pub fn validate(&self, dag: &TaskGraph, platform: &Platform) -> Result<(), ScheduleError> {
        for e in &self.entries {
            if e.procs.is_empty() {
                return Err(ScheduleError::EmptyAllocation(e.task));
            }
            for p in e.procs.iter() {
                if p >= platform.num_procs() {
                    return Err(ScheduleError::UnknownProcessor(e.task, p));
                }
            }
        }
        let tol = 1e-9 * self.makespan_estimate().max(1.0);
        for t in dag.task_ids() {
            let e = &self.entries[t.index()];
            for (pred, _) in dag.predecessors(t) {
                if e.est_start + tol < self.entries[pred.index()].est_finish {
                    return Err(ScheduleError::StartsBeforePredecessor { task: t, pred });
                }
            }
        }
        // Processor booking intervals must not overlap.
        let mut per_proc: Vec<Vec<(f64, f64, TaskId)>> =
            vec![Vec::new(); platform.num_procs() as usize];
        for e in &self.entries {
            for p in e.procs.iter() {
                per_proc[p as usize].push((e.est_start, e.est_finish, e.task));
            }
        }
        for (p, intervals) in per_proc.iter_mut().enumerate() {
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for w in intervals.windows(2) {
                let (_, end_a, task_a) = w[0];
                let (start_b, _, task_b) = w[1];
                if start_b + tol < end_a {
                    return Err(ScheduleError::ProcessorOverlap {
                        a: task_a,
                        b: task_b,
                        proc: p as u32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Renders an ASCII Gantt chart of the estimated schedule (one row per
    /// processor, `width` columns spanning the makespan).
    pub fn gantt_ascii(&self, platform: &Platform, width: usize) -> String {
        use std::fmt::Write as _;
        let makespan = self.makespan_estimate().max(1e-12);
        let mut rows = vec![vec![b'.'; width]; platform.num_procs() as usize];
        for (i, e) in self.entries.iter().enumerate() {
            let c = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"[i % 62];
            let from = ((e.est_start / makespan) * width as f64).floor() as usize;
            let to = ((e.est_finish / makespan) * width as f64).ceil() as usize;
            for p in e.procs.iter() {
                let row = &mut rows[p as usize];
                for cell in row
                    .iter_mut()
                    .take(to.clamp(from + 1, width))
                    .skip(from.min(width - 1))
                {
                    *cell = c;
                }
            }
        }
        let mut out = String::new();
        for (p, row) in rows.iter().enumerate() {
            let _ = writeln!(out, "p{p:03} |{}|", String::from_utf8_lossy(row));
        }
        let _ = writeln!(out, "      0 {:>width$.3}s", makespan, width = width - 2);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_model::TaskCost;
    use rats_platform::ClusterSpec;

    fn tiny_platform() -> Platform {
        Platform::from_spec(&ClusterSpec::flat("t", 4, 1.0))
    }

    fn two_task_dag() -> (TaskGraph, [TaskId; 2]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(1000, 1.0, 0.0));
        let b = g.add_task("b", TaskCost::new(1000, 1.0, 0.0));
        g.add_edge(a, b, 8000.0);
        (g, [a, b])
    }

    fn entry(t: TaskId, procs: Vec<u32>, s: f64, f: f64) -> ScheduleEntry {
        ScheduleEntry {
            task: t,
            procs: ProcSet::new(procs),
            est_start: s,
            est_finish: f,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, [a, b]) = two_task_dag();
        let p = tiny_platform();
        let s = Schedule {
            entries: vec![
                entry(a, vec![0, 1], 0.0, 1.0),
                entry(b, vec![0, 1], 1.5, 2.5),
            ],
            order: vec![a, b],
        };
        s.validate(&g, &p).unwrap();
        assert_eq!(s.makespan_estimate(), 2.5);
    }

    #[test]
    fn precedence_violation_detected() {
        let (g, [a, b]) = two_task_dag();
        let p = tiny_platform();
        let s = Schedule {
            entries: vec![entry(a, vec![0], 0.0, 2.0), entry(b, vec![1], 1.0, 3.0)],
            order: vec![a, b],
        };
        assert!(matches!(
            s.validate(&g, &p),
            Err(ScheduleError::StartsBeforePredecessor { .. })
        ));
    }

    #[test]
    fn overlap_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(1000, 1.0, 0.0));
        let b = g.add_task("b", TaskCost::new(1000, 1.0, 0.0));
        let p = tiny_platform();
        let s = Schedule {
            entries: vec![entry(a, vec![2], 0.0, 2.0), entry(b, vec![2], 1.0, 3.0)],
            order: vec![a, b],
        };
        assert!(matches!(
            s.validate(&g, &p),
            Err(ScheduleError::ProcessorOverlap { proc: 2, .. })
        ));
    }

    #[test]
    fn unknown_processor_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(1000, 1.0, 0.0));
        let p = tiny_platform();
        let s = Schedule {
            entries: vec![entry(a, vec![9], 0.0, 1.0)],
            order: vec![a],
        };
        assert_eq!(
            s.validate(&g, &p),
            Err(ScheduleError::UnknownProcessor(a, 9))
        );
    }

    #[test]
    fn work_accounts_processor_seconds() {
        let (g, [a, b]) = two_task_dag();
        let p = tiny_platform();
        let s = Schedule {
            entries: vec![entry(a, vec![0, 1], 0.0, 1.0), entry(b, vec![2], 1.0, 2.0)],
            order: vec![a, b],
        };
        // a: T(2 procs) · 2; b: T(1 proc) · 1. α = 0 → T(2) = T(1)/2.
        let t1 = g.task(a).cost.time(1, 1.0);
        let expected = t1 / 2.0 * 2.0 + t1;
        assert!((s.total_work(&g, &p) - expected).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_every_processor_row() {
        let (g, [a, b]) = two_task_dag();
        let _ = g;
        let p = tiny_platform();
        let s = Schedule {
            entries: vec![entry(a, vec![0, 1], 0.0, 1.0), entry(b, vec![0], 1.0, 2.0)],
            order: vec![a, b],
        };
        let gantt = s.gantt_ascii(&p, 40);
        assert_eq!(gantt.lines().count(), 5, "4 procs + time axis");
        assert!(gantt.contains("p000"));
    }
}
