//! Mapping strategies and their tunable parameters (paper, section III).
//!
//! [`MappingStrategy`] is the closed, `Copy` enumeration of the shipped
//! policies — handy for sweeps, tables and serialized experiment specs. It
//! is a thin constructor layer: each variant delegates its decisions to the
//! matching [`crate::MappingPolicy`] trait impl in [`crate::policy`], which
//! is the open extension point. Parameter validation lives in `Result`
//! constructors ([`DeltaParams::new`] and friends) returning
//! [`StrategyError`]; the enum's short-hand constructors panic on invalid
//! input for ergonomic literals in examples and tests.

use std::fmt;

/// A rejected strategy parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyError {
    /// `mindelta` magnitude outside `[0, 1]` (or NaN).
    Mindelta(f64),
    /// `maxdelta` negative, infinite or NaN.
    Maxdelta(f64),
    /// `minrho` outside `(0, 1]` (or NaN).
    Minrho(f64),
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::Mindelta(v) => {
                write!(f, "mindelta magnitude must be in [0, 1], got {v}")
            }
            StrategyError::Maxdelta(v) => {
                write!(
                    f,
                    "maxdelta must be a finite non-negative fraction, got {v}"
                )
            }
            StrategyError::Minrho(v) => write!(f, "minrho must be in (0, 1], got {v}"),
        }
    }
}

impl std::error::Error for StrategyError {}

/// Parameters of the **delta** strategy: purely structural bounds on how far
/// an allocation may move to adopt a predecessor's processor set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaParams {
    /// Fraction of the original allocation that may be *removed* when
    /// packing (the paper's `mindelta`, given here as a magnitude: `0.5`
    /// means the packed allocation has at least `⌈0.5·Np(t)⌉` processors;
    /// `0` disables packing).
    pub mindelta: f64,
    /// Fraction of the original allocation that may be *added* when
    /// stretching (`maxdelta`; `0` disables stretching beyond equal-size
    /// predecessors).
    pub maxdelta: f64,
}

impl DeltaParams {
    /// Validated constructor; `mindelta` may be given as the paper's
    /// negative value or as a magnitude — the sign is dropped.
    pub fn new(mindelta: f64, maxdelta: f64) -> Result<Self, StrategyError> {
        let mindelta = mindelta.abs();
        if !(0.0..=1.0).contains(&mindelta) {
            return Err(StrategyError::Mindelta(mindelta));
        }
        if !(maxdelta >= 0.0 && maxdelta.is_finite()) {
            return Err(StrategyError::Maxdelta(maxdelta));
        }
        Ok(Self { mindelta, maxdelta })
    }

    /// The paper's naive starting point: `mindelta = maxdelta = 0.5`.
    pub fn naive() -> Self {
        Self {
            mindelta: 0.5,
            maxdelta: 0.5,
        }
    }

    /// Largest allowed stretch in processors for a task currently allocated
    /// `np` processors: `δmax = ⌊maxdelta · np⌋`.
    pub fn delta_max(&self, np: u32) -> u32 {
        (self.maxdelta * f64::from(np)).floor() as u32
    }

    /// Largest allowed shrink in processors: `|δmin| = ⌊mindelta · np⌋`
    /// (the paper writes `δmin` as a negative number; we keep magnitudes).
    pub fn delta_min_magnitude(&self, np: u32) -> u32 {
        let m = (self.mindelta * f64::from(np)).floor() as u32;
        // Packing may never remove *all* processors.
        m.min(np.saturating_sub(1))
    }
}

/// Parameters of the **time-cost** strategy: work-efficiency driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeCostParams {
    /// Minimal acceptable work ratio `ρ = (T(t,n)·n)/(T(t,n')·n') ∈ (0, 1]`
    /// for stretching onto a larger predecessor allocation. The closer to
    /// 1, the stricter the efficiency requirement.
    pub minrho: f64,
    /// Whether packing (shrinking onto a smaller predecessor allocation) is
    /// allowed; a packed mapping is only taken when it does not worsen the
    /// task's estimated finish time.
    pub allow_packing: bool,
}

impl TimeCostParams {
    /// Validated constructor.
    pub fn new(minrho: f64, allow_packing: bool) -> Result<Self, StrategyError> {
        if !(minrho > 0.0 && minrho <= 1.0) {
            return Err(StrategyError::Minrho(minrho));
        }
        Ok(Self {
            minrho,
            allow_packing,
        })
    }

    /// The paper's naive starting point: packing on, `minrho = 0.5`.
    pub fn naive() -> Self {
        Self {
            minrho: 0.5,
            allow_packing: true,
        }
    }
}

/// The secondary, *stable* sort applied to ready tasks of equal bottom-level
/// priority (paper, section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondarySort {
    /// No secondary criterion (plain HCPA).
    None,
    /// Increasing `δ(t) = min(δ⁺, −δ⁻)`: tasks needing the smallest
    /// allocation modification first.
    DeltaAscending,
    /// Decreasing `gain(t) = maxᵢ (T(t, Np(t)) − T(t, Np(predᵢ)))`: tasks
    /// with the most to gain from a parent's allocation first.
    GainDescending,
}

/// How the default (non-adopting) mapping chooses candidate processor
/// sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidatePolicy {
    /// Map onto the `k` earliest-available processors only — the CPA/HCPA
    /// list-scheduling placement of the paper's era. Redistribution costs
    /// are *accounted for* in the finish-time estimate, but the placement
    /// does not search for redistribution-avoiding alternatives: that gap
    /// is precisely what RATS closes.
    #[default]
    EarliestK,
    /// Additionally evaluate one candidate derived from each predecessor's
    /// processor set (its prefix, or the set padded with the earliest free
    /// processors) and keep the best estimated finish. A *stronger*
    /// baseline than the paper's HCPA, provided for ablation studies.
    ParentAware,
}

/// Parameters of the **combined** strategy (an extension beyond the paper,
/// in the direction of its future-work "automatic tuning"): candidate
/// predecessors are gated structurally like *delta*, but the adoption is
/// validated with finish-time estimates like *time-cost*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedParams {
    /// Structural bounds (pack/stretch fractions), as in the delta strategy.
    pub delta: DeltaParams,
    /// Minimal acceptable work ratio for stretching, as in time-cost.
    pub minrho: f64,
}

impl CombinedParams {
    /// Validated constructor.
    pub fn new(delta: DeltaParams, minrho: f64) -> Result<Self, StrategyError> {
        if !(minrho > 0.0 && minrho <= 1.0) {
            return Err(StrategyError::Minrho(minrho));
        }
        Ok(Self { delta, minrho })
    }
}

/// Which mapping procedure step two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingStrategy {
    /// Baseline list scheduling with untouched allocations (HCPA's mapping,
    /// redistribution costs included in the finish-time estimates).
    Hcpa,
    /// RATS with the delta strategy.
    RatsDelta(DeltaParams),
    /// RATS with the time-cost strategy.
    RatsTimeCost(TimeCostParams),
    /// RATS with the combined strategy (extension; see [`CombinedParams`]).
    RatsCombined(CombinedParams),
}

impl MappingStrategy {
    /// Delta strategy; `mindelta` may be given as the paper's negative value
    /// or as a magnitude — the sign is dropped. See [`Self::try_rats_delta`]
    /// for the non-panicking form.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn rats_delta(mindelta: f64, maxdelta: f64) -> Self {
        Self::try_rats_delta(mindelta, maxdelta).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Delta strategy with validated parameters.
    pub fn try_rats_delta(mindelta: f64, maxdelta: f64) -> Result<Self, StrategyError> {
        Ok(Self::RatsDelta(DeltaParams::new(mindelta, maxdelta)?))
    }

    /// Time-cost strategy. See [`Self::try_rats_time_cost`] for the
    /// non-panicking form.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn rats_time_cost(minrho: f64, allow_packing: bool) -> Self {
        Self::try_rats_time_cost(minrho, allow_packing).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Time-cost strategy with validated parameters.
    pub fn try_rats_time_cost(minrho: f64, allow_packing: bool) -> Result<Self, StrategyError> {
        Ok(Self::RatsTimeCost(TimeCostParams::new(
            minrho,
            allow_packing,
        )?))
    }

    /// Combined strategy: delta bounds + time-cost estimate validation
    /// (`mindelta` sign is dropped, as in [`Self::rats_delta`]). See
    /// [`Self::try_rats_combined`] for the non-panicking form.
    ///
    /// # Panics
    /// Panics if the parameters are invalid.
    pub fn rats_combined(mindelta: f64, maxdelta: f64, minrho: f64) -> Self {
        Self::try_rats_combined(mindelta, maxdelta, minrho).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Combined strategy with validated parameters.
    pub fn try_rats_combined(
        mindelta: f64,
        maxdelta: f64,
        minrho: f64,
    ) -> Result<Self, StrategyError> {
        Ok(Self::RatsCombined(CombinedParams::new(
            DeltaParams::new(mindelta, maxdelta)?,
            minrho,
        )?))
    }

    /// The ready-list secondary sort this strategy uses.
    pub fn secondary_sort(&self) -> SecondarySort {
        match self {
            MappingStrategy::Hcpa => SecondarySort::None,
            MappingStrategy::RatsDelta(_) => SecondarySort::DeltaAscending,
            MappingStrategy::RatsTimeCost(_) => SecondarySort::GainDescending,
            MappingStrategy::RatsCombined(_) => SecondarySort::DeltaAscending,
        }
    }

    /// Short display name used by the experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            MappingStrategy::Hcpa => "HCPA",
            MappingStrategy::RatsDelta(_) => "delta",
            MappingStrategy::RatsTimeCost(_) => "time-cost",
            MappingStrategy::RatsCombined(_) => "combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_bounds_follow_paper_example() {
        // Np(t) = 6, maxdelta = 0.5 → at most 9 processors, δmax = 3.
        let p = DeltaParams::new(0.5, 0.5).unwrap();
        assert_eq!(p.delta_max(6), 3);
        // mindelta = 0.5 → at least 3 processors, |δmin| = 3.
        assert_eq!(p.delta_min_magnitude(6), 3);
    }

    #[test]
    fn packing_never_empties_an_allocation() {
        let p = DeltaParams::new(1.0, 0.0).unwrap();
        assert_eq!(p.delta_min_magnitude(1), 0);
        assert_eq!(p.delta_min_magnitude(4), 3);
    }

    #[test]
    fn negative_mindelta_is_normalized() {
        let s = MappingStrategy::rats_delta(-0.75, 1.0);
        match s {
            MappingStrategy::RatsDelta(p) => assert_eq!(p.mindelta, 0.75),
            _ => unreachable!(),
        }
    }

    #[test]
    fn constructors_reject_bad_parameters_with_typed_errors() {
        assert_eq!(
            DeltaParams::new(1.5, 0.5),
            Err(StrategyError::Mindelta(1.5))
        );
        assert!(matches!(
            DeltaParams::new(0.5, f64::NAN).unwrap_err(),
            StrategyError::Maxdelta(v) if v.is_nan()
        ));
        assert_eq!(
            TimeCostParams::new(0.0, true),
            Err(StrategyError::Minrho(0.0))
        );
        assert_eq!(
            CombinedParams::new(DeltaParams::naive(), 1.5),
            Err(StrategyError::Minrho(1.5))
        );
        assert!(MappingStrategy::try_rats_delta(0.5, 0.5).is_ok());
        assert!(MappingStrategy::try_rats_time_cost(2.0, true).is_err());
        assert!(MappingStrategy::try_rats_combined(0.5, 1.0, 0.0).is_err());
    }

    #[test]
    fn errors_render_the_offending_parameter() {
        assert!(StrategyError::Minrho(0.0).to_string().contains("minrho"));
        assert!(StrategyError::Mindelta(2.0)
            .to_string()
            .contains("mindelta"));
        assert!(StrategyError::Maxdelta(-1.0)
            .to_string()
            .contains("maxdelta"));
    }

    #[test]
    fn secondary_sorts_match_strategies() {
        assert_eq!(MappingStrategy::Hcpa.secondary_sort(), SecondarySort::None);
        assert_eq!(
            MappingStrategy::rats_delta(0.5, 0.5).secondary_sort(),
            SecondarySort::DeltaAscending
        );
        assert_eq!(
            MappingStrategy::rats_time_cost(0.5, true).secondary_sort(),
            SecondarySort::GainDescending
        );
    }

    #[test]
    fn combined_strategy_construction() {
        let s = MappingStrategy::rats_combined(-0.5, 1.0, 0.4);
        assert_eq!(s.name(), "combined");
        assert_eq!(s.secondary_sort(), SecondarySort::DeltaAscending);
        match s {
            MappingStrategy::RatsCombined(p) => {
                assert_eq!(p.delta.mindelta, 0.5);
                assert_eq!(p.delta.maxdelta, 1.0);
                assert_eq!(p.minrho, 0.4);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "minrho")]
    fn combined_rejects_bad_rho() {
        MappingStrategy::rats_combined(0.5, 1.0, 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(MappingStrategy::Hcpa.name(), "HCPA");
        assert_eq!(MappingStrategy::rats_delta(0.5, 0.5).name(), "delta");
        assert_eq!(
            MappingStrategy::rats_time_cost(0.2, false).name(),
            "time-cost"
        );
    }

    #[test]
    #[should_panic(expected = "minrho")]
    fn rejects_zero_rho() {
        MappingStrategy::rats_time_cost(0.0, true);
    }
}
