//! Mapping strategies and their tunable parameters (paper, section III).

/// Parameters of the **delta** strategy: purely structural bounds on how far
/// an allocation may move to adopt a predecessor's processor set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaParams {
    /// Fraction of the original allocation that may be *removed* when
    /// packing (the paper's `mindelta`, given here as a magnitude: `0.5`
    /// means the packed allocation has at least `⌈0.5·Np(t)⌉` processors;
    /// `0` disables packing).
    pub mindelta: f64,
    /// Fraction of the original allocation that may be *added* when
    /// stretching (`maxdelta`; `0` disables stretching beyond equal-size
    /// predecessors).
    pub maxdelta: f64,
}

impl DeltaParams {
    /// The paper's naive starting point: `mindelta = maxdelta = 0.5`.
    pub fn naive() -> Self {
        Self {
            mindelta: 0.5,
            maxdelta: 0.5,
        }
    }

    /// Largest allowed stretch in processors for a task currently allocated
    /// `np` processors: `δmax = ⌊maxdelta · np⌋`.
    pub fn delta_max(&self, np: u32) -> u32 {
        (self.maxdelta * f64::from(np)).floor() as u32
    }

    /// Largest allowed shrink in processors: `|δmin| = ⌊mindelta · np⌋`
    /// (the paper writes `δmin` as a negative number; we keep magnitudes).
    pub fn delta_min_magnitude(&self, np: u32) -> u32 {
        let m = (self.mindelta * f64::from(np)).floor() as u32;
        // Packing may never remove *all* processors.
        m.min(np.saturating_sub(1))
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.mindelta),
            "mindelta magnitude must be in [0, 1], got {}",
            self.mindelta
        );
        assert!(
            self.maxdelta >= 0.0 && self.maxdelta.is_finite(),
            "maxdelta must be a finite non-negative fraction, got {}",
            self.maxdelta
        );
    }
}

/// Parameters of the **time-cost** strategy: work-efficiency driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeCostParams {
    /// Minimal acceptable work ratio `ρ = (T(t,n)·n)/(T(t,n')·n') ∈ (0, 1]`
    /// for stretching onto a larger predecessor allocation. The closer to
    /// 1, the stricter the efficiency requirement.
    pub minrho: f64,
    /// Whether packing (shrinking onto a smaller predecessor allocation) is
    /// allowed; a packed mapping is only taken when it does not worsen the
    /// task's estimated finish time.
    pub allow_packing: bool,
}

impl TimeCostParams {
    /// The paper's naive starting point: packing on, `minrho = 0.5`.
    pub fn naive() -> Self {
        Self {
            minrho: 0.5,
            allow_packing: true,
        }
    }

    fn validate(&self) {
        assert!(
            self.minrho > 0.0 && self.minrho <= 1.0,
            "minrho must be in (0, 1], got {}",
            self.minrho
        );
    }
}

/// The secondary, *stable* sort applied to ready tasks of equal bottom-level
/// priority (paper, section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondarySort {
    /// No secondary criterion (plain HCPA).
    None,
    /// Increasing `δ(t) = min(δ⁺, −δ⁻)`: tasks needing the smallest
    /// allocation modification first.
    DeltaAscending,
    /// Decreasing `gain(t) = maxᵢ (T(t, Np(t)) − T(t, Np(predᵢ)))`: tasks
    /// with the most to gain from a parent's allocation first.
    GainDescending,
}

/// How the default (non-adopting) mapping chooses candidate processor
/// sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidatePolicy {
    /// Map onto the `k` earliest-available processors only — the CPA/HCPA
    /// list-scheduling placement of the paper's era. Redistribution costs
    /// are *accounted for* in the finish-time estimate, but the placement
    /// does not search for redistribution-avoiding alternatives: that gap
    /// is precisely what RATS closes.
    #[default]
    EarliestK,
    /// Additionally evaluate one candidate derived from each predecessor's
    /// processor set (its prefix, or the set padded with the earliest free
    /// processors) and keep the best estimated finish. A *stronger*
    /// baseline than the paper's HCPA, provided for ablation studies.
    ParentAware,
}

/// Parameters of the **combined** strategy (an extension beyond the paper,
/// in the direction of its future-work "automatic tuning"): candidate
/// predecessors are gated structurally like *delta*, but the adoption is
/// validated with finish-time estimates like *time-cost*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedParams {
    /// Structural bounds (pack/stretch fractions), as in the delta strategy.
    pub delta: DeltaParams,
    /// Minimal acceptable work ratio for stretching, as in time-cost.
    pub minrho: f64,
}

impl CombinedParams {
    fn validate(&self) {
        assert!(
            self.minrho > 0.0 && self.minrho <= 1.0,
            "minrho must be in (0, 1], got {}",
            self.minrho
        );
    }
}

/// Which mapping procedure step two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingStrategy {
    /// Baseline list scheduling with untouched allocations (HCPA's mapping,
    /// redistribution costs included in the finish-time estimates).
    Hcpa,
    /// RATS with the delta strategy.
    RatsDelta(DeltaParams),
    /// RATS with the time-cost strategy.
    RatsTimeCost(TimeCostParams),
    /// RATS with the combined strategy (extension; see [`CombinedParams`]).
    RatsCombined(CombinedParams),
}

impl MappingStrategy {
    /// Delta strategy; `mindelta` may be given as the paper's negative value
    /// or as a magnitude — the sign is dropped.
    pub fn rats_delta(mindelta: f64, maxdelta: f64) -> Self {
        let p = DeltaParams {
            mindelta: mindelta.abs(),
            maxdelta,
        };
        p.validate();
        Self::RatsDelta(p)
    }

    /// Time-cost strategy.
    pub fn rats_time_cost(minrho: f64, allow_packing: bool) -> Self {
        let p = TimeCostParams {
            minrho,
            allow_packing,
        };
        p.validate();
        Self::RatsTimeCost(p)
    }

    /// Combined strategy: delta bounds + time-cost estimate validation
    /// (`mindelta` sign is dropped, as in [`Self::rats_delta`]).
    pub fn rats_combined(mindelta: f64, maxdelta: f64, minrho: f64) -> Self {
        let p = CombinedParams {
            delta: DeltaParams {
                mindelta: mindelta.abs(),
                maxdelta,
            },
            minrho,
        };
        p.delta.validate();
        p.validate();
        Self::RatsCombined(p)
    }

    /// The ready-list secondary sort this strategy uses.
    pub fn secondary_sort(&self) -> SecondarySort {
        match self {
            MappingStrategy::Hcpa => SecondarySort::None,
            MappingStrategy::RatsDelta(_) => SecondarySort::DeltaAscending,
            MappingStrategy::RatsTimeCost(_) => SecondarySort::GainDescending,
            MappingStrategy::RatsCombined(_) => SecondarySort::DeltaAscending,
        }
    }

    /// Short display name used by the experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            MappingStrategy::Hcpa => "HCPA",
            MappingStrategy::RatsDelta(_) => "delta",
            MappingStrategy::RatsTimeCost(_) => "time-cost",
            MappingStrategy::RatsCombined(_) => "combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_bounds_follow_paper_example() {
        // Np(t) = 6, maxdelta = 0.5 → at most 9 processors, δmax = 3.
        let p = DeltaParams {
            mindelta: 0.5,
            maxdelta: 0.5,
        };
        assert_eq!(p.delta_max(6), 3);
        // mindelta = 0.5 → at least 3 processors, |δmin| = 3.
        assert_eq!(p.delta_min_magnitude(6), 3);
    }

    #[test]
    fn packing_never_empties_an_allocation() {
        let p = DeltaParams {
            mindelta: 1.0,
            maxdelta: 0.0,
        };
        assert_eq!(p.delta_min_magnitude(1), 0);
        assert_eq!(p.delta_min_magnitude(4), 3);
    }

    #[test]
    fn negative_mindelta_is_normalized() {
        let s = MappingStrategy::rats_delta(-0.75, 1.0);
        match s {
            MappingStrategy::RatsDelta(p) => assert_eq!(p.mindelta, 0.75),
            _ => unreachable!(),
        }
    }

    #[test]
    fn secondary_sorts_match_strategies() {
        assert_eq!(MappingStrategy::Hcpa.secondary_sort(), SecondarySort::None);
        assert_eq!(
            MappingStrategy::rats_delta(0.5, 0.5).secondary_sort(),
            SecondarySort::DeltaAscending
        );
        assert_eq!(
            MappingStrategy::rats_time_cost(0.5, true).secondary_sort(),
            SecondarySort::GainDescending
        );
    }

    #[test]
    fn combined_strategy_construction() {
        let s = MappingStrategy::rats_combined(-0.5, 1.0, 0.4);
        assert_eq!(s.name(), "combined");
        assert_eq!(s.secondary_sort(), SecondarySort::DeltaAscending);
        match s {
            MappingStrategy::RatsCombined(p) => {
                assert_eq!(p.delta.mindelta, 0.5);
                assert_eq!(p.delta.maxdelta, 1.0);
                assert_eq!(p.minrho, 0.4);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "minrho")]
    fn combined_rejects_bad_rho() {
        MappingStrategy::rats_combined(0.5, 1.0, 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(MappingStrategy::Hcpa.name(), "HCPA");
        assert_eq!(MappingStrategy::rats_delta(0.5, 0.5).name(), "delta");
        assert_eq!(
            MappingStrategy::rats_time_cost(0.2, false).name(),
            "time-cost"
        );
    }

    #[test]
    #[should_panic(expected = "minrho")]
    fn rejects_zero_rho() {
        MappingStrategy::rats_time_cost(0.0, true);
    }
}
