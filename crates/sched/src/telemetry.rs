//! Mapping-engine metrics: phase histograms (step-one allocation, whole
//! mapping runs, ready-list rounds) and work counters (estimates evaluated
//! vs. pruned, `data_ready` memo and [`rats_redist::RedistCache`] hit
//! rates, [`ArgminTree`](crate::mapping) updates).
//!
//! Everything is observational: the engine never reads a metric back, and
//! the parity suite pins byte-identical schedules with telemetry enabled.
//! The hot loop does not touch atomics — per-run tallies accumulate in
//! plain [`Cell`]s on the mapper ([`RunTally`]) and flush into the global
//! counters once per mapping run.

use std::cell::Cell;

use rats_telemetry::{Counter, Histogram, Metric, TIME_BUCKETS};

/// Step-one (CPA/HCPA) allocation wall time, one observation per
/// [`Scheduler::schedule`](crate::Scheduler::schedule) call.
pub static ALLOC_SECONDS: Histogram = Histogram::new(
    "rats_mapping_alloc_seconds",
    "Step-one (CPA/HCPA) allocation wall time per scheduling run.",
    TIME_BUCKETS,
);

/// Whole mapping-step wall time, one observation per run.
pub static MAP_SECONDS: Histogram = Histogram::new(
    "rats_mapping_map_seconds",
    "Mapping-step wall time per scheduling run (all ready-list rounds).",
    TIME_BUCKETS,
);

/// Per-round wall time of the ready-list drain loop.
pub static ROUND_SECONDS: Histogram = Histogram::new(
    "rats_mapping_round_seconds",
    "Ready-list round wall time in the incremental mapping driver.",
    TIME_BUCKETS,
);

/// Completed mapping runs.
pub static RUNS: Counter = Counter::new(
    "rats_mapping_runs_total",
    "Mapping runs completed by the incremental driver.",
);

/// Ready-list rounds drained.
pub static ROUNDS: Counter = Counter::new(
    "rats_mapping_rounds_total",
    "Ready-list rounds drained across all mapping runs.",
);

/// Tasks placed.
pub static TASKS: Counter = Counter::new(
    "rats_mapping_tasks_total",
    "Tasks placed across all mapping runs.",
);

/// Exact candidate estimates evaluated.
pub static ESTIMATES: Counter = Counter::new(
    "rats_mapping_estimates_total",
    "Exact candidate (start, finish) estimates evaluated.",
);

/// Candidate estimates skipped by sound pruning.
pub static ESTIMATES_PRUNED: Counter = Counter::new(
    "rats_mapping_estimates_pruned_total",
    "Candidate estimates skipped by sound finish lower bounds or duplicate-set detection.",
);

/// `data_ready` memo hits.
pub static MEMO_HITS: Counter = Counter::new(
    "rats_mapping_data_ready_memo_hits_total",
    "data_ready evaluations answered from the per-task candidate-set memo.",
);

/// `data_ready` memo misses.
pub static MEMO_MISSES: Counter = Counter::new(
    "rats_mapping_data_ready_memo_misses_total",
    "data_ready evaluations that had to walk predecessor arrivals.",
);

/// Redistribution cache hits.
pub static REDIST_HITS: Counter = Counter::new(
    "rats_mapping_redist_cache_hits_total",
    "Redistribution arrival estimates answered from the streaming RedistCache.",
);

/// Redistribution cache misses.
pub static REDIST_MISSES: Counter = Counter::new(
    "rats_mapping_redist_cache_misses_total",
    "Redistribution arrival estimates computed by the streaming estimator.",
);

/// Argmin tournament-tree updates.
pub static ARGMIN_UPDATES: Counter = Counter::new(
    "rats_mapping_argmin_updates_total",
    "ArgminTree leaf updates applied by task placements.",
);

/// Every metric this crate exports, for registry registration.
pub static METRICS: &[Metric] = &[
    Metric::Histogram(&ALLOC_SECONDS),
    Metric::Histogram(&MAP_SECONDS),
    Metric::Histogram(&ROUND_SECONDS),
    Metric::Counter(&RUNS),
    Metric::Counter(&ROUNDS),
    Metric::Counter(&TASKS),
    Metric::Counter(&ESTIMATES),
    Metric::Counter(&ESTIMATES_PRUNED),
    Metric::Counter(&MEMO_HITS),
    Metric::Counter(&MEMO_MISSES),
    Metric::Counter(&REDIST_HITS),
    Metric::Counter(&REDIST_MISSES),
    Metric::Counter(&ARGMIN_UPDATES),
];

/// Per-run tally kept on the mapper: plain (non-atomic) cells so the
/// estimate fast paths pay an increment, not an atomic RMW. Flushed once
/// per run by [`RunTally::flush`].
#[derive(Default)]
pub(crate) struct RunTally {
    pub(crate) estimates: Cell<u64>,
    pub(crate) pruned: Cell<u64>,
    pub(crate) memo_hits: Cell<u64>,
    pub(crate) memo_misses: Cell<u64>,
    pub(crate) argmin_updates: Cell<u64>,
    pub(crate) rounds: Cell<u64>,
}

/// Adds one to a tally cell.
#[inline]
pub(crate) fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

impl RunTally {
    /// Publishes the run's tally (plus the task count and the redist
    /// cache's own hit statistics) into the global counters.
    pub(crate) fn flush(&self, tasks: u64, redist_hits: u64, redist_misses: u64) {
        RUNS.inc();
        TASKS.add(tasks);
        ROUNDS.add(self.rounds.get());
        ESTIMATES.add(self.estimates.get());
        ESTIMATES_PRUNED.add(self.pruned.get());
        MEMO_HITS.add(self.memo_hits.get());
        MEMO_MISSES.add(self.memo_misses.get());
        ARGMIN_UPDATES.add(self.argmin_updates.get());
        REDIST_HITS.add(redist_hits);
        REDIST_MISSES.add(redist_misses);
    }
}
