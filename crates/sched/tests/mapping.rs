//! Behavior of the mapping driver under every shipped policy (these were
//! the `mapping.rs` unit tests before the policy interface extracted the
//! strategies; they now run against the public API only).

use rats_dag::TaskGraph;
use rats_daggen::{fft_dag, strassen_dag, suite};
use rats_model::{CostParams, TaskCost};
use rats_platform::{ClusterSpec, Platform};
use rats_sched::{
    allocate, AllocParams, Allocation, AreaPolicy, CandidatePolicy, MappingStrategy, Scheduler,
};

fn grillon() -> Platform {
    Platform::from_spec(&ClusterSpec::grillon())
}

fn all_strategies() -> Vec<MappingStrategy> {
    vec![
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ]
}

#[test]
fn every_strategy_produces_valid_schedules() {
    let p = grillon();
    for scenario in suite::mini_suite(&CostParams::paper(), 5) {
        for strat in all_strategies() {
            let s = Scheduler::new(&p).strategy(strat).schedule(&scenario.dag);
            s.validate(&scenario.dag, &p)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", scenario.name, strat.name()));
            assert!(s.makespan_estimate() > 0.0);
        }
    }
}

#[test]
fn scheduling_is_deterministic() {
    let p = grillon();
    let dag = fft_dag(8, &CostParams::paper(), 3);
    for strat in all_strategies() {
        let a = Scheduler::new(&p).strategy(strat).schedule(&dag);
        let b = Scheduler::new(&p).strategy(strat).schedule(&dag);
        assert_eq!(a.makespan_estimate(), b.makespan_estimate());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.procs, y.procs);
        }
    }
}

#[test]
fn chain_with_equal_allocations_reuses_processor_sets() {
    // In a chain, every strategy should keep reusing the predecessor's
    // set (the redistribution-free choice) once allocations match.
    let mut g = TaskGraph::new();
    let mut prev = None;
    for i in 0..4 {
        let t = g.add_task(format!("t{i}"), TaskCost::new(50_000_000, 256.0, 0.05));
        if let Some(p) = prev {
            g.add_edge(p, t, 4e8);
        }
        prev = Some(t);
    }
    let p = grillon();
    // RATS strategies adopt the predecessor's exact set along the chain.
    for strat in [
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let s = Scheduler::new(&p).strategy(strat).schedule(&g);
        let first = &s.entries[0].procs;
        for e in &s.entries[1..] {
            assert!(
                e.procs.same_members(first),
                "{}: chain broke processor reuse",
                strat.name()
            );
        }
    }
    // Plain HCPA with the paper-era earliest-k placement hops to idle
    // processors and pays the redistribution — the paper's motivating
    // flaw. The stronger parent-aware ablation policy reuses the sets.
    let s = Scheduler::new(&p)
        .candidate_policy(CandidatePolicy::ParentAware)
        .schedule(&g);
    for w in s.entries.windows(2) {
        let (a, b) = (&w[0].procs, &w[1].procs);
        let min_len = a.len().min(b.len());
        assert!(
            a.overlap_count(b) >= min_len / 2,
            "parent-aware chain overlap collapsed: {} of {min_len}",
            a.overlap_count(b)
        );
    }
    let s = Scheduler::new(&p).schedule(&g);
    s.validate(&g, &p).unwrap();
}

#[test]
fn time_cost_stretches_onto_larger_parent() {
    // a is hand-allocated 8 procs, b 4: with a permissive minrho, b must
    // adopt a's full set.
    let mut g = TaskGraph::new();
    let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.02));
    let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.02));
    g.add_edge(a, b, 6.4e8);
    let p = grillon();
    let alloc = Allocation::from_counts(vec![8, 4]);
    let s = Scheduler::new(&p)
        .strategy(MappingStrategy::rats_time_cost(0.2, true))
        .schedule_with_allocation(&g, &alloc);
    assert_eq!(s.entries[b.index()].procs.len(), 8);
    assert!(s.entries[b.index()]
        .procs
        .same_members(&s.entries[a.index()].procs));
}

#[test]
fn strict_rho_prevents_stretching() {
    let mut g = TaskGraph::new();
    let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.25));
    let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.25));
    g.add_edge(a, b, 6.4e8);
    let p = grillon();
    let alloc = Allocation::from_counts(vec![16, 2]);
    // α = 0.25 at 2 → 16 procs wastes a lot of work: ρ is far below 1.
    let s = Scheduler::new(&p)
        .strategy(MappingStrategy::rats_time_cost(1.0, false))
        .schedule_with_allocation(&g, &alloc);
    assert_eq!(s.entries[b.index()].procs.len(), 2);
}

#[test]
fn delta_bounds_gate_adoption() {
    let mut g = TaskGraph::new();
    let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.02));
    let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.02));
    g.add_edge(a, b, 6.4e8);
    let p = grillon();
    let alloc = Allocation::from_counts(vec![8, 4]);
    // maxdelta = 0.5 → δmax = 2 < 4: adoption forbidden.
    let strict = Scheduler::new(&p)
        .strategy(MappingStrategy::rats_delta(0.0, 0.5))
        .schedule_with_allocation(&g, &alloc);
    assert_eq!(strict.entries[b.index()].procs.len(), 4);
    // maxdelta = 1.0 → δmax = 4: adoption allowed.
    let loose = Scheduler::new(&p)
        .strategy(MappingStrategy::rats_delta(0.0, 1.0))
        .schedule_with_allocation(&g, &alloc);
    assert_eq!(loose.entries[b.index()].procs.len(), 8);
}

#[test]
fn delta_packs_onto_smaller_parent() {
    let mut g = TaskGraph::new();
    let a = g.add_task("a", TaskCost::new(80_000_000, 512.0, 0.02));
    let b = g.add_task("b", TaskCost::new(40_000_000, 256.0, 0.02));
    g.add_edge(a, b, 6.4e8);
    let p = grillon();
    let alloc = Allocation::from_counts(vec![4, 6]);
    let s = Scheduler::new(&p)
        .strategy(MappingStrategy::rats_delta(0.5, 0.0))
        .schedule_with_allocation(&g, &alloc);
    // |δ⁻| = 2 ≤ ⌊0.5·6⌋ = 3 → packed onto a's 4 processors.
    assert_eq!(s.entries[b.index()].procs.len(), 4);
}

#[test]
fn hcpa_never_changes_allocation_sizes() {
    let p = grillon();
    let dag = strassen_dag(&CostParams::paper(), 7);
    let alloc = allocate(&dag, &p, AllocParams::default());
    let s = Scheduler::new(&p).schedule_with_allocation(&dag, &alloc);
    for t in dag.task_ids() {
        assert_eq!(s.entries[t.index()].procs.len(), alloc.of(t));
    }
}

#[test]
fn rats_makespan_estimate_not_catastrophically_worse() {
    // Sanity guard (the real comparison runs in rats-experiments): on a
    // mini suite, each RATS variant's estimated makespan should stay
    // within 2× of HCPA's.
    let p = grillon();
    for scenario in suite::mini_suite(&CostParams::paper(), 11) {
        let alloc = allocate(&scenario.dag, &p, AllocParams::default());
        let base = Scheduler::new(&p)
            .schedule_with_allocation(&scenario.dag, &alloc)
            .makespan_estimate();
        for strat in [
            MappingStrategy::rats_delta(0.5, 0.5),
            MappingStrategy::rats_time_cost(0.5, true),
        ] {
            let m = Scheduler::new(&p)
                .strategy(strat)
                .schedule_with_allocation(&scenario.dag, &alloc)
                .makespan_estimate();
            assert!(
                m <= base * 2.0 + 1e-9,
                "{} on {}: {m} vs HCPA {base}",
                strat.name(),
                scenario.name
            );
        }
    }
}

#[test]
fn combined_strategy_is_valid_and_never_regresses_estimates() {
    let p = grillon();
    for scenario in suite::mini_suite(&CostParams::paper(), 31) {
        let alloc = allocate(&scenario.dag, &p, AllocParams::default());
        let base = Scheduler::new(&p).schedule_with_allocation(&scenario.dag, &alloc);
        let combined = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_combined(0.5, 1.0, 0.4))
            .schedule_with_allocation(&scenario.dag, &alloc);
        combined.validate(&scenario.dag, &p).unwrap();
        // Every adoption is estimate-gated, so the estimated makespan
        // can only drift through placement interactions — it must stay
        // in the baseline's neighbourhood.
        assert!(
            combined.makespan_estimate() <= base.makespan_estimate() * 1.5 + 1e-9,
            "{}: combined {} vs HCPA {}",
            scenario.name,
            combined.makespan_estimate(),
            base.makespan_estimate()
        );
    }
}

#[test]
fn combined_adopts_equal_size_parents() {
    let mut g = TaskGraph::new();
    let a = g.add_task("a", TaskCost::new(50_000_000, 256.0, 0.05));
    let b = g.add_task("b", TaskCost::new(50_000_000, 256.0, 0.05));
    g.add_edge(a, b, 4e8);
    let p = grillon();
    let alloc = Allocation::from_counts(vec![6, 6]);
    let s = Scheduler::new(&p)
        .strategy(MappingStrategy::rats_combined(0.0, 0.0, 1.0))
        .schedule_with_allocation(&g, &alloc);
    assert!(s.entries[b.index()]
        .procs
        .same_members(&s.entries[a.index()].procs));
}

#[test]
fn mcpa_policy_also_schedules() {
    let p = grillon();
    let dag = fft_dag(8, &CostParams::paper(), 1);
    let s = Scheduler::new(&p)
        .area_policy(AreaPolicy::Mcpa)
        .schedule(&dag);
    s.validate(&dag, &p).unwrap();
}
